//! Multi-channel recording synthesis.

use crate::adc::AdcModel;
use crate::episodes::{Episode, EpisodeKind};
use crate::noise::{GaussianNoise, PinkNoise};
use crate::region::RegionProfile;
use crate::rng::SimRng;
use crate::spikes::{PoissonTrain, SpikeTemplate};
use crate::SAMPLE_RATE_HZ;

/// Configuration for synthesizing a [`Recording`].
///
/// Built with a fluent API and consumed by [`RecordingConfig::generate`].
/// Episodes (seizure, movement) are scheduled explicitly so tests and
/// experiments know the ground truth.
///
/// # Example
///
/// ```
/// use halo_signal::{RecordingConfig, RegionProfile};
/// let rec = RecordingConfig::new(RegionProfile::leg())
///     .channels(8)
///     .duration_ms(50)
///     .movement_at(600, 1200)
///     .generate(1);
/// assert_eq!(rec.episodes().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RecordingConfig {
    profile: RegionProfile,
    channels: usize,
    samples: usize,
    sample_rate: u32,
    adc: AdcModel,
    episodes: Vec<Episode>,
}

/// In-place cascade of two one-pole low-pass stages at `fc_hz`.
fn two_pole_lowpass(trace: &mut [f64], fc_hz: f64, fs: f64) {
    let alpha = 1.0 - (-std::f64::consts::TAU * fc_hz / fs).exp();
    // Initialize to the first sample so recordings do not open with a
    // filter-settling ramp.
    let first = trace.first().copied().unwrap_or(0.0);
    let mut y1 = first;
    let mut y2 = first;
    for v in trace.iter_mut() {
        y1 += alpha * (*v - y1);
        y2 += alpha * (y1 - y2);
        *v = y2;
    }
}

impl RecordingConfig {
    /// Starts a configuration for the given region with the paper's default
    /// geometry (96 channels, 30 kHz, 100 ms).
    pub fn new(profile: RegionProfile) -> Self {
        Self {
            profile,
            channels: crate::CHANNELS,
            samples: SAMPLE_RATE_HZ as usize / 10,
            sample_rate: SAMPLE_RATE_HZ,
            adc: AdcModel::default(),
            episodes: Vec::new(),
        }
    }

    /// Sets the number of channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn channels(mut self, channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        self.channels = channels;
        self
    }

    /// Sets the recording length in milliseconds.
    pub fn duration_ms(mut self, ms: usize) -> Self {
        self.samples = ms * self.sample_rate as usize / 1000;
        self
    }

    /// Sets the recording length directly in samples per channel.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Overrides the sample rate (default 30 kHz).
    pub fn sample_rate(mut self, hz: u32) -> Self {
        assert!(hz > 0, "sample rate must be positive");
        self.sample_rate = hz;
        self
    }

    /// Overrides the ADC model.
    pub fn adc(mut self, adc: AdcModel) -> Self {
        self.adc = adc;
        self
    }

    /// Schedules a seizure episode over samples `[start, end)`.
    pub fn seizure_at(mut self, start: usize, end: usize) -> Self {
        self.episodes
            .push(Episode::new(EpisodeKind::Seizure, start, end));
        self
    }

    /// Schedules a movement episode over samples `[start, end)`.
    pub fn movement_at(mut self, start: usize, end: usize) -> Self {
        self.episodes
            .push(Episode::new(EpisodeKind::Movement, start, end));
        self
    }

    /// Synthesizes the recording deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Recording {
        let n = self.samples;
        let channels = self.channels;
        let p = &self.profile;
        let fs = self.sample_rate as f64;
        let mut rng = SimRng::new(seed);

        // Shared components (cross-channel correlation).
        let mut shared_lfp = PinkNoise::new(p.lfp_amplitude_uv, seed ^ 0xA11CE);
        let shared_lfp: Vec<f64> = (0..n).map(|_| shared_lfp.next_sample()).collect();
        // Ictal rhythm: a shared ~4 Hz spike-and-wave discharge with a
        // harmonic, far larger than background.
        let ictal_hz = 4.0;
        let ictal_amp = 6.0 * p.lfp_amplitude_uv;

        let mut data = vec![0i16; n * channels];
        let mut spike_truth = Vec::with_capacity(channels);

        for c in 0..channels {
            let ch_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(c as u64 + 1);
            let mut own_lfp = PinkNoise::new(
                p.lfp_amplitude_uv * (1.0 - p.shared_lfp_fraction),
                ch_seed ^ 0xBEEF,
            );
            let mut thermal = GaussianNoise::new(p.noise_sigma_uv, ch_seed ^ 0xFACE);
            let beta_phase: f64 = rng.range_f64(0.0, std::f64::consts::TAU);
            let mains_phase: f64 = rng.range_f64(0.0, std::f64::consts::TAU);

            // Per-channel analog trace before spikes.
            let mut trace: Vec<f64> = Vec::with_capacity(n);
            for (t, &shared) in shared_lfp.iter().enumerate().take(n) {
                let time = t as f64 / fs;
                let mut v = shared * p.shared_lfp_fraction + own_lfp.next_sample();
                // Beta rhythm, suppressed during movement episodes
                // (event-related desynchronization, Toro et al. [108]).
                let beta_gain = self.beta_gain(t);
                v += p.beta_amplitude_uv
                    * beta_gain
                    * (std::f64::consts::TAU * p.beta_hz * time + beta_phase).sin();
                // Ictal discharge during seizures, phase-shared across
                // channels (high synchrony is what XCOR detects).
                if self.in_episode(t, EpisodeKind::Seizure) {
                    let w = std::f64::consts::TAU * ictal_hz * time;
                    v += ictal_amp * (w.sin() + 0.5 * (2.0 * w).sin());
                }
                v += p.mains_amplitude_uv
                    * (std::f64::consts::TAU * 60.0 * time + mains_phase).sin();
                trace.push(v);
            }

            // Local field potentials roll off steeply above a few hundred
            // hertz; band-limit the synthesized LFP mix accordingly
            // (second-order roll-off from 300 Hz) before adding broadband
            // components.
            two_pole_lowpass(&mut trace, 300.0, fs);

            // Broadband thermal/amplifier noise (headstage-referred; the
            // modeled wireless headstage specifies ~2 uV rms).
            for v in trace.iter_mut() {
                *v += thermal.next_sample();
            }

            // Anti-aliasing low-pass of the analog front-end: recording
            // amplifiers band-limit the signal (second-order roll-off from
            // ~2 kHz here) well below the 15 kHz Nyquist rate, which is
            // also what makes the 30 kHz stream compressible (§VI-C/D
            // depend on this oversampling).
            two_pole_lowpass(&mut trace, 2_000.0, fs);

            // Units on this channel.
            let unit_count = p.units_per_channel.round() as usize;
            let mut onsets: Vec<usize> = Vec::new();
            for u in 0..unit_count {
                let amp = p.spike_amplitude_uv * rng.range_f64(0.6, 1.4);
                let template = SpikeTemplate::new(amp, (self.sample_rate as usize * 12) / 10_000);
                // Seizures roughly triple firing; movement raises it ~60%.
                let base_rate = p.mean_rate_hz * rng.range_f64(0.5, 1.5);
                let mut train =
                    PoissonTrain::new(base_rate, self.sample_rate, ch_seed ^ (u as u64) << 8);
                for onset in train.spike_times(n) {
                    let boost = if self.in_episode(onset, EpisodeKind::Seizure) {
                        3.0
                    } else if self.in_episode(onset, EpisodeKind::Movement) {
                        1.6
                    } else {
                        1.0
                    };
                    // Thin the train probabilistically for boost < max by
                    // keeping a spike with probability boost/3.
                    if rng.range_f64(0.0, 3.0) <= boost {
                        for (i, w) in template.waveform().iter().enumerate() {
                            if let Some(slot) = trace.get_mut(onset + i) {
                                *slot += w;
                            }
                        }
                        onsets.push(onset);
                    }
                }
            }
            onsets.sort_unstable();
            onsets.dedup();
            spike_truth.push(onsets);

            for t in 0..n {
                data[t * channels + c] = self.adc.quantize(trace[t]);
            }
        }

        Recording {
            channels,
            sample_rate: self.sample_rate,
            data,
            episodes: self.episodes.clone(),
            spike_truth,
            region: p.name,
        }
    }

    fn in_episode(&self, t: usize, kind: EpisodeKind) -> bool {
        self.episodes
            .iter()
            .any(|e| e.kind() == kind && e.contains(t))
    }

    /// Beta-rhythm gain at sample `t`: 1.0 at rest, ramping down to 0.15
    /// inside movement episodes over a 15 ms transition.
    fn beta_gain(&self, t: usize) -> f64 {
        const SUPPRESSED: f64 = 0.15;
        let ramp = (self.sample_rate as usize * 15) / 1000;
        let mut gain = 1.0f64;
        for e in self
            .episodes
            .iter()
            .filter(|e| e.kind() == EpisodeKind::Movement)
        {
            if e.contains(t) {
                let into = t - e.start();
                let frac = (into as f64 / ramp as f64).min(1.0);
                gain = gain.min(1.0 + frac * (SUPPRESSED - 1.0));
            }
        }
        gain
    }
}

/// A synthesized multi-channel recording with ground-truth labels.
///
/// Samples are stored frame-major (`data[t * channels + c]`), matching the
/// interleaved order in which an ADC bank would deliver them to HALO.
#[derive(Debug, Clone)]
pub struct Recording {
    channels: usize,
    sample_rate: u32,
    data: Vec<i16>,
    episodes: Vec<Episode>,
    spike_truth: Vec<Vec<usize>>,
    region: &'static str,
}

impl Recording {
    /// Wraps a raw frame-major sample buffer (`data[t * channels + c]`)
    /// as a recording with no ground-truth labels — the replay path, where
    /// the samples come from a captured trace log rather than the
    /// synthesizer.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or `samples` is not a whole number of
    /// frames.
    pub fn from_samples(samples: Vec<i16>, channels: usize, sample_rate: u32) -> Self {
        assert!(channels > 0, "recording needs at least one channel");
        assert!(
            samples.len().is_multiple_of(channels),
            "sample buffer is not a whole number of {channels}-channel frames"
        );
        Self {
            channels,
            sample_rate,
            data: samples,
            episodes: Vec::new(),
            spike_truth: vec![Vec::new(); channels],
            region: "replay",
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Region name this recording was synthesized from.
    pub fn region(&self) -> &'static str {
        self.region
    }

    /// Samples per channel.
    pub fn samples_per_channel(&self) -> usize {
        self.data.len().checked_div(self.channels).unwrap_or(0)
    }

    /// Recording duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.samples_per_channel() as f64 * 1000.0 / self.sample_rate as f64
    }

    /// The raw frame-major sample buffer (`[t * channels + c]`).
    pub fn samples(&self) -> &[i16] {
        &self.data
    }

    /// One frame (all channels at time `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn frame(&self, t: usize) -> &[i16] {
        &self.data[t * self.channels..(t + 1) * self.channels]
    }

    /// Copies out a single channel's samples.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.channels()`.
    pub fn channel(&self, c: usize) -> Vec<i16> {
        assert!(c < self.channels, "channel {c} out of range");
        (0..self.samples_per_channel())
            .map(|t| self.data[t * self.channels + c])
            .collect()
    }

    /// Serializes the interleaved stream as little-endian bytes — the wire
    /// format the compression and encryption pipelines consume.
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 2);
        for s in &self.data {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Ground-truth episodes.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Ground-truth spike onsets per channel.
    pub fn spike_truth(&self) -> &[Vec<usize>] {
        &self.spike_truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(profile: RegionProfile) -> RecordingConfig {
        RecordingConfig::new(profile).channels(4).duration_ms(100)
    }

    #[test]
    fn geometry_is_respected() {
        let r = small(RegionProfile::arm()).generate(3);
        assert_eq!(r.channels(), 4);
        assert_eq!(r.samples_per_channel(), 3000);
        assert_eq!(r.samples().len(), 12_000);
        assert_eq!(r.frame(0).len(), 4);
        assert!((r.duration_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small(RegionProfile::arm()).generate(7);
        let b = small(RegionProfile::arm()).generate(7);
        assert_eq!(a.samples(), b.samples());
        let c = small(RegionProfile::arm()).generate(8);
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn channel_extraction_matches_frames() {
        let r = small(RegionProfile::leg()).generate(5);
        let ch2 = r.channel(2);
        for (t, &s) in ch2.iter().enumerate() {
            assert_eq!(s, r.frame(t)[2]);
        }
    }

    #[test]
    fn seizure_raises_amplitude() {
        let r = small(RegionProfile::arm())
            .seizure_at(1500, 3000)
            .generate(11);
        let ch = r.channel(0);
        let rms = |s: &[i16]| {
            (s.iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / s.len() as f64).sqrt()
        };
        let baseline = rms(&ch[0..1500]);
        let ictal = rms(&ch[1500..3000]);
        assert!(
            ictal > 2.0 * baseline,
            "ictal rms {ictal} vs baseline {baseline}"
        );
    }

    #[test]
    fn movement_suppresses_beta_power() {
        // Use the quiescent profile plus explicit beta so the effect is clean.
        let mut p = RegionProfile::quiescent();
        p.beta_amplitude_uv = 40.0;
        let r = RecordingConfig::new(p)
            .channels(1)
            .duration_ms(200)
            .movement_at(3000, 6000)
            .generate(13);
        let ch = r.channel(0);
        // Band power proxy: variance (beta dominates the quiescent profile).
        let var = |s: &[i16]| {
            let m = s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64;
            s.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / s.len() as f64
        };
        let rest = var(&ch[0..3000]);
        let moving = var(&ch[3600..6000]); // past the ramp
        assert!(
            moving < rest / 4.0,
            "movement variance {moving} vs rest {rest}"
        );
    }

    #[test]
    fn spike_truth_populated_for_active_regions() {
        let r = small(RegionProfile::arm()).generate(17);
        let total: usize = r.spike_truth().iter().map(Vec::len).sum();
        assert!(total > 0, "arm region should fire");
    }

    #[test]
    fn bytes_round_trip() {
        let r = small(RegionProfile::leg()).generate(19);
        let bytes = r.to_bytes_le();
        assert_eq!(bytes.len(), r.samples().len() * 2);
        let first = i16::from_le_bytes([bytes[0], bytes[1]]);
        assert_eq!(first, r.samples()[0]);
    }
}
