//! A small, deterministic, dependency-free PRNG for signal synthesis and
//! randomized tests.
//!
//! The build environment is offline, so the crate cannot pull in `rand`;
//! this module provides the few primitives the generators need. The core
//! is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 so that
//! any `u64` seed — including zero — yields a well-mixed state. Every
//! stream is fully determined by its seed, which is what keeps recordings
//! and experiments reproducible.

/// A seedable xoshiro256++ generator.
///
/// # Example
///
/// ```
/// use halo_signal::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform `u64` in `[lo, hi)` (multiply-shift bounded draw).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `i16` over its full domain.
    pub fn any_i16(&mut self) -> i16 {
        self.next_u64() as i16
    }

    /// A uniform `u8` over its full domain.
    pub fn any_u8(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A vector of `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// A vector of `len` uniform `i16` samples.
    pub fn samples(&mut self, len: usize) -> Vec<i16> {
        (0..len).map(|_| self.any_i16()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SimRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SimRng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SimRng::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        let mut dedup = draws.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), draws.len());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SimRng::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.range_u64(5, 17);
            assert!((5..17).contains(&x));
            let y = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&y));
            let z = r.range_usize(0, 3);
            assert!(z < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut r = SimRng::new(1);
        let _ = r.range_u64(4, 4);
    }
}
