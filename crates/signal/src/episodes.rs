//! Ground-truth episodes: seizures and movement intervals.

/// The kind of a labeled episode embedded in a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EpisodeKind {
    /// Ictal activity: large-amplitude rhythmic discharges with elevated
    /// cross-channel synchrony. The seizure-prediction pipeline should fire
    /// during (ideally at the onset of) these windows.
    Seizure,
    /// Movement: the motor-cortex beta rhythm (14–25 Hz) desynchronizes and
    /// firing increases. The movement-intent pipeline should fire here.
    Movement,
}

/// A labeled time window `[start, end)` in samples.
///
/// Episodes are the ground truth that integration tests and experiments use
/// to score pipeline detections.
///
/// # Example
///
/// ```
/// use halo_signal::{Episode, EpisodeKind};
/// let e = Episode::new(EpisodeKind::Movement, 100, 400);
/// assert!(e.contains(250));
/// assert!(!e.contains(400));
/// assert_eq!(e.len(), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Episode {
    kind: EpisodeKind,
    start: usize,
    end: usize,
}

impl Episode {
    /// Creates an episode covering samples `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn new(kind: EpisodeKind, start: usize, end: usize) -> Self {
        assert!(end > start, "episode must have positive length");
        Self { kind, start, end }
    }

    /// The episode kind.
    pub fn kind(&self) -> EpisodeKind {
        self.kind
    }

    /// First sample index inside the episode.
    pub fn start(&self) -> usize {
        self.start
    }

    /// First sample index after the episode.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of samples covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the episode covers no samples (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `sample` lies inside the episode.
    pub fn contains(&self, sample: usize) -> bool {
        sample >= self.start && sample < self.end
    }

    /// Whether `[start, end)` overlaps this episode.
    pub fn overlaps(&self, start: usize, end: usize) -> bool {
        start < self.end && end > self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_bounds() {
        let e = Episode::new(EpisodeKind::Seizure, 10, 20);
        assert!(e.contains(10));
        assert!(e.contains(19));
        assert!(!e.contains(9));
        assert!(!e.contains(20));
        assert_eq!(e.len(), 10);
        assert!(!e.is_empty());
    }

    #[test]
    fn overlap_semantics() {
        let e = Episode::new(EpisodeKind::Movement, 100, 200);
        assert!(e.overlaps(150, 160));
        assert!(e.overlaps(50, 101));
        assert!(e.overlaps(199, 300));
        assert!(!e.overlaps(200, 300));
        assert!(!e.overlaps(0, 100));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_rejected() {
        let _ = Episode::new(EpisodeKind::Seizure, 5, 5);
    }
}
