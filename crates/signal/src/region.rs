//! Motor-cortex region presets (arm vs leg).

/// Statistical profile of a recorded brain region.
///
/// The paper records from two motor-cortex sites of a non-human primate —
/// the arm and leg representations — and shows (Figure 9) that compression
/// ratio and power differ between them. We model the regions with different
/// unit counts, firing rates, spike amplitudes, oscillation amplitudes, and
/// background levels; the arm region is busier (more units, higher rates),
/// which yields less compressible data.
///
/// # Example
///
/// ```
/// use halo_signal::RegionProfile;
/// let arm = RegionProfile::arm();
/// let leg = RegionProfile::leg();
/// assert!(arm.mean_rate_hz > leg.mean_rate_hz);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProfile {
    /// Human-readable region name ("arm", "leg").
    pub name: &'static str,
    /// Mean number of distinguishable units per channel (5–10 per §II).
    pub units_per_channel: f64,
    /// Mean single-unit firing rate in Hz.
    pub mean_rate_hz: f64,
    /// Mean spike trough amplitude in µV (negative).
    pub spike_amplitude_uv: f64,
    /// RMS amplitude of the 1/f LFP background in µV.
    pub lfp_amplitude_uv: f64,
    /// Amplitude of the resting beta (14–25 Hz) rhythm in µV.
    pub beta_amplitude_uv: f64,
    /// Center of the beta rhythm in Hz.
    pub beta_hz: f64,
    /// Thermal/amplifier noise standard deviation in µV.
    pub noise_sigma_uv: f64,
    /// Fraction of LFP shared across channels (cross-channel correlation).
    pub shared_lfp_fraction: f64,
    /// 50/60 Hz mains interference amplitude in µV.
    pub mains_amplitude_uv: f64,
}

impl RegionProfile {
    /// Arm region of the motor cortex: denser, higher-rate activity.
    pub fn arm() -> Self {
        Self {
            name: "arm",
            units_per_channel: 8.0,
            mean_rate_hz: 18.0,
            spike_amplitude_uv: -140.0,
            lfp_amplitude_uv: 90.0,
            beta_amplitude_uv: 35.0,
            beta_hz: 20.0,
            noise_sigma_uv: 2.2,
            shared_lfp_fraction: 0.6,
            mains_amplitude_uv: 6.0,
        }
    }

    /// Leg region of the motor cortex: sparser, lower-rate activity.
    pub fn leg() -> Self {
        Self {
            name: "leg",
            units_per_channel: 5.0,
            mean_rate_hz: 9.0,
            spike_amplitude_uv: -110.0,
            lfp_amplitude_uv: 70.0,
            beta_amplitude_uv: 28.0,
            beta_hz: 18.0,
            noise_sigma_uv: 2.0,
            shared_lfp_fraction: 0.7,
            mains_amplitude_uv: 6.0,
        }
    }

    /// This profile with all unit firing removed — the in-situ baseline a
    /// clinician records to calibrate spike-detection thresholds (same
    /// LFP/noise statistics, no action potentials).
    pub fn without_spikes(mut self) -> Self {
        self.units_per_channel = 0.0;
        self.mean_rate_hz = 0.0;
        self
    }

    /// A quiet profile with no spikes or oscillations, useful for tests that
    /// need a near-silent baseline.
    pub fn quiescent() -> Self {
        Self {
            name: "quiescent",
            units_per_channel: 0.0,
            mean_rate_hz: 0.0,
            spike_amplitude_uv: 0.0,
            lfp_amplitude_uv: 15.0,
            beta_amplitude_uv: 0.0,
            beta_hz: 20.0,
            noise_sigma_uv: 2.0,
            shared_lfp_fraction: 0.5,
            mains_amplitude_uv: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_distinct() {
        assert_ne!(RegionProfile::arm(), RegionProfile::leg());
    }

    #[test]
    fn arm_is_busier_than_leg() {
        let (arm, leg) = (RegionProfile::arm(), RegionProfile::leg());
        assert!(arm.units_per_channel > leg.units_per_channel);
        assert!(arm.mean_rate_hz > leg.mean_rate_hz);
        assert!(arm.spike_amplitude_uv < leg.spike_amplitude_uv);
    }

    #[test]
    fn quiescent_is_silent() {
        let q = RegionProfile::quiescent();
        assert_eq!(q.mean_rate_hz, 0.0);
        assert_eq!(q.beta_amplitude_uv, 0.0);
    }
}
