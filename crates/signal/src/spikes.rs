//! Action potentials: spike waveform templates and Poisson firing processes.

use crate::rng::SimRng;

/// A biphasic extracellular action-potential template.
///
/// Extracellular spikes recorded near a soma are dominated by a sharp
/// negative deflection (~0.3 ms) followed by a slower positive
/// after-potential. The template is parameterized by peak amplitude (µV) and
/// total duration in samples, and is sampled at the array rate (30 kHz by
/// default, so ~1.2 ms ≈ 36 samples).
///
/// # Example
///
/// ```
/// use halo_signal::SpikeTemplate;
/// let t = SpikeTemplate::new(-120.0, 36);
/// assert_eq!(t.len(), 36);
/// let trough = t.waveform().iter().cloned().fold(f64::MAX, f64::min);
/// assert!(trough < -110.0 && trough >= -120.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTemplate {
    waveform: Vec<f64>,
}

impl SpikeTemplate {
    /// Builds a biphasic template with trough `amplitude` (µV, typically
    /// negative) lasting `samples` samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn new(amplitude: f64, samples: usize) -> Self {
        assert!(samples > 0, "spike template needs at least one sample");
        let n = samples as f64;
        let mut waveform = Vec::with_capacity(samples);
        // Trough at ~30% of the duration; after-potential peak at ~60%.
        for i in 0..samples {
            let t = i as f64 / n;
            let trough = (-((t - 0.3) / 0.08).powi(2)).exp();
            let hump = 0.35 * (-((t - 0.6) / 0.18).powi(2)).exp();
            waveform.push(amplitude * (trough - hump));
        }
        Self { waveform }
    }

    /// The waveform samples in microvolts.
    pub fn waveform(&self) -> &[f64] {
        &self.waveform
    }

    /// Number of samples in the template.
    pub fn len(&self) -> usize {
        self.waveform.len()
    }

    /// Whether the template is empty (never true for constructed templates).
    pub fn is_empty(&self) -> bool {
        self.waveform.is_empty()
    }
}

/// A homogeneous Poisson spike-train generator.
///
/// Emits spike onset times (in samples) with a mean rate of `rate_hz`,
/// enforcing an absolute refractory period.
///
/// # Example
///
/// ```
/// use halo_signal::PoissonTrain;
/// let mut train = PoissonTrain::new(50.0, 30_000, 11);
/// let spikes = train.spike_times(30_000); // one second
/// assert!(!spikes.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PoissonTrain {
    rate_hz: f64,
    sample_rate: u32,
    refractory_samples: u32,
    rng: SimRng,
}

impl PoissonTrain {
    /// Creates a Poisson train with mean `rate_hz` at the given sample rate.
    pub fn new(rate_hz: f64, sample_rate: u32, seed: u64) -> Self {
        Self {
            rate_hz,
            sample_rate,
            // 2 ms absolute refractory period.
            refractory_samples: sample_rate / 500,
            rng: SimRng::new(seed ^ 0xc2b2_ae3d_27d4_eb4f),
        }
    }

    /// Mean firing rate in Hz.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Generates the spike onset sample indices within `[0, samples)`.
    pub fn spike_times(&mut self, samples: usize) -> Vec<usize> {
        let mut times = Vec::new();
        if self.rate_hz <= 0.0 {
            return times;
        }
        let mean_interval = self.sample_rate as f64 / self.rate_hz;
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival times.
            let u: f64 = self.rng.range_f64(f64::EPSILON, 1.0);
            let dt = (-u.ln() * mean_interval).max(self.refractory_samples as f64);
            t += dt;
            let idx = t as usize;
            if idx >= samples {
                return times;
            }
            times.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_is_biphasic() {
        let t = SpikeTemplate::new(-100.0, 36);
        let min = t.waveform().iter().cloned().fold(f64::MAX, f64::min);
        let max = t.waveform().iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < -90.0, "trough missing: {min}");
        assert!(max > 10.0, "after-potential missing: {max}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn template_rejects_zero_length() {
        let _ = SpikeTemplate::new(-100.0, 0);
    }

    #[test]
    fn poisson_rate_is_approximately_right() {
        let mut train = PoissonTrain::new(40.0, 30_000, 5);
        let spikes = train.spike_times(30_000 * 20); // 20 s
        let rate = spikes.len() as f64 / 20.0;
        assert!((rate - 40.0).abs() < 6.0, "rate {rate}");
    }

    #[test]
    fn poisson_respects_refractory_period() {
        let mut train = PoissonTrain::new(400.0, 30_000, 6);
        let spikes = train.spike_times(30_000 * 5);
        for w in spikes.windows(2) {
            assert!(
                w[1] - w[0] >= 60,
                "refractory violated: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn zero_rate_produces_no_spikes() {
        let mut train = PoissonTrain::new(0.0, 30_000, 7);
        assert!(train.spike_times(30_000).is_empty());
    }

    #[test]
    fn spike_times_sorted_and_in_range() {
        let mut train = PoissonTrain::new(100.0, 30_000, 8);
        let n = 30_000;
        let spikes = train.spike_times(n);
        for w in spikes.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(spikes.iter().all(|&t| t < n));
    }
}
