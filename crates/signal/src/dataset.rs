//! Trial-based datasets mirroring the paper's behavioural sessions.

use crate::recording::{Recording, RecordingConfig};
use crate::region::RegionProfile;

/// The behavioural task performed during a trial (§V-C: "walking on a
/// treadmill, reaching for a treat, and overcoming a moving styrofoam
/// obstacle").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialKind {
    /// Continuous locomotion: periodic movement episodes.
    Treadmill,
    /// A single reach: one movement episode mid-trial.
    Reach,
    /// Obstacle traversal: two movement episodes with a pause between.
    Obstacle,
}

impl TrialKind {
    /// All trial kinds in evaluation order.
    pub fn all() -> [TrialKind; 3] {
        [TrialKind::Treadmill, TrialKind::Reach, TrialKind::Obstacle]
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            TrialKind::Treadmill => "treadmill",
            TrialKind::Reach => "reach",
            TrialKind::Obstacle => "obstacle",
        }
    }
}

/// One behavioural trial: a labeled recording.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The behavioural task.
    pub kind: TrialKind,
    /// The synthesized recording with ground-truth episodes.
    pub recording: Recording,
}

/// A set of trials from one brain region, used by the compression and
/// detection experiments (Figures 7–9 aggregate over trials; Figure 9 plots
/// inter-trial variance).
///
/// # Example
///
/// ```
/// use halo_signal::{Dataset, RegionProfile};
/// let ds = Dataset::generate(RegionProfile::leg(), 4, 50, 2, 99);
/// assert_eq!(ds.trials().len(), 2 * 3); // trials_per_kind x 3 kinds
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    region: &'static str,
    trials: Vec<Trial>,
}

impl Dataset {
    /// Generates `trials_per_kind` trials of each [`TrialKind`] for a region.
    ///
    /// Each trial is `duration_ms` long with `channels` channels; seeds are
    /// derived from `seed` so datasets are reproducible.
    pub fn generate(
        profile: RegionProfile,
        channels: usize,
        duration_ms: usize,
        trials_per_kind: usize,
        seed: u64,
    ) -> Self {
        let mut trials = Vec::new();
        let region = profile.name;
        for (k, kind) in TrialKind::all().into_iter().enumerate() {
            for i in 0..trials_per_kind {
                let trial_seed = seed
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add((k * 1000 + i) as u64);
                let mut config = RecordingConfig::new(profile.clone())
                    .channels(channels)
                    .duration_ms(duration_ms);
                config = Self::schedule_movements(config, kind, duration_ms, channels);
                trials.push(Trial {
                    kind,
                    recording: config.generate(trial_seed),
                });
            }
        }
        Self { region, trials }
    }

    fn schedule_movements(
        config: RecordingConfig,
        kind: TrialKind,
        duration_ms: usize,
        _channels: usize,
    ) -> RecordingConfig {
        let per_ms = crate::SAMPLE_RATE_HZ as usize / 1000;
        let n = duration_ms * per_ms;
        match kind {
            TrialKind::Treadmill => {
                // Gait cycle: move 40% / rest 60%, ~1 Hz equivalent scaled to
                // the trial length.
                let cycle = (n / 4).max(2);
                let mut c = config;
                let mut t = 0;
                while t + cycle / 2 < n {
                    c = c.movement_at(t, t + (cycle * 2 / 5).max(1));
                    t += cycle;
                }
                c
            }
            TrialKind::Reach => {
                let start = n / 3;
                let end = (2 * n) / 3;
                config.movement_at(start, end.max(start + 1))
            }
            TrialKind::Obstacle => {
                let a = n / 6;
                let b = n / 3;
                let c2 = n / 2;
                let d = (5 * n) / 6;
                config
                    .movement_at(a, b.max(a + 1))
                    .movement_at(c2, d.max(c2 + 1))
            }
        }
    }

    /// Region name this dataset was generated from.
    pub fn region(&self) -> &'static str {
        self.region
    }

    /// All trials.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Iterates over the recordings only.
    pub fn recordings(&self) -> impl Iterator<Item = &Recording> {
        self.trials.iter().map(|t| &t.recording)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_all_kinds() {
        let ds = Dataset::generate(RegionProfile::arm(), 2, 40, 1, 1);
        assert_eq!(ds.trials().len(), 3);
        let kinds: Vec<_> = ds.trials().iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TrialKind::Treadmill));
        assert!(kinds.contains(&TrialKind::Reach));
        assert!(kinds.contains(&TrialKind::Obstacle));
    }

    #[test]
    fn every_trial_has_movement_episodes() {
        let ds = Dataset::generate(RegionProfile::leg(), 2, 60, 1, 5);
        for t in ds.trials() {
            assert!(
                !t.recording.episodes().is_empty(),
                "{:?} trial lacks episodes",
                t.kind
            );
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = Dataset::generate(RegionProfile::arm(), 2, 30, 2, 7);
        let b = Dataset::generate(RegionProfile::arm(), 2, 30, 2, 7);
        for (x, y) in a.trials().iter().zip(b.trials()) {
            assert_eq!(x.recording.samples(), y.recording.samples());
        }
    }

    #[test]
    fn trial_kind_labels_unique() {
        let labels: Vec<_> = TrialKind::all().iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
