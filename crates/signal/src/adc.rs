//! Analog front-end model: amplification and 16-bit analog-to-digital
//! conversion.

/// A 16-bit ADC with configurable full-scale input range.
///
/// Implantable front-ends digitize the amplified extracellular potential at
/// 8–16 bits (§II); the paper's design point is 16 bits at 30 kHz. The model
/// maps microvolts to signed 16-bit codes with saturation at the rails.
///
/// # Example
///
/// ```
/// use halo_signal::AdcModel;
/// let adc = AdcModel::new(8_192.0); // ±8.192 mV full scale -> 0.25 µV/LSB
/// assert_eq!(adc.quantize(0.0), 0);
/// assert_eq!(adc.quantize(0.25), 1);
/// assert_eq!(adc.quantize(1e9), i16::MAX);   // saturates
/// assert_eq!(adc.quantize(-1e9), i16::MIN);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcModel {
    full_scale_uv: f64,
}

impl Default for AdcModel {
    fn default() -> Self {
        Self::new(8_192.0)
    }
}

impl AdcModel {
    /// Creates an ADC with the given full-scale amplitude in microvolts
    /// (codes span ±`full_scale_uv`).
    ///
    /// # Panics
    ///
    /// Panics if `full_scale_uv` is not strictly positive.
    pub fn new(full_scale_uv: f64) -> Self {
        assert!(full_scale_uv > 0.0, "full scale must be positive");
        Self { full_scale_uv }
    }

    /// Microvolts represented by one least-significant bit.
    pub fn lsb_uv(&self) -> f64 {
        self.full_scale_uv / 32_768.0
    }

    /// Quantizes a voltage (µV) to a signed 16-bit code, saturating at the
    /// rails.
    pub fn quantize(&self, microvolts: f64) -> i16 {
        let code = (microvolts / self.lsb_uv()).round();
        if code >= i16::MAX as f64 {
            i16::MAX
        } else if code <= i16::MIN as f64 {
            i16::MIN
        } else {
            code as i16
        }
    }

    /// Reconstructs the voltage (µV) represented by a code.
    pub fn dequantize(&self, code: i16) -> f64 {
        code as f64 * self.lsb_uv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_half_lsb() {
        let adc = AdcModel::default();
        for uv in [-2000.0, -3.7, 0.0, 0.1, 517.3, 8000.0] {
            let err = (adc.dequantize(adc.quantize(uv)) - uv).abs();
            assert!(err <= adc.lsb_uv() / 2.0 + 1e-9, "uv={uv} err={err}");
        }
    }

    #[test]
    fn default_lsb_is_quarter_microvolt() {
        assert!((AdcModel::default().lsb_uv() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturation_at_rails() {
        let adc = AdcModel::new(1000.0);
        assert_eq!(adc.quantize(2000.0), i16::MAX);
        assert_eq!(adc.quantize(-2000.0), i16::MIN);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_full_scale() {
        let _ = AdcModel::new(0.0);
    }
}
