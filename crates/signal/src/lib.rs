//! Synthetic extracellular electrophysiology for evaluating HALO.
//!
//! The HALO paper evaluates its architecture on in-vivo recordings from the
//! arm and leg regions of a non-human primate's motor cortex (96-channel
//! microelectrode array, 30 kHz, 16-bit samples — a ~46 Mbps stream). Those
//! recordings are not publicly available, so this crate synthesizes the
//! closest equivalent: a multi-channel extracellular signal with
//!
//! * a 1/f ("pink") local-field-potential background,
//! * per-channel action potentials (biphasic spike templates driven by
//!   Poisson processes),
//! * band-limited oscillations, including a motor-cortex beta rhythm
//!   (14–25 Hz) that *desynchronizes* during movement — the signature the
//!   movement-intent pipeline detects,
//! * ictal (seizure) episodes with large-amplitude rhythmic discharges and
//!   elevated cross-channel synchrony — the signature the seizure-prediction
//!   pipeline detects,
//! * mains interference and thermal noise,
//!
//! quantized by a 16-bit ADC model at 30 kHz.
//!
//! Region presets ([`RegionProfile::arm`], [`RegionProfile::leg`]) differ in
//! firing rates, spike amplitudes, and oscillation mix so that compression
//! ratios differ by region, as in Figure 9 of the paper.
//!
//! Every generator is deterministic given a seed, so experiments and tests
//! are reproducible.
//!
//! # Example
//!
//! ```
//! use halo_signal::{RecordingConfig, RegionProfile};
//!
//! let config = RecordingConfig::new(RegionProfile::arm())
//!     .channels(4)
//!     .duration_ms(20);
//! let recording = config.generate(42);
//! assert_eq!(recording.channels(), 4);
//! assert_eq!(recording.samples_per_channel(), 600); // 20 ms at 30 kHz
//! ```

pub mod adc;
pub mod dataset;
pub mod episodes;
pub mod noise;
pub mod recording;
pub mod region;
pub mod rng;
pub mod spikes;

pub use adc::AdcModel;
pub use dataset::{Dataset, Trial, TrialKind};
pub use episodes::{Episode, EpisodeKind};
pub use noise::{GaussianNoise, PinkNoise};
pub use recording::{Recording, RecordingConfig};
pub use region::RegionProfile;
pub use rng::SimRng;
pub use spikes::{PoissonTrain, SpikeTemplate};

/// Default sampling frequency used throughout the paper's evaluation (30 kHz).
pub const SAMPLE_RATE_HZ: u32 = 30_000;

/// Default channel count of the modeled microelectrode array (96 channels).
pub const CHANNELS: usize = 96;

/// Bits per ADC sample (16-bit resolution, §V-A).
pub const SAMPLE_BITS: u32 = 16;

/// Real-time data rate of the modeled array in bits per second (~46 Mbps).
pub const DATA_RATE_BPS: u64 = SAMPLE_RATE_HZ as u64 * CHANNELS as u64 * SAMPLE_BITS as u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_rate_matches_paper() {
        // 96 ch x 30 kHz x 16 bit = 46.08 Mbps ("~46 Mbps" in §V-A).
        assert_eq!(DATA_RATE_BPS, 46_080_000);
    }
}
