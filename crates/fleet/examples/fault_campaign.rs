//! Fault campaign: chaos-test a fleet of implants and triage the result.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p halo-fleet --example fault_campaign
//! cargo run --release -p halo-fleet --example fault_campaign -- \
//!     --sessions 16 --duration-ms 40 --seed 7 --out-dir target/chaos
//! ```
//!
//! Writes `fault_campaign.json` (the bit-replayable triage document)
//! and one `postmortem_<id>.json` per session whose flight recorder
//! latched a dump, under `--out-dir` (default `target/chaos`). Exits
//! nonzero if any session ended dead — CI runs this as the chaos smoke
//! test: every session must end recovered or declared degraded.

use std::path::PathBuf;

use halo_fleet::{campaign, CampaignConfig};

struct Args {
    sessions: usize,
    duration_ms: usize,
    seed: u64,
    threads: usize,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 16,
        duration_ms: 40,
        seed: 0x000F_1EE7,
        threads: 0,
        out_dir: PathBuf::from("target/chaos"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sessions" => {
                args.sessions = val("--sessions")?.parse().map_err(|e| format!("{e}"))?
            }
            "--duration-ms" => {
                args.duration_ms = val("--duration-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--out-dir" => args.out_dir = PathBuf::from(val("--out-dir")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()
        .map_err(|e| format!("{e}\nflags: --sessions --duration-ms --seed --threads --out-dir"))?;

    let config = CampaignConfig::default()
        .sessions(args.sessions)
        .duration_ms(args.duration_ms)
        .seed(args.seed)
        .threads(args.threads);
    println!(
        "fault campaign: {} sessions x {} ms, seed {:#x}",
        config.sessions, config.duration_ms, config.seed,
    );

    let start = std::time::Instant::now();
    let reports = campaign::run_campaign(&config);
    let totals = campaign::totals(&reports);
    println!(
        "campaign done in {:.2?}: {} recovered, {} degraded, {} dead",
        start.elapsed(),
        totals.recovered,
        totals.degraded,
        totals.dead,
    );

    for row in &reports {
        match &row.report {
            Ok(r) => println!(
                "  session {:>3} [{}] {:<9} plan {:#018x}: {} injected / {} detected, \
                 {} recoveries, arq retries {} giveups {}{}",
                row.id,
                row.config.task.label(),
                r.outcome.label(),
                r.plan_fingerprint,
                r.faults_injected,
                r.faults_detected,
                r.recoveries.len(),
                r.arq.retries,
                r.arq.giveups,
                r.reason
                    .as_deref()
                    .map(|reason| format!("  ({reason})"))
                    .unwrap_or_default(),
            ),
            Err(e) => println!(
                "  session {:>3} [{}] dead at setup: {e}",
                row.id,
                row.config.task.label(),
            ),
        }
    }

    std::fs::create_dir_all(&args.out_dir)?;
    let triage_path = args.out_dir.join("fault_campaign.json");
    std::fs::write(&triage_path, campaign::render_campaign(&config, &reports))?;
    let mut postmortems = 0usize;
    for row in &reports {
        if let Some(dump) = row.postmortem() {
            std::fs::write(
                args.out_dir.join(format!("postmortem_{}.json", row.id)),
                dump,
            )?;
            postmortems += 1;
        }
    }
    println!(
        "wrote {} and {postmortems} post-mortem dump(s)",
        triage_path.display(),
    );

    // CI contract: chaos never kills a session. Degraded is an honest
    // verdict; dead (or an undetected corruption) fails the build.
    if totals.dead > 0 {
        eprintln!("CAMPAIGN FAILED: {} dead session(s)", totals.dead);
        std::process::exit(1);
    }
    Ok(())
}
