//! Fleet observatory: run hundreds of concurrent patient sessions and
//! roll their telemetry up into one exposition plus a triage report.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p halo-fleet --example fleet_observatory
//! cargo run --release -p halo-fleet --example fleet_observatory -- \
//!     --sessions 64 --frames 1200 --threads 4 --out-dir target/fleet
//! ```
//!
//! Writes `fleet_exposition.prom` and `fleet_triage.json` under
//! `--out-dir` (default `target/fleet`; nothing is written to the
//! repository root). Exits nonzero if any session raised a critical
//! watchdog alert or failed — CI runs this as the fleet smoke test.

use std::path::PathBuf;

use halo_fleet::{exemplar, registry, scheduler, triage, FleetConfig, FleetSession, SessionSpec};

struct Args {
    sessions: usize,
    frames: usize,
    batch: usize,
    threads: usize,
    top: usize,
    budget_mw: Option<f64>,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 256,
        frames: 600,
        batch: 64,
        threads: 0,
        top: 5,
        budget_mw: None,
        out_dir: PathBuf::from("target/fleet"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sessions" => {
                args.sessions = val("--sessions")?.parse().map_err(|e| format!("{e}"))?
            }
            "--frames" => args.frames = val("--frames")?.parse().map_err(|e| format!("{e}"))?,
            "--batch" => args.batch = val("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--top" => args.top = val("--top")?.parse().map_err(|e| format!("{e}"))?,
            "--budget-mw" => {
                args.budget_mw = Some(val("--budget-mw")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out-dir" => args.out_dir = PathBuf::from(val("--out-dir")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| {
        format!("{e}\nflags: --sessions --frames --batch --threads --top --budget-mw --out-dir")
    })?;

    let mut config = FleetConfig::default()
        .frames_per_session(args.frames)
        .batch_frames(args.batch)
        .threads(args.threads);
    if let Some(mw) = args.budget_mw {
        config = config.budget_mw(mw);
    }

    let specs = SessionSpec::mixed(args.sessions, &config);
    println!(
        "fleet observatory: {} sessions x {} frames, batch {} frames, {} worker thread(s)",
        args.sessions,
        args.frames,
        config.batch_frames,
        scheduler::resolve_threads(config.threads),
    );

    // Build every session up front (shared seizure SVM trained once),
    // then drive them concurrently.
    let svm = halo_fleet::session::train_shared_svm(&config)?;
    let mut sessions = Vec::with_capacity(specs.len());
    for spec in specs {
        sessions.push(FleetSession::build(spec, &config, Some(&svm))?);
    }
    let fleet_registry = halo_fleet::FleetRegistry::new(config.shards);
    let stats = scheduler::run_sessions(sessions, &config, &fleet_registry);
    let reports = fleet_registry.into_reports();

    let rollup = registry::FleetRollup::from_reports(&reports);
    println!(
        "completed {}/{} sessions in {:.2?} ({:.1} sessions/s, {} batches, {} steals)",
        rollup.completed,
        rollup.sessions,
        stats.elapsed,
        stats.sessions_per_sec(),
        stats.batches,
        stats.steals,
    );
    println!(
        "fleet: {} frames, {} radio bytes, {:.2} mW aggregate, alerts info/warn/crit = {}/{}/{}",
        rollup.frames,
        rollup.radio_bytes,
        rollup.device_mw,
        rollup.severity_counts[0],
        rollup.severity_counts[1],
        rollup.severity_counts[2],
    );
    println!(
        "exemplar tracing: {} frames sampled, {} span trees completed",
        rollup.traces_sampled, rollup.traces_completed,
    );
    for t in exemplar::collect(&reports).iter().take(3) {
        match &t.dominant {
            Some((hop, f)) => println!(
                "  exemplar session {} [{}] frame {}: {} ns end-to-end, {:.0}% in {}",
                t.session,
                t.pipeline,
                t.root_frame,
                t.end_to_end_ns,
                f * 100.0,
                hop,
            ),
            None => println!(
                "  exemplar session {} [{}] frame {}: {} ns end-to-end",
                t.session, t.pipeline, t.root_frame, t.end_to_end_ns,
            ),
        }
    }

    std::fs::create_dir_all(&args.out_dir)?;
    let expo_path = args.out_dir.join("fleet_exposition.prom");
    std::fs::write(&expo_path, registry::render_exposition(&reports))?;
    let triage_path = args.out_dir.join("fleet_triage.json");
    let triage_doc = triage::render_triage(&reports, args.top);
    std::fs::write(&triage_path, &triage_doc)?;
    println!(
        "wrote {} and {}",
        expo_path.display(),
        triage_path.display()
    );

    println!("\ntop {} sessions by triage score:", args.top);
    for row in triage::worst_sessions(&reports, args.top) {
        let status = row.report.monitor.status();
        println!(
            "  session {:>3} [{}] score {:>12.1}  alerts i/w/c {}/{}/{}  {}",
            row.report.spec.id,
            row.report.spec.task.label(),
            row.score,
            status.severity_counts[0],
            status.severity_counts[1],
            status.severity_counts[2],
            row.report
                .error
                .as_deref()
                .unwrap_or(if row.report.completed() {
                    "ok"
                } else {
                    "incomplete"
                }),
        );
    }

    // CI contract: a healthy fleet raises no critical alerts and loses
    // no sessions. (An induced-overload run via --budget-mw is expected
    // to fail here; that is the point.)
    let criticals = rollup.severity_counts[2];
    if criticals > 0 || rollup.failed > 0 {
        eprintln!(
            "FLEET UNHEALTHY: {criticals} critical alert(s), {} failed session(s)",
            rollup.failed
        );
        std::process::exit(1);
    }
    Ok(())
}
