//! Fleet health triage: rank the worst sessions and assemble the fleet
//! post-mortem.
//!
//! An operator staring at a 256-session fleet needs the answer to "who
//! is hurting and why" in one document. [`render_triage`] scores every
//! session — critical alerts and runtime errors dominate, then warning
//! alerts, then tail latency — and emits a JSON report with fleet
//! totals, the top-K worst sessions, and, for any session that latched
//! a flight-recorder dump, that session's post-mortem embedded verbatim
//! (it is already JSON, so the triage document stays machine-parseable
//! end to end).

use halo_telemetry::{json, CycleProfile};

use crate::exemplar;
use crate::registry::fleet_profile;
use crate::session::SessionReport;

/// One scored row of the triage table.
#[derive(Debug)]
pub struct TriageRow<'a> {
    /// The session under triage.
    pub report: &'a SessionReport,
    /// Composite badness score (higher = worse); see [`score`] — plus the
    /// profile-divergence term added by [`worst_sessions`].
    pub score: f64,
    /// How far the session's cycle attribution sits from the fleet norm
    /// for its pipeline (max absolute share delta over its frames).
    pub divergence: f64,
    /// The session profile's dominant frame and its cycle share.
    pub dominant: Option<(String, f64)>,
}

/// Composite badness: a runtime error or critical alert is always worse
/// than any number of warnings, which in turn dominate anomaly
/// detections, which dominate tail latency. The p99 term (in
/// microseconds) breaks ties between healthy sessions so the triage
/// table stays fully ordered and deterministic.
pub fn score(report: &SessionReport) -> f64 {
    let status = report.monitor.status();
    let critical = status.severity_counts[2] as f64;
    let warning = status.severity_counts[1] as f64;
    let error = if report.error.is_some() { 1.0 } else { 0.0 };
    let anomalies = report
        .continuous
        .as_ref()
        .map_or(0.0, |c| c.status().anomalies_total as f64);
    let p99_us = worst_p99_ns(report) as f64 / 1e3;
    (critical + error) * 1e9 + warning * 1e6 + anomalies * 1e2 + p99_us
}

fn worst_p99_ns(report: &SessionReport) -> u64 {
    report
        .recorder
        .pipeline_histograms()
        .iter()
        .map(|(_, h)| h.summary().p99)
        .max()
        .unwrap_or(0)
}

/// Per-frame-path cycle shares within `pipeline`, as fractions of that
/// pipeline's total cycles — run length cancels, so sessions of any
/// duration compare directly.
fn pipeline_shares(profile: &CycleProfile, pipeline: &str) -> Vec<(String, f64)> {
    let total: u64 = profile
        .rows
        .iter()
        .filter(|r| r.pipeline == pipeline)
        .map(|r| r.cycles)
        .sum();
    if total == 0 {
        return Vec::new();
    }
    profile
        .rows
        .iter()
        .filter(|r| r.pipeline == pipeline)
        .map(|r| (r.frame(), r.cycles as f64 / total as f64))
        .collect()
}

/// Dominant-frame divergence: the largest absolute difference between
/// the session's per-frame cycle shares and the fleet norm for its
/// pipeline (frames present on only one side count at their full share).
/// A session whose time goes to the same places as its peers scores 0; a
/// session burning its cycles somewhere unusual — a drain phase the rest
/// of the fleet barely touches, say — scores up to 1.
pub fn profile_divergence(report: &SessionReport, fleet: &CycleProfile) -> f64 {
    let Some(profile) = &report.profile else {
        return 0.0;
    };
    let pipeline = report.spec.task.label();
    let session = pipeline_shares(profile, pipeline);
    let norm = pipeline_shares(fleet, pipeline);
    let mut max = 0.0f64;
    for (frame, share) in &session {
        let fleet_share = norm
            .iter()
            .find(|(f, _)| f == frame)
            .map_or(0.0, |(_, s)| *s);
        max = max.max((share - fleet_share).abs());
    }
    for (frame, share) in &norm {
        if !session.iter().any(|(f, _)| f == frame) {
            max = max.max(*share);
        }
    }
    max
}

/// Scores every session and returns the `k` worst, worst first. The
/// profile-divergence term (scaled to stay below one warning alert)
/// ranks attribution outliers above merely slow sessions, without ever
/// outranking a real alert. Ties break toward the lower session id so
/// the ordering is total.
pub fn worst_sessions(reports: &[SessionReport], k: usize) -> Vec<TriageRow<'_>> {
    let fleet = fleet_profile(reports);
    let mut rows: Vec<TriageRow> = reports
        .iter()
        .map(|report| {
            let divergence = profile_divergence(report, &fleet);
            TriageRow {
                report,
                score: score(report) + divergence * 1e4,
                divergence,
                dominant: report.profile.as_ref().and_then(|p| p.dominant_frame()),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.report.spec.id.cmp(&b.report.spec.id))
    });
    rows.truncate(k);
    rows
}

/// Renders the fleet triage document: totals, the top-`k` worst
/// sessions, offending sessions' embedded post-mortems, and the
/// exemplar-trace digest. The output is valid JSON (checked by tests
/// with [`json::parse`]).
pub fn render_triage(reports: &[SessionReport], k: usize) -> String {
    let mut severity = [0u64; 3];
    let mut frames = 0u64;
    let mut completed = 0u64;
    let mut anomalies = 0u64;
    let mut slo_firings = 0u64;
    let mut max_burn = 0.0f64;
    for report in reports {
        let status = report.monitor.status();
        for (total, n) in severity.iter_mut().zip(status.severity_counts) {
            *total += n;
        }
        frames += report.recorder.snapshot().frames;
        if report.completed() {
            completed += 1;
        }
        if let Some(continuous) = &report.continuous {
            let cs = continuous.status();
            anomalies += cs.anomalies_total;
            slo_firings += cs.slo.total_fired();
            max_burn = max_burn.max(cs.slo.max_burn_rate());
        }
    }

    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"sessions\": {},\n", reports.len()));
    out.push_str(&format!("  \"completed\": {completed},\n"));
    out.push_str(&format!(
        "  \"failed\": {},\n",
        reports.len() as u64 - completed
    ));
    out.push_str(&format!("  \"frames\": {frames},\n"));
    out.push_str(&format!(
        "  \"alerts\": {{\"info\": {}, \"warning\": {}, \"critical\": {}}},\n",
        severity[0], severity[1], severity[2]
    ));
    out.push_str(&format!(
        "  \"slo\": {{\"firings\": {slo_firings}, \"max_burn_rate\": {}}},\n",
        json::number(max_burn)
    ));
    out.push_str(&format!("  \"anomalies\": {anomalies},\n"));

    // The merged fleet profile's one-line verdict: where the fleet's
    // cycles go, fleet-wide.
    let fleet = fleet_profile(reports);
    let fleet_dominant = match fleet.dominant_frame() {
        Some((frame, share)) => format!(
            "{{\"frame\": {}, \"share\": {}}}",
            json::string(&frame),
            json::number(share)
        ),
        None => "null".to_string(),
    };
    out.push_str(&format!(
        "  \"profile\": {{\"total_cycles\": {}, \"frames\": {}, \"dominant\": {fleet_dominant}}},\n",
        fleet.total_cycles(),
        fleet.frames
    ));

    out.push_str("  \"worst\": [\n");
    let rows = worst_sessions(reports, k);
    for (i, row) in rows.iter().enumerate() {
        let r = row.report;
        let status = r.monitor.status();
        out.push_str("    {\n");
        out.push_str(&format!("      \"session\": {},\n", r.spec.id));
        out.push_str(&format!(
            "      \"pipeline\": {},\n",
            json::string(r.spec.task.label())
        ));
        out.push_str(&format!("      \"score\": {},\n", json::number(row.score)));
        out.push_str(&format!(
            "      \"alerts\": {{\"info\": {}, \"warning\": {}, \"critical\": {}}},\n",
            status.severity_counts[0], status.severity_counts[1], status.severity_counts[2]
        ));
        out.push_str(&format!("      \"p99_ns\": {},\n", worst_p99_ns(r)));
        let dominant = match &row.dominant {
            Some((frame, share)) => format!(
                "{{\"frame\": {}, \"share\": {}}}",
                json::string(frame),
                json::number(*share)
            ),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "      \"profile\": {{\"dominant\": {dominant}, \"divergence\": {}}},\n",
            json::number(row.divergence)
        ));
        match &r.continuous {
            Some(continuous) => {
                let cs = continuous.status();
                let mut burns = Vec::new();
                for (name, state) in &cs.slo.objectives {
                    let burn = state.burn_rate[0].max(state.burn_rate[1]);
                    let fired = state.fired[0] + state.fired[1];
                    if burn > 0.0 || fired > 0 {
                        burns.push(format!(
                            "{{\"objective\": {}, \"burn_rate\": {}, \"firings\": {fired}}}",
                            json::string(name),
                            json::number(burn)
                        ));
                    }
                }
                out.push_str(&format!("      \"slo\": [{}],\n", burns.join(", ")));
                let recent: Vec<String> = cs
                    .detections
                    .iter()
                    .rev()
                    .take(4)
                    .map(|d| {
                        format!(
                            "{{\"series\": {}, \"signal\": {}, \"frame\": {}, \"score\": {}}}",
                            json::string(d.series.name()),
                            json::string(d.signal.label()),
                            d.frame,
                            json::number(d.score)
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "      \"anomalies\": {{\"total\": {}, \"recent\": [{}]}},\n",
                    cs.anomalies_total,
                    recent.join(", ")
                ));
            }
            None => {
                out.push_str("      \"slo\": null,\n");
                out.push_str("      \"anomalies\": null,\n");
            }
        }
        match status.worst_window {
            Some((frame, mw)) => out.push_str(&format!(
                "      \"worst_window\": {{\"frame\": {frame}, \"mw\": {}}},\n",
                json::number(mw)
            )),
            None => out.push_str("      \"worst_window\": null,\n"),
        }
        match &r.error {
            Some(e) => out.push_str(&format!("      \"error\": {},\n", json::string(e))),
            None => out.push_str("      \"error\": null,\n"),
        }
        // The flight recorder's dump is already a JSON object; embed it
        // verbatim so nested fields stay queryable.
        match r.monitor.postmortem() {
            Some(pm) => out.push_str(&format!("      \"postmortem\": {pm}\n")),
            None => out.push_str("      \"postmortem\": null\n"),
        }
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");

    out.push_str("  \"exemplars\": [\n");
    let traces = exemplar::collect(reports);
    for (i, t) in traces.iter().enumerate() {
        let dominant = match &t.dominant {
            Some((label, fraction)) => format!(
                "{{\"hop\": {}, \"fraction\": {}}}",
                json::string(label),
                json::number(*fraction)
            ),
            None => "null".to_string(),
        };
        // Cross-link the traced session's profile verdict: the exemplar
        // explains one frame's latency, the profile says whether that
        // session's aggregate attribution agrees.
        let profile_dominant = reports
            .iter()
            .find(|r| r.spec.id == t.session)
            .and_then(|r| r.profile.as_ref())
            .and_then(|p| p.dominant_frame())
            .map_or("null".to_string(), |(frame, share)| {
                format!(
                    "{{\"frame\": {}, \"share\": {}}}",
                    json::string(&frame),
                    json::number(share)
                )
            });
        out.push_str(&format!(
            "    {{\"session\": {}, \"pipeline\": {}, \"frame\": {}, \"end_to_end_ns\": {}, \"dominant\": {dominant}, \"profile_dominant\": {profile_dominant}}}{}\n",
            t.session,
            json::string(t.pipeline),
            t.root_frame,
            t.end_to_end_ns,
            if i + 1 == traces.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{FleetConfig, SessionSpec};

    #[test]
    fn triage_is_valid_json_and_ranks_tripped_sessions_first() {
        // Starve the budget so every session raises critical power alerts
        // and latches a post-mortem.
        let config = FleetConfig::default()
            .frames_per_session(400)
            .budget_mw(0.0001);
        let specs = SessionSpec::mixed(4, &config);
        let registry = crate::run(specs, &config).unwrap();
        let reports = registry.into_reports();
        let doc = render_triage(&reports, 2);

        let value = json::parse(&doc).expect("triage must parse");
        assert_eq!(value.get("sessions").and_then(|v| v.as_u64()), Some(4));
        let worst = value
            .get("worst")
            .and_then(|v| v.as_array())
            .expect("worst array");
        assert_eq!(worst.len(), 2);
        // Every starved session latched a post-mortem, so the embedded
        // dump must be a JSON object, not null.
        for row in worst {
            assert!(row.get("postmortem").is_some());
            assert!(
                row.get("postmortem")
                    .and_then(|p| p.get("reason"))
                    .is_some()
                    || row
                        .get("postmortem")
                        .and_then(|p| p.get("alerts"))
                        .is_some(),
                "postmortem should be embedded verbatim"
            );
        }
    }

    #[test]
    fn healthy_fleet_triage_orders_by_tail_latency() {
        let config = FleetConfig::default().frames_per_session(300);
        let specs = SessionSpec::mixed(6, &config);
        let registry = crate::run(specs, &config).unwrap();
        let reports = registry.into_reports();
        let rows = worst_sessions(&reports, 6);
        assert!(rows.windows(2).all(|w| w[0].score >= w[1].score));
        // No alerts expected under the real 15 mW envelope.
        assert!(rows.iter().all(|r| r.score < 1e6));
        let doc = render_triage(&reports, 3);
        json::parse(&doc).expect("triage must parse");
    }
}
