//! Seeded fleet-wide chaos campaigns.
//!
//! A campaign runs N independent [`ChaosSession`]s concurrently — each
//! with its own pipeline, fault plan, and synthetic patient — and rolls
//! the verdicts into one triage document: per-session outcome
//! (recovered / degraded / dead), fleet totals, ARQ counters, and a
//! time-to-recovery histogram. Every per-session seed derives from the
//! single campaign seed, so the same seed replays the same schedules
//! and the same triage JSON bit-for-bit, regardless of worker count.
//!
//! Post-mortems latched by the per-session flight recorders contain
//! measured latencies and are therefore *not* bit-stable; the triage
//! document records only their presence, and
//! [`CampaignSessionReport::postmortem`] hands the full dump to callers
//! (the `fault_campaign` example writes them as sibling artifacts).

use halo_core::Task;
use halo_faults::{ChaosConfig, ChaosReport, ChaosSession, Outcome};
use halo_signal::SimRng;
use halo_telemetry::json;

use crate::scheduler::resolve_threads;

/// Upper edges (exclusive) of the time-to-recovery histogram buckets,
/// in frames; the last bucket is unbounded. Zero frames means an
/// in-place repair that redid no work.
pub const TTR_BUCKETS: [(&str, u64); 5] = [
    ("0", 1),
    ("1-31", 32),
    ("32-255", 256),
    ("256-1023", 1024),
    ("1024+", u64::MAX),
];

/// Configuration for one chaos campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every per-session plan and recording seed derives
    /// from it.
    pub seed: u64,
    /// Number of concurrent sessions. Pipelines round-robin over
    /// [`Task::all`].
    pub sessions: usize,
    /// Electrode channels per session.
    pub channels: usize,
    /// Stream length per session, in milliseconds of biological time.
    pub duration_ms: usize,
    /// Frames per scheduler batch.
    pub batch_frames: usize,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Data-plane faults per session (FIFO bit flips, overflow
    /// pressure, PE output corruption).
    pub data_faults: u32,
    /// Rogue MMIO switch words per session.
    pub rogue_mmio: u32,
    /// NoC link-degradation faults per session.
    pub link_faults: u32,
    /// Give every k-th session a brownout window (0 = never).
    pub brownout_every: usize,
    /// Brownout window length in frames.
    pub brownout_frames: u64,
    /// Radio frame drop probability, per mille.
    pub radio_drop_permille: u32,
    /// Radio frame corruption probability, per mille.
    pub radio_corrupt_permille: u32,
    /// Raw bytes per compression block (small blocks frame radio
    /// traffic mid-stream, exercising the ARQ link).
    pub block_bytes: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0x000F_1EE7,
            sessions: 8,
            channels: 4,
            duration_ms: 40,
            batch_frames: 32,
            threads: 0,
            data_faults: 3,
            rogue_mmio: 1,
            link_faults: 1,
            brownout_every: 4,
            brownout_frames: 256,
            radio_drop_permille: 150,
            radio_corrupt_permille: 80,
            block_bytes: 512,
        }
    }
}

impl CampaignConfig {
    /// Sets the campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the session count.
    pub fn sessions(mut self, sessions: usize) -> Self {
        self.sessions = sessions;
        self
    }

    /// Sets the per-session stream length in milliseconds.
    pub fn duration_ms(mut self, ms: usize) -> Self {
        self.duration_ms = ms;
        self
    }

    /// Sets the worker-thread count (0 = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds the per-session chaos configs. Deterministic: session `i`
    /// always receives the same pipeline and seeds for a given campaign
    /// seed, independent of thread count.
    pub fn session_configs(&self) -> Vec<ChaosConfig> {
        let tasks = Task::all();
        let mut rng = SimRng::new(self.seed);
        (0..self.sessions)
            .map(|i| {
                let plan_seed = rng.next_u64();
                let recording_seed = rng.next_u64();
                let mut cfg = ChaosConfig::new(tasks[i % tasks.len()]);
                cfg.channels = self.channels;
                cfg.duration_ms = self.duration_ms;
                cfg.batch_frames = self.batch_frames;
                cfg.block_bytes = self.block_bytes;
                cfg.recording_seed = recording_seed;
                cfg.plan.seed = plan_seed;
                cfg.plan.data_faults = self.data_faults;
                cfg.plan.rogue_mmio = self.rogue_mmio;
                cfg.plan.link_faults = self.link_faults;
                cfg.plan.radio_drop_permille = self.radio_drop_permille;
                cfg.plan.radio_corrupt_permille = self.radio_corrupt_permille;
                cfg.plan.brownouts =
                    if self.brownout_every > 0 && (i + 1) % self.brownout_every == 0 {
                        1
                    } else {
                        0
                    };
                cfg.plan.brownout_frames = self.brownout_frames;
                cfg
            })
            .collect()
    }
}

/// One campaign session's verdict.
#[derive(Debug)]
pub struct CampaignSessionReport {
    /// Campaign-wide session index.
    pub id: usize,
    /// The session's configuration (pipeline, seeds, plan parameters).
    pub config: ChaosConfig,
    /// The chaos report, or the setup error that prevented the run.
    pub report: Result<ChaosReport, String>,
}

impl CampaignSessionReport {
    /// The session's outcome; a setup failure counts as dead.
    pub fn outcome(&self) -> Outcome {
        match &self.report {
            Ok(r) => r.outcome,
            Err(_) => Outcome::Dead,
        }
    }

    /// The latched flight-recorder post-mortem, if any. Not bit-stable
    /// across replays (contains measured latencies) — write it as a
    /// sibling artifact rather than embedding it in the triage JSON.
    pub fn postmortem(&self) -> Option<&str> {
        self.report
            .as_ref()
            .ok()
            .and_then(|r| r.postmortem.as_deref())
    }
}

/// Runs the campaign: N chaos sessions striped across worker threads.
/// Results come back indexed by session id, so the report order (and
/// the rendered triage) is identical for any thread count. A panicking
/// worker never takes the campaign down: its unfinished sessions are
/// marked dead with synthetic error reports and every other stripe's
/// verdicts stand.
pub fn run_campaign(config: &CampaignConfig) -> Vec<CampaignSessionReport> {
    run_campaign_with(config, |cfg| {
        ChaosSession::new(cfg).run().map_err(|e| e.to_string())
    })
}

/// [`run_campaign`] with the per-session runner injected — the seam the
/// worker-panic regression test uses to crash one stripe on purpose.
fn run_campaign_with(
    config: &CampaignConfig,
    runner: impl Fn(ChaosConfig) -> Result<ChaosReport, String> + Sync,
) -> Vec<CampaignSessionReport> {
    let configs = config.session_configs();
    let threads = resolve_threads(config.threads).max(1);
    let mut slots: Vec<Option<CampaignSessionReport>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    let runner = &runner;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let stripe: Vec<(usize, ChaosConfig)> = configs
                .iter()
                .enumerate()
                .skip(t)
                .step_by(threads)
                .map(|(i, c)| (i, c.clone()))
                .collect();
            handles.push(scope.spawn(move || {
                stripe
                    .into_iter()
                    .map(|(id, cfg)| {
                        let report = runner(cfg.clone());
                        CampaignSessionReport {
                            id,
                            config: cfg,
                            report,
                        }
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(reports) => {
                    for report in reports {
                        let id = report.id;
                        slots[id] = Some(report);
                    }
                }
                Err(payload) => {
                    // The worker died mid-stripe. Every session it never
                    // delivered gets a synthetic dead report carrying the
                    // panic message, filled in below once all surviving
                    // stripes have landed their results.
                    let reason = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "unknown panic".to_string());
                    for (id, slot) in slots.iter_mut().enumerate() {
                        if slot.is_none() {
                            *slot = Some(CampaignSessionReport {
                                id,
                                config: configs[id].clone(),
                                report: Err(format!("campaign worker panicked: {reason}")),
                            });
                        }
                    }
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every session produces a report"))
        .collect()
}

/// Fleet outcome totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignTotals {
    /// Sessions byte-identical to their fault-free reference.
    pub recovered: usize,
    /// Sessions that survived with a degraded marker.
    pub degraded: usize,
    /// Sessions that could not recover (or silently diverged).
    pub dead: usize,
}

/// Tallies outcomes across the campaign.
pub fn totals(reports: &[CampaignSessionReport]) -> CampaignTotals {
    let mut t = CampaignTotals::default();
    for r in reports {
        match r.outcome() {
            Outcome::Recovered => t.recovered += 1,
            Outcome::Degraded => t.degraded += 1,
            Outcome::Dead => t.dead += 1,
        }
    }
    t
}

fn ttr_histogram(reports: &[CampaignSessionReport]) -> [u64; TTR_BUCKETS.len()] {
    let mut counts = [0u64; TTR_BUCKETS.len()];
    for r in reports.iter().filter_map(|r| r.report.as_ref().ok()) {
        for rec in &r.recoveries {
            let bucket = TTR_BUCKETS
                .iter()
                .position(|(_, hi)| rec.ttr_frames < *hi)
                .unwrap_or(TTR_BUCKETS.len() - 1);
            counts[bucket] += 1;
        }
    }
    counts
}

fn hex64(v: u64) -> String {
    json::string(&format!("{v:#018x}"))
}

/// Renders the campaign triage document. Deterministic for a given
/// campaign seed and session count: only seeded quantities appear, so
/// replaying the campaign reproduces this JSON bit-for-bit (checked by
/// tests with [`json::parse`] and a cross-thread-count comparison).
pub fn render_campaign(config: &CampaignConfig, reports: &[CampaignSessionReport]) -> String {
    let t = totals(reports);
    let histogram = ttr_histogram(reports);
    let mut injected = 0usize;
    let mut detected = 0usize;
    let mut fabric_repairs = 0usize;
    let mut restores = 0usize;
    let mut arq = [0u64; 6];
    for r in reports.iter().filter_map(|r| r.report.as_ref().ok()) {
        injected += r.faults_injected;
        detected += r.faults_detected;
        fabric_repairs += r
            .recoveries
            .iter()
            .filter(|e| e.strategy == "fabric_reprogram")
            .count();
        restores += r
            .recoveries
            .iter()
            .filter(|e| e.strategy == "checkpoint_restore")
            .count();
        for (slot, v) in arq.iter_mut().zip([
            r.arq.accepted,
            r.arq.retries,
            r.arq.giveups,
            r.arq.crc_rejects,
            r.arq.duplicates,
            r.arq.delivered,
        ]) {
            *slot += v;
        }
    }

    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"campaign_seed\": {},\n", hex64(config.seed)));
    out.push_str(&format!("  \"sessions\": {},\n", reports.len()));
    out.push_str(&format!(
        "  \"outcomes\": {{\"recovered\": {}, \"degraded\": {}, \"dead\": {}}},\n",
        t.recovered, t.degraded, t.dead
    ));
    out.push_str(&format!(
        "  \"faults\": {{\"injected\": {injected}, \"detected\": {detected}}},\n"
    ));
    out.push_str(&format!(
        "  \"recoveries\": {{\"fabric_reprogram\": {fabric_repairs}, \"checkpoint_restore\": {restores}}},\n"
    ));
    out.push_str(&format!(
        "  \"arq\": {{\"accepted\": {}, \"retries\": {}, \"giveups\": {}, \"crc_rejects\": {}, \"duplicates\": {}, \"delivered\": {}}},\n",
        arq[0], arq[1], arq[2], arq[3], arq[4], arq[5]
    ));

    out.push_str("  \"ttr_histogram\": [");
    for (i, ((label, _), count)) in TTR_BUCKETS.iter().zip(histogram).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"frames\": {}, \"recoveries\": {count}}}",
            json::string(label)
        ));
    }
    out.push_str("],\n");

    out.push_str("  \"sessions_detail\": [\n");
    for (i, row) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"session\": {},\n", row.id));
        out.push_str(&format!(
            "      \"pipeline\": {},\n",
            json::string(row.config.task.label())
        ));
        out.push_str(&format!(
            "      \"outcome\": {},\n",
            json::string(row.outcome().label())
        ));
        match &row.report {
            Ok(r) => {
                out.push_str(&format!(
                    "      \"plan_fingerprint\": {},\n",
                    hex64(r.plan_fingerprint)
                ));
                out.push_str(&format!("      \"frames\": {},\n", r.frames));
                out.push_str(&format!(
                    "      \"faults\": {{\"injected\": {}, \"detected\": {}}},\n",
                    r.faults_injected, r.faults_detected
                ));
                out.push_str(&format!("      \"recoveries\": {},\n", r.recoveries.len()));
                out.push_str(&format!(
                    "      \"degraded_frames\": {},\n",
                    r.degraded_frames
                ));
                out.push_str(&format!(
                    "      \"brownout_violations\": {},\n",
                    r.brownout_violations
                ));
                out.push_str(&format!(
                    "      \"arq\": {{\"accepted\": {}, \"retries\": {}, \"giveups\": {}, \"crc_rejects\": {}, \"duplicates\": {}, \"delivered\": {}}},\n",
                    r.arq.accepted,
                    r.arq.retries,
                    r.arq.giveups,
                    r.arq.crc_rejects,
                    r.arq.duplicates,
                    r.arq.delivered
                ));
                out.push_str(&format!("      \"radio_bytes\": {},\n", r.radio_bytes));
                match &r.reason {
                    Some(reason) => {
                        out.push_str(&format!("      \"reason\": {},\n", json::string(reason)))
                    }
                    None => out.push_str("      \"reason\": null,\n"),
                }
                out.push_str(&format!(
                    "      \"postmortem_latched\": {}\n",
                    r.postmortem.is_some()
                ));
            }
            Err(e) => {
                out.push_str(&format!("      \"reason\": {},\n", json::string(e)));
                out.push_str("      \"postmortem_latched\": false\n");
            }
        }
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign() -> CampaignConfig {
        CampaignConfig::default()
            .sessions(4)
            .duration_ms(20)
            .seed(0xCA_F0_0D)
    }

    #[test]
    fn campaign_replays_bit_identically_across_thread_counts() {
        let single = run_campaign(&small_campaign().threads(1));
        let striped = run_campaign(&small_campaign().threads(3));
        let doc_a = render_campaign(&small_campaign(), &single);
        let doc_b = render_campaign(&small_campaign(), &striped);
        assert_eq!(doc_a, doc_b, "triage must replay bit-for-bit");
        json::parse(&doc_a).expect("triage must parse");
        for (a, b) in single.iter().zip(&striped) {
            assert_eq!(a.outcome(), b.outcome());
            let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
            assert_eq!(ra.plan_fingerprint, rb.plan_fingerprint);
            assert_eq!(ra.recoveries, rb.recoveries);
            assert_eq!(ra.arq, rb.arq);
        }
    }

    #[test]
    fn stock_campaign_ends_recovered_or_degraded() {
        // One session per stock pipeline, with radio loss, data-plane
        // corruption, rogue MMIO, and a brownout in the mix.
        let config = CampaignConfig::default().sessions(8).duration_ms(30);
        let reports = run_campaign(&config);
        let t = totals(&reports);
        assert_eq!(t.dead, 0, "no session may die: {reports:#?}");
        assert!(t.recovered >= 1, "some sessions must fully recover");
        assert_eq!(t.recovered + t.degraded, 8);

        let doc = render_campaign(&config, &reports);
        let value = json::parse(&doc).expect("triage must parse");
        assert_eq!(
            value
                .get("outcomes")
                .and_then(|o| o.get("dead"))
                .and_then(|v| v.as_u64()),
            Some(0)
        );
        let detail = value
            .get("sessions_detail")
            .and_then(|v| v.as_array())
            .expect("sessions_detail array");
        assert_eq!(detail.len(), 8);
        // Any session that detected a fault latched a post-mortem whose
        // dump embeds the recent injected faults (rendered by the
        // health monitor); here we check the latch is reported.
        for (row, report) in detail.iter().zip(&reports) {
            let latched = report.postmortem().is_some();
            if latched {
                assert!(report.postmortem().unwrap().contains("recent_faults"));
            }
            assert_eq!(
                row.get("postmortem_latched").and_then(|v| v.as_bool()),
                Some(latched)
            );
        }
    }

    #[test]
    fn panicked_worker_marks_its_sessions_dead_without_killing_the_campaign() {
        // Striped over 2 threads: sessions 1 and 3 belong to the stripe
        // whose runner panics mid-way. The campaign must still return a
        // report per session, with the panicked stripe's sessions dead
        // (synthetic error reports), the other stripe's verdicts sound,
        // and the rendered triage still valid JSON.
        let config = small_campaign().threads(2);
        // Crash the worker when it reaches session 1 — the first session
        // of stripe 1, so sessions 1 and 3 both go undelivered.
        let crash_seed = config.session_configs()[1].recording_seed;
        let reports = run_campaign_with(&config, move |cfg| {
            if cfg.recording_seed == crash_seed {
                panic!("injected worker crash");
            }
            ChaosSession::new(cfg).run().map_err(|e| e.to_string())
        });
        assert_eq!(reports.len(), 4, "every session must get a report");
        for (id, report) in reports.iter().enumerate() {
            assert_eq!(report.id, id);
        }
        let dead: Vec<usize> = reports
            .iter()
            .filter(|r| r.outcome() == Outcome::Dead)
            .map(|r| r.id)
            .collect();
        assert!(!dead.is_empty(), "the crashed stripe must surface as dead");
        for id in &dead {
            let err = reports[*id].report.as_ref().unwrap_err();
            assert!(
                err.contains("campaign worker panicked") && err.contains("injected worker crash"),
                "synthetic report must carry the panic: {err}"
            );
        }
        // The surviving stripe's sessions ran to a real verdict.
        assert!(
            reports.iter().any(|r| r.report.is_ok()),
            "surviving stripes must keep their verdicts"
        );
        let t = totals(&reports);
        assert_eq!(t.dead, dead.len());
        let doc = render_campaign(&config, &reports);
        json::parse(&doc).expect("triage with dead stripe must still parse");
    }

    #[test]
    fn session_configs_round_robin_tasks_and_vary_seeds() {
        let configs = CampaignConfig::default().sessions(10).session_configs();
        assert_eq!(configs[0].task, Task::all()[0]);
        assert_eq!(configs[8].task, Task::all()[0]);
        assert_ne!(configs[0].plan.seed, configs[1].plan.seed);
        assert_ne!(configs[0].recording_seed, configs[8].recording_seed);
        // Every 4th session carries the brownout.
        assert_eq!(configs[3].plan.brownouts, 1);
        assert_eq!(configs[0].plan.brownouts, 0);
    }
}
