//! Sharded fleet registry and the merged telemetry rollup.
//!
//! Workers admit finished sessions concurrently, so reports land in a
//! sharded [`FleetRegistry`] (lock contention scales with shard count,
//! not fleet size). The rollup side is pure: [`FleetRollup::from_reports`]
//! merges per-session counters, log-bucket latency histograms (exact
//! bucket-wise merge via [`LogHistogram::merge`]), and power totals;
//! [`render_exposition`] turns that into one Prometheus text exposition
//! carrying both pre-aggregated `halo_fleet_*` families and per-session
//! series labeled `session`/`pipeline`.

use std::sync::Mutex;

use halo_telemetry::expose::{escape_label, Exposition};
use halo_telemetry::{CycleProfile, LogHistogram, Severity};

use crate::session::SessionReport;

/// Concurrent collection point for finished sessions.
#[derive(Debug)]
pub struct FleetRegistry {
    shards: Vec<Mutex<Vec<SessionReport>>>,
}

impl FleetRegistry {
    /// A registry with `shards` independent completion buckets.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Admits one finished session (shard chosen by session id).
    pub fn admit(&self, report: SessionReport) {
        let shard = (report.spec.id % self.shards.len() as u64) as usize;
        self.shards[shard].lock().unwrap().push(report);
    }

    /// Sessions admitted so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no session has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every shard into one list ordered by session id.
    pub fn into_reports(self) -> Vec<SessionReport> {
        let mut out = Vec::new();
        for shard in self.shards {
            out.append(&mut shard.into_inner().unwrap());
        }
        out.sort_by_key(|r| r.spec.id);
        out
    }
}

/// Per-pipeline slice of the fleet rollup.
#[derive(Debug)]
pub struct PipelineRollup {
    /// Pipeline display label.
    pub pipeline: &'static str,
    /// Sessions configured into this pipeline.
    pub sessions: u64,
    /// Frames streamed across those sessions.
    pub frames: u64,
    /// Radio bytes across those sessions.
    pub radio_bytes: u64,
    /// Summed modeled device power, milliwatts.
    pub device_mw: f64,
    /// Merged end-to-end frame-latency histogram.
    pub latency: LogHistogram,
}

/// Fleet-wide aggregation of every session report.
#[derive(Debug)]
pub struct FleetRollup {
    /// Sessions in the fleet.
    pub sessions: u64,
    /// Sessions that finalized cleanly.
    pub completed: u64,
    /// Sessions that ended in an error.
    pub failed: u64,
    /// Total frames streamed (sum of per-session recorder counters).
    pub frames: u64,
    /// Total radio bytes.
    pub radio_bytes: u64,
    /// Total NoC bytes.
    pub noc_bytes: u64,
    /// Alert totals indexed by [`Severity`] as usize.
    pub severity_counts: [u64; 3],
    /// Summed modeled device power, milliwatts.
    pub device_mw: f64,
    /// Summed modeled processing power, milliwatts.
    pub processing_mw: f64,
    /// Merged frame-latency histogram across every session and pipeline.
    pub latency: LogHistogram,
    /// Per-pipeline slices in first-seen (session-id) order.
    pub pipelines: Vec<PipelineRollup>,
    /// Exemplar frames tagged for tracing across the fleet.
    pub traces_sampled: u64,
    /// Exemplar traces completed across the fleet.
    pub traces_completed: u64,
}

impl FleetRollup {
    /// Aggregates `reports` (any order; grouping is by session id order).
    pub fn from_reports(reports: &[SessionReport]) -> FleetRollup {
        let mut ordered: Vec<&SessionReport> = reports.iter().collect();
        ordered.sort_by_key(|r| r.spec.id);

        let mut rollup = FleetRollup {
            sessions: ordered.len() as u64,
            completed: 0,
            failed: 0,
            frames: 0,
            radio_bytes: 0,
            noc_bytes: 0,
            severity_counts: [0; 3],
            device_mw: 0.0,
            processing_mw: 0.0,
            latency: LogHistogram::new(),
            pipelines: Vec::new(),
            traces_sampled: 0,
            traces_completed: 0,
        };
        for report in ordered {
            if report.completed() {
                rollup.completed += 1;
            } else {
                rollup.failed += 1;
            }
            let snap = report.recorder.snapshot();
            rollup.frames += snap.frames;
            rollup.radio_bytes += snap.radio_bytes;
            rollup.noc_bytes += snap.noc_bytes();
            let status = report.monitor.status();
            for (total, n) in rollup
                .severity_counts
                .iter_mut()
                .zip(status.severity_counts)
            {
                *total += n;
            }
            rollup.device_mw += report.device_mw;
            rollup.processing_mw += report.processing_mw;
            let stats = report.tracer.stats();
            rollup.traces_sampled += stats.sampled;
            rollup.traces_completed += stats.completed;

            let label = report.spec.task.label();
            let slot = match rollup.pipelines.iter().position(|p| p.pipeline == label) {
                Some(i) => i,
                None => {
                    rollup.pipelines.push(PipelineRollup {
                        pipeline: label,
                        sessions: 0,
                        frames: 0,
                        radio_bytes: 0,
                        device_mw: 0.0,
                        latency: LogHistogram::new(),
                    });
                    rollup.pipelines.len() - 1
                }
            };
            let slice = &mut rollup.pipelines[slot];
            slice.sessions += 1;
            slice.frames += snap.frames;
            slice.radio_bytes += snap.radio_bytes;
            slice.device_mw += report.device_mw;
            for (_, hist) in report.recorder.pipeline_histograms() {
                slice.latency.merge(&hist);
                rollup.latency.merge(&hist);
            }
        }
        rollup
    }
}

const SEVERITIES: [Severity; 3] = [Severity::Info, Severity::Warning, Severity::Critical];

/// Renders the fleet as one Prometheus text exposition: pre-aggregated
/// `halo_fleet_*` families first, then per-session series labeled
/// `session="<id>",pipeline="<label>"`. Output over the same reports is
/// byte-identical (insertion-ordered families, id-ordered sessions).
pub fn render_exposition(reports: &[SessionReport]) -> String {
    let rollup = FleetRollup::from_reports(reports);
    let mut ordered: Vec<&SessionReport> = reports.iter().collect();
    ordered.sort_by_key(|r| r.spec.id);

    let mut e = Exposition::new();

    e.family(
        "halo_fleet_sessions",
        "gauge",
        "Patient sessions in the fleet.",
    );
    e.value("halo_fleet_sessions", "", rollup.sessions);
    e.family(
        "halo_fleet_sessions_completed",
        "gauge",
        "Sessions whose stream finalized cleanly.",
    );
    e.value("halo_fleet_sessions_completed", "", rollup.completed);
    e.family(
        "halo_fleet_sessions_failed",
        "gauge",
        "Sessions that ended in a runtime error.",
    );
    e.value("halo_fleet_sessions_failed", "", rollup.failed);

    e.family(
        "halo_fleet_frames_total",
        "counter",
        "Sample frames ingested across every session.",
    );
    e.value("halo_fleet_frames_total", "", rollup.frames);
    e.family(
        "halo_fleet_radio_bytes_total",
        "counter",
        "Radio bytes transmitted across every session.",
    );
    e.value("halo_fleet_radio_bytes_total", "", rollup.radio_bytes);
    e.family(
        "halo_fleet_noc_bytes_total",
        "counter",
        "NoC bytes moved across every session.",
    );
    e.value("halo_fleet_noc_bytes_total", "", rollup.noc_bytes);

    e.family(
        "halo_fleet_alerts_total",
        "counter",
        "Watchdog alerts raised across the fleet, by severity.",
    );
    for sev in SEVERITIES {
        e.value(
            "halo_fleet_alerts_total",
            &format!("severity=\"{}\"", sev.label()),
            rollup.severity_counts[sev as usize],
        );
    }

    e.family(
        "halo_fleet_power_mw",
        "gauge",
        "Summed modeled whole-device power across the fleet, milliwatts.",
    );
    e.value(
        "halo_fleet_power_mw",
        "",
        halo_telemetry::expose::sample(rollup.device_mw),
    );
    e.family(
        "halo_fleet_processing_power_mw",
        "gauge",
        "Summed modeled processing power across the fleet, milliwatts.",
    );
    e.value(
        "halo_fleet_processing_power_mw",
        "",
        halo_telemetry::expose::sample(rollup.processing_mw),
    );

    e.family(
        "halo_fleet_frame_latency_ns",
        "histogram",
        "End-to-end frame latency merged across every session, nanoseconds.",
    );
    if rollup.latency.count() != 0 {
        for (bound, cumulative) in rollup.latency.cumulative_buckets() {
            e.value(
                "halo_fleet_frame_latency_ns_bucket",
                &format!("le=\"{bound}\""),
                cumulative,
            );
        }
        e.value(
            "halo_fleet_frame_latency_ns_bucket",
            "le=\"+Inf\"",
            rollup.latency.count(),
        );
        e.value("halo_fleet_frame_latency_ns_sum", "", rollup.latency.sum());
        e.value(
            "halo_fleet_frame_latency_ns_count",
            "",
            rollup.latency.count(),
        );
    }

    e.family(
        "halo_fleet_frame_latency_quantile_ns",
        "gauge",
        "Per-pipeline fleet frame-latency quantiles, nanoseconds.",
    );
    for p in &rollup.pipelines {
        if p.latency.count() == 0 {
            continue;
        }
        let s = p.latency.summary();
        let pl = escape_label(p.pipeline);
        for (q, v) in [
            ("0.5", s.p50),
            ("0.9", s.p90),
            ("0.99", s.p99),
            ("1", s.max),
        ] {
            e.value(
                "halo_fleet_frame_latency_quantile_ns",
                &format!("pipeline=\"{pl}\",quantile=\"{q}\""),
                v,
            );
        }
    }

    e.family(
        "halo_fleet_traces_sampled_total",
        "counter",
        "Frames tagged for exemplar tracing across the fleet.",
    );
    e.value("halo_fleet_traces_sampled_total", "", rollup.traces_sampled);
    e.family(
        "halo_fleet_traces_completed_total",
        "counter",
        "Exemplar span trees completed across the fleet.",
    );
    e.value(
        "halo_fleet_traces_completed_total",
        "",
        rollup.traces_completed,
    );

    // --- Per-session series ---
    e.family(
        "halo_session_up",
        "gauge",
        "1 when the session finalized cleanly, 0 when it failed.",
    );
    for r in &ordered {
        e.value(
            "halo_session_up",
            &session_labels(r),
            u64::from(r.completed()),
        );
    }
    e.family(
        "halo_session_frames_total",
        "counter",
        "Sample frames ingested per session.",
    );
    for r in &ordered {
        e.value(
            "halo_session_frames_total",
            &session_labels(r),
            r.recorder.snapshot().frames,
        );
    }
    e.family(
        "halo_session_radio_bytes_total",
        "counter",
        "Radio bytes transmitted per session.",
    );
    for r in &ordered {
        e.value(
            "halo_session_radio_bytes_total",
            &session_labels(r),
            r.recorder.snapshot().radio_bytes,
        );
    }
    e.family(
        "halo_session_power_mw",
        "gauge",
        "Modeled whole-device power per session, milliwatts.",
    );
    for r in &ordered {
        e.value(
            "halo_session_power_mw",
            &session_labels(r),
            halo_telemetry::expose::sample(r.device_mw),
        );
    }
    e.family(
        "halo_session_alerts_total",
        "counter",
        "Watchdog alerts per session, by severity.",
    );
    for r in &ordered {
        let counts = r.monitor.status().severity_counts;
        for sev in SEVERITIES {
            e.value(
                "halo_session_alerts_total",
                &format!("session=\"{}\",severity=\"{}\"", r.spec.id, sev.label()),
                counts[sev as usize],
            );
        }
    }
    e.family(
        "halo_session_frame_latency_ns",
        "gauge",
        "Per-session end-to-end frame-latency quantiles, nanoseconds.",
    );
    for r in &ordered {
        let mut merged = LogHistogram::new();
        for (_, hist) in r.recorder.pipeline_histograms() {
            merged.merge(&hist);
        }
        if merged.count() == 0 {
            continue;
        }
        let s = merged.summary();
        for (q, v) in [
            ("0.5", s.p50),
            ("0.9", s.p90),
            ("0.99", s.p99),
            ("1", s.max),
        ] {
            e.value(
                "halo_session_frame_latency_ns",
                &format!("{},quantile=\"{q}\"", session_labels(r)),
                v,
            );
        }
    }

    // The merged fleet flamegraph: one `halo_profile_*` family set rooted
    // at `device="fleet"`, summed frame-for-frame over the id-ordered
    // session profiles (so the render is byte-stable at any worker
    // count, like everything else here).
    fleet_profile(reports).render_exposition_into(&mut e);

    e.finish()
}

/// Merges every session's cycle profile into one fleet-rooted
/// [`CycleProfile`] (device `"fleet"`). Sessions without a profile (none,
/// in a stock fleet) contribute nothing; merge order is session-id order,
/// and since merging is commutative cell-wise the result is byte-stable
/// across worker counts.
pub fn fleet_profile(reports: &[SessionReport]) -> CycleProfile {
    let mut ordered: Vec<&SessionReport> = reports.iter().collect();
    ordered.sort_by_key(|r| r.spec.id);
    let mut fleet = CycleProfile::new("fleet");
    for report in ordered {
        if let Some(profile) = &report.profile {
            fleet.merge(profile);
        }
    }
    fleet
}

fn session_labels(report: &SessionReport) -> String {
    format!(
        "session=\"{}\",pipeline=\"{}\"",
        report.spec.id,
        escape_label(report.spec.task.label())
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_orders_reports_by_id() {
        let config = crate::FleetConfig::default().frames_per_session(120);
        let mut specs = crate::SessionSpec::mixed(5, &config);
        specs.reverse(); // admit out of order
        let registry = crate::run(specs, &config).unwrap();
        let reports = registry.into_reports();
        let ids: Vec<u64> = reports.iter().map(|r| r.spec.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
