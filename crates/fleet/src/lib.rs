//! Fleet observatory: many HALO devices served by one observer.
//!
//! A clinical deployment is never one implant. A trial site runs dozens
//! to hundreds of concurrent patient sessions, each an independent
//! [`halo_core::HaloSystem`] with its own pipeline, seed, and safety
//! envelope — and the interesting operational questions are *fleet*
//! questions: what is the aggregate p99 frame latency, which three
//! sessions are in the worst shape, and what exactly happened inside the
//! one that tripped its watchdog?
//!
//! This crate answers them with four pieces:
//!
//! * [`session`] — [`SessionSpec`] describes one patient session
//!   (pipeline, seed, channel count, stream length); [`FleetSession`]
//!   builds it into a fully instrumented system (per-session
//!   [`Recorder`](halo_telemetry::Recorder) + `HealthMonitor` +
//!   escalation-only `Tracer`) fed incrementally through
//!   [`HaloSystem::push_block`](halo_core::HaloSystem::push_block).
//! * [`scheduler`] — a striped work-stealing scheduler interleaves
//!   batches from all sessions across worker threads, so N sessions make
//!   progress concurrently instead of serially.
//! * [`registry`] — completed sessions land in a sharded
//!   [`FleetRegistry`]; [`registry::render_exposition`] merges their
//!   counters, log-bucket latency histograms, and power totals into one
//!   Prometheus text exposition with `session`/`pipeline` labels plus
//!   pre-aggregated `halo_fleet_*` families.
//! * [`triage`] + [`exemplar`] — [`triage::render_triage`] ranks the
//!   top-K worst sessions into a fleet post-mortem JSON that embeds the
//!   offending sessions' flight-recorder dumps verbatim; the
//!   [`exemplar::Elector`] deterministically elects ~1-in-N sessions per
//!   window for exemplar tracing so span-tree coverage scales with the
//!   fleet instead of with per-session overhead.
//! * [`campaign`] — seeded fleet-wide chaos: [`run_campaign`] drives N
//!   [`halo_faults::ChaosSession`]s concurrently and
//!   [`render_campaign`] rolls the verdicts into a bit-replayable
//!   triage document with per-session outcomes and a time-to-recovery
//!   histogram.
//!
//! Everything is std-only and deterministic: the same fleet seed
//! produces byte-identical expositions regardless of worker count.
//!
//! # Example
//!
//! ```
//! use halo_fleet::{FleetConfig, SessionSpec};
//!
//! let config = FleetConfig::default().threads(2).batch_frames(32);
//! let specs = SessionSpec::mixed(8, &config);
//! let registry = halo_fleet::run(specs, &config).unwrap();
//! let reports = registry.into_reports();
//! assert_eq!(reports.len(), 8);
//! let exposition = halo_fleet::registry::render_exposition(&reports);
//! assert!(exposition.contains("halo_fleet_frames_total"));
//! ```

pub mod campaign;
pub mod exemplar;
pub mod registry;
pub mod scheduler;
pub mod session;
pub mod triage;

pub use campaign::{
    render_campaign, run_campaign, CampaignConfig, CampaignSessionReport, CampaignTotals,
};
pub use exemplar::{Elector, ExemplarConfig, ExemplarTrace};
pub use registry::{fleet_profile, FleetRegistry, FleetRollup};
pub use scheduler::{run, FleetRunStats};
pub use session::{FleetConfig, FleetSession, SessionReport, SessionSpec};
