//! Striped work-stealing scheduler for concurrent sessions.
//!
//! Sessions are dealt round-robin onto per-worker stripes (a
//! `Mutex<VecDeque>` each — sessions move *by value*, so there is no
//! shared mutable session state and no lock is held while a session
//! computes). Each worker pops from its own stripe, runs one
//! [`FleetSession::step`] quantum, and requeues the session at the back;
//! an empty stripe steals from its neighbours. Completed sessions are
//! admitted to the [`FleetRegistry`] and a shared remaining-count drains
//! to zero, at which point every worker exits.
//!
//! Sessions are fully independent, so any interleaving produces the same
//! per-session results — the scheduler affects wall-clock time only, and
//! the fleet exposition is byte-identical at any worker count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use halo_core::SystemError;

use crate::registry::FleetRegistry;
use crate::session::{FleetConfig, FleetSession, SessionSpec};

/// How the run went, mechanically: wall time and scheduler behaviour.
#[derive(Debug, Clone)]
pub struct FleetRunStats {
    /// Sessions driven to completion.
    pub sessions: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Scheduler quanta executed.
    pub batches: u64,
    /// Quanta obtained by stealing from another worker's stripe.
    pub steals: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl FleetRunStats {
    /// Sessions completed per wall-clock second.
    ///
    /// An empty run (or one whose clock did not advance) reports `0.0`
    /// rather than dividing by a clamped epsilon — clamping turned
    /// zero-session runs into absurd billion-scale throughputs that
    /// poisoned fleet baselines.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.sessions == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.sessions as f64 / secs
    }
}

/// Resolves `threads == 0` to the machine's available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builds every spec into a session (training the shared seizure SVM
/// once if any spec needs it) and drives the fleet to completion.
/// Returns the registry holding one report per session.
pub fn run(specs: Vec<SessionSpec>, config: &FleetConfig) -> Result<FleetRegistry, SystemError> {
    let svm = if specs
        .iter()
        .any(|s| s.task == halo_core::Task::SeizurePrediction)
    {
        Some(crate::session::train_shared_svm(config)?)
    } else {
        None
    };
    let mut sessions = Vec::with_capacity(specs.len());
    for spec in specs {
        sessions.push(FleetSession::build(spec, config, svm.as_ref())?);
    }
    let registry = FleetRegistry::new(config.shards);
    run_sessions(sessions, config, &registry);
    Ok(registry)
}

/// Drives pre-built sessions to completion, admitting each finished
/// session's report to `registry`. Returns scheduler statistics.
pub fn run_sessions(
    sessions: Vec<FleetSession>,
    config: &FleetConfig,
    registry: &FleetRegistry,
) -> FleetRunStats {
    let total = sessions.len();
    let threads = resolve_threads(config.threads).min(total.max(1));
    let batch_frames = config.batch_frames.max(1);

    let stripes: Vec<Mutex<VecDeque<FleetSession>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, session) in sessions.into_iter().enumerate() {
        stripes[i % threads].lock().unwrap().push_back(session);
    }

    let remaining = AtomicUsize::new(total);
    let batches = AtomicU64::new(0);
    let steals = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        let stripes = &stripes;
        let remaining = &remaining;
        let batches = &batches;
        let steals = &steals;
        for wid in 0..threads {
            scope.spawn(move || {
                worker(
                    wid,
                    stripes,
                    remaining,
                    batches,
                    steals,
                    batch_frames,
                    registry,
                );
            });
        }
    });

    FleetRunStats {
        sessions: total,
        threads,
        batches: batches.load(Ordering::Relaxed),
        steals: steals.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

fn worker(
    wid: usize,
    stripes: &[Mutex<VecDeque<FleetSession>>],
    remaining: &AtomicUsize,
    batches: &AtomicU64,
    steals: &AtomicU64,
    batch_frames: usize,
    registry: &FleetRegistry,
) {
    loop {
        if remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut session = stripes[wid].lock().unwrap().pop_front();
        if session.is_none() {
            for offset in 1..stripes.len() {
                let victim = (wid + offset) % stripes.len();
                session = stripes[victim].lock().unwrap().pop_front();
                if session.is_some() {
                    steals.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        let Some(mut session) = session else {
            // Every live session is currently held by another worker;
            // spin politely until one requeues or the count drains.
            std::thread::yield_now();
            continue;
        };
        let done = session.step(batch_frames);
        batches.fetch_add(1, Ordering::Relaxed);
        if done {
            registry.admit(session.into_report());
            remaining.fetch_sub(1, Ordering::Release);
        } else {
            stripes[wid].lock().unwrap().push_back(session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::render_exposition;
    use crate::session::SessionSpec;

    #[test]
    fn exposition_is_identical_at_any_worker_count() {
        let base = FleetConfig::default()
            .frames_per_session(300)
            .batch_frames(32);
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            let config = base.clone().threads(threads);
            let specs = SessionSpec::mixed(8, &config);
            let registry = run(specs, &config).unwrap();
            let reports = registry.into_reports();
            assert_eq!(reports.len(), 8);
            assert!(
                reports.iter().all(|r| r.completed()),
                "errors: {:?}",
                reports
                    .iter()
                    .filter_map(|r| r.error.clone())
                    .collect::<Vec<_>>()
            );
            outputs.push(render_exposition(&reports));
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn sessions_per_sec_is_zero_for_degenerate_runs() {
        let empty = FleetRunStats {
            sessions: 0,
            threads: 1,
            batches: 0,
            steals: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(empty.sessions_per_sec(), 0.0);
        // Sessions finished but the clock never advanced (coarse timer):
        // still no fabricated throughput.
        let instant = FleetRunStats {
            sessions: 5,
            threads: 1,
            batches: 5,
            steals: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(instant.sessions_per_sec(), 0.0);
        let real = FleetRunStats {
            sessions: 10,
            threads: 2,
            batches: 10,
            steals: 0,
            elapsed: Duration::from_secs(2),
        };
        assert_eq!(real.sessions_per_sec(), 5.0);
    }

    #[test]
    fn work_stealing_survives_skewed_stripes() {
        // More threads than sessions: the surplus workers must exit
        // cleanly (threads are clamped to the session count) and all
        // sessions still finish.
        let config = FleetConfig::default()
            .frames_per_session(200)
            .threads(16)
            .batch_frames(16);
        let specs = SessionSpec::mixed(3, &config);
        let registry = run(specs, &config).unwrap();
        let reports = registry.into_reports();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.completed()));
    }
}
