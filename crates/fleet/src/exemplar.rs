//! Cross-session exemplar tracing.
//!
//! Tracing every session all the time is the per-session overhead story
//! all over again, multiplied by the fleet. Instead, the fleet elects a
//! rotating *exemplar*: sessions are partitioned into groups of
//! [`ExemplarConfig::group_size`], and in every election window exactly
//! one member of each group is chosen to capture a short burst of traced
//! frames. Election reuses the deterministic splitmix64 rule inside
//! [`TraceSampler`] — the elected member for window `w` is the session
//! whose member index equals `splitmix64(seed ^ w) % group_size` — so
//! any observer (or a test) can recompute the schedule offline, and two
//! runs of the same fleet elect the same exemplars regardless of how the
//! scheduler interleaved them.
//!
//! Elected sessions receive [`TraceSampler::force_next`] credits on
//! their otherwise-disabled per-session samplers, so the steady-state
//! hot path keeps its one-branch `idle()` early-exit everywhere else.

use halo_telemetry::{SpanTree, TraceSampler};

use crate::session::SessionReport;

/// Fleet-wide exemplar election parameters.
#[derive(Debug, Clone)]
pub struct ExemplarConfig {
    /// Sessions per election group; one member per group is elected each
    /// window. `0` disables exemplar tracing entirely.
    pub group_size: u64,
    /// Election window length in sample frames.
    pub window_frames: u64,
    /// Forced-trace credits granted to the elected session per window.
    pub trace_frames: u64,
}

impl Default for ExemplarConfig {
    fn default() -> Self {
        Self {
            group_size: 8,
            window_frames: 256,
            trace_frames: 4,
        }
    }
}

/// Per-session view of the fleet election schedule.
///
/// Each [`FleetSession`](crate::FleetSession) owns one elector seeded by
/// the fleet seed and its group index; as the session streams frames the
/// scheduler asks [`Elector::credits`] how many forced-trace credits the
/// windows just entered grant this session.
#[derive(Debug)]
pub struct Elector {
    sampler: TraceSampler,
    member: u64,
    group_size: u64,
    window_frames: u64,
    trace_frames: u64,
    next_window: u64,
}

impl Elector {
    /// Elector for `session_id` under the given fleet seed, or `None`
    /// when exemplar tracing is disabled.
    pub fn new(fleet_seed: u64, session_id: u64, config: &ExemplarConfig) -> Option<Elector> {
        if config.group_size == 0 || config.window_frames == 0 {
            return None;
        }
        let group = session_id / config.group_size;
        Some(Elector {
            // Distinct groups get decorrelated schedules; members of one
            // group share a sampler seed so the election is a permutation
            // within the group, not independent coin flips.
            sampler: TraceSampler::new(
                fleet_seed ^ group.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                config.group_size,
            ),
            member: session_id % config.group_size,
            group_size: config.group_size,
            window_frames: config.window_frames,
            trace_frames: config.trace_frames,
            next_window: 0,
        })
    }

    /// Whether this session is the group's exemplar in `window`.
    pub fn elected(&self, window: u64) -> bool {
        self.sampler
            .would_sample(window * self.group_size + self.member)
    }

    /// Forced-trace credits granted by the election windows first entered
    /// while streaming frames `[start, start + frames)`. Each window is
    /// granted at most once, monotonically.
    pub fn credits(&mut self, start: u64, frames: u64) -> u64 {
        if frames == 0 {
            return 0;
        }
        let first = (start / self.window_frames).max(self.next_window);
        let last = (start + frames - 1) / self.window_frames;
        let mut credits = 0;
        for window in first..=last {
            if self.elected(window) {
                credits += self.trace_frames;
            }
        }
        if last >= self.next_window {
            self.next_window = last + 1;
        }
        credits
    }

    /// Election window length in frames.
    pub fn window_frames(&self) -> u64 {
        self.window_frames
    }
}

/// One exemplar trace surfaced to the fleet rollup: which session, which
/// frame, how long end to end, and which hop dominated.
#[derive(Debug, Clone)]
pub struct ExemplarTrace {
    /// Session the trace was captured on.
    pub session: u64,
    /// The session's pipeline label.
    pub pipeline: &'static str,
    /// Sample-frame index of the traced input frame.
    pub root_frame: u64,
    /// End-to-end latency of the traced frame, nanoseconds.
    pub end_to_end_ns: u64,
    /// Dominant critical-path hop as `(label, fraction_of_total)`, when
    /// the span tree assembled cleanly.
    pub dominant: Option<(String, f64)>,
}

/// Collects every completed exemplar trace across the fleet, ordered by
/// session id then root frame.
pub fn collect(reports: &[SessionReport]) -> Vec<ExemplarTrace> {
    let mut out = Vec::new();
    for report in reports {
        for record in report.tracer.trees() {
            let dominant = SpanTree::assemble(&record)
                .ok()
                .and_then(|tree| tree.dominant().map(|(hop, f)| (hop.label.clone(), f)));
            out.push(ExemplarTrace {
                session: report.spec.id,
                pipeline: report.spec.task.label(),
                root_frame: record.root_frame,
                end_to_end_ns: record.end_to_end_ns(),
                dominant,
            });
        }
    }
    out.sort_by_key(|t| (t.session, t.root_frame));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_exemplar_per_group_per_window() {
        let config = ExemplarConfig {
            group_size: 8,
            window_frames: 128,
            trace_frames: 2,
        };
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for group in 0..8u64 {
                let electors: Vec<Elector> = (0..config.group_size)
                    .map(|m| Elector::new(seed, group * config.group_size + m, &config).unwrap())
                    .collect();
                for window in 0..200u64 {
                    let elected = electors.iter().filter(|e| e.elected(window)).count();
                    assert_eq!(elected, 1, "seed {seed} group {group} window {window}");
                }
            }
        }
    }

    #[test]
    fn election_rotates_across_windows() {
        let config = ExemplarConfig::default();
        let elector = Elector::new(42, 3, &config).unwrap();
        let wins: Vec<bool> = (0..64).map(|w| elector.elected(w)).collect();
        // A fixed member must not win every window nor none of them over
        // a horizon of group_size × 8 windows (probability of either is
        // (7/8)^64 ≈ 2e-4 per seed; the seed here is fixed, so this is a
        // regression guard, not a statistical test).
        assert!(wins.iter().any(|&w| w));
        assert!(wins.iter().any(|&w| !w));
    }

    #[test]
    fn credits_grant_each_window_once() {
        let config = ExemplarConfig {
            group_size: 1, // always elected
            window_frames: 100,
            trace_frames: 3,
        };
        let mut e = Elector::new(1, 0, &config).unwrap();
        // First batch covers windows 0 and 1.
        assert_eq!(e.credits(0, 150), 6);
        // Overlapping re-entry of window 1 grants nothing new.
        assert_eq!(e.credits(150, 10), 0);
        // Jumping ahead grants the skipped windows' successors only once.
        assert_eq!(e.credits(160, 340), 9); // windows 2, 3, 4
        assert_eq!(e.credits(500, 1), 3); // window 5
    }

    #[test]
    fn disabled_config_yields_no_elector() {
        let off = ExemplarConfig {
            group_size: 0,
            ..ExemplarConfig::default()
        };
        assert!(Elector::new(9, 0, &off).is_none());
    }
}
