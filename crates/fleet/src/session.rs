//! One patient session: spec, instrumented system, and final report.

use std::sync::Arc;

use halo_core::tasks::seizure;
use halo_core::{HaloConfig, HaloSystem, SystemError, Task, TaskMetrics};
use halo_kernels::svm::LinearSvm;
use halo_signal::{Recording, RecordingConfig, RegionProfile};
use halo_telemetry::{
    ContinuousConfig, ContinuousTelemetry, CycleProfile, HealthConfig, HealthMonitor, Recorder,
    Tracer,
};

use crate::exemplar::{Elector, ExemplarConfig};

/// Fleet-wide run parameters shared by every session.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet seed: decorrelates patient recordings and drives exemplar
    /// election. The same seed reproduces the same fleet bit-for-bit.
    pub seed: u64,
    /// Electrode channels per session.
    pub channels: usize,
    /// Stream length per session, in sample frames.
    pub frames_per_session: usize,
    /// Frames per scheduler quantum: how much one session streams before
    /// yielding its worker to another session.
    pub batch_frames: usize,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Registry shards for concurrent completion (power of two preferred).
    pub shards: usize,
    /// Per-session telemetry event-ring capacity.
    pub event_capacity: usize,
    /// Sample rate declared to each session's recorder, Hz.
    pub sample_rate_hz: u32,
    /// Safety envelope applied to every session's watchdog.
    pub health: HealthConfig,
    /// Exemplar-tracing election parameters.
    pub exemplar: ExemplarConfig,
    /// Continuous-telemetry layer (embedded tsdb + SLO engine + anomaly
    /// detection) wrapped around every session's watchdog; `None` runs
    /// sessions with the bare monitor.
    pub continuous: Option<ContinuousConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            seed: 0x48414c4f, // "HALO"
            channels: 8,
            frames_per_session: 600,
            batch_frames: 64,
            threads: 0,
            shards: 8,
            event_capacity: 4096,
            sample_rate_hz: 30_000,
            health: HealthConfig::default(),
            exemplar: ExemplarConfig::default(),
            continuous: Some(ContinuousConfig::default()),
        }
    }
}

impl FleetConfig {
    /// Sets the worker-thread count (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the scheduler quantum in frames.
    pub fn batch_frames(mut self, frames: usize) -> Self {
        self.batch_frames = frames.max(1);
        self
    }

    /// Sets the per-session stream length in frames.
    pub fn frames_per_session(mut self, frames: usize) -> Self {
        self.frames_per_session = frames.max(1);
        self
    }

    /// Sets the per-session power budget in milliwatts.
    pub fn budget_mw(mut self, mw: f64) -> Self {
        self.health.budget_mw = mw;
        self
    }

    /// Sets the fleet seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets (or clears) the continuous-telemetry layer configuration.
    pub fn continuous(mut self, continuous: Option<ContinuousConfig>) -> Self {
        self.continuous = continuous;
        self
    }
}

/// Everything needed to build one patient session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Stable session index; doubles as the `session` exposition label.
    pub id: u64,
    /// The pipeline this patient's device is configured into.
    pub task: Task,
    /// Seed for this patient's synthetic recording.
    pub patient_seed: u64,
    /// Electrode channels.
    pub channels: usize,
    /// Stream length in frames.
    pub frames: usize,
}

impl SessionSpec {
    /// `count` sessions round-robined over all eight paper pipelines,
    /// with per-patient seeds derived from the fleet seed.
    pub fn mixed(count: usize, config: &FleetConfig) -> Vec<SessionSpec> {
        let tasks = Task::all();
        (0..count as u64)
            .map(|id| SessionSpec {
                id,
                task: tasks[id as usize % tasks.len()],
                patient_seed: config.seed ^ (id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                channels: config.channels,
                frames: config.frames_per_session,
            })
            .collect()
    }

    /// `count` sessions all running the same pipeline.
    pub fn uniform(count: usize, task: Task, config: &FleetConfig) -> Vec<SessionSpec> {
        let mut specs = Self::mixed(count, config);
        for spec in &mut specs {
            spec.task = task;
        }
        specs
    }
}

/// Trains the SVM shared by every seizure-prediction session in the
/// fleet. One personalization pass is plenty for a synthetic fleet; real
/// deployments would key this per patient.
pub fn train_shared_svm(config: &FleetConfig) -> Result<LinearSvm, SystemError> {
    let halo = HaloConfig::small_test(config.channels).channels(config.channels);
    let window = halo.feature_window_frames();
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(config.channels)
        .samples(24 * window)
        .seizure_at(8 * window, 16 * window)
        .generate(config.seed ^ 0x5eed);
    seizure::train(&halo, &[&rec])
}

/// A fully built, instrumented session ready to be scheduled.
///
/// Owns the [`HaloSystem`] plus its observability stack (recorder,
/// watchdog, escalation-only tracer) and its pre-generated recording;
/// the scheduler drives it with [`FleetSession::step`] until done.
pub struct FleetSession {
    spec: SessionSpec,
    system: HaloSystem,
    monitor: Arc<HealthMonitor>,
    continuous: Option<Arc<ContinuousTelemetry>>,
    tracer: Arc<Tracer>,
    recording: Recording,
    frames_pushed: usize,
    elector: Option<Elector>,
    metrics: Option<TaskMetrics>,
    error: Option<String>,
    done: bool,
    device_mw: f64,
    processing_mw: f64,
}

impl FleetSession {
    /// Builds the session: generates the patient recording, configures
    /// the system into `spec.task`, and attaches a private recorder,
    /// health monitor, and (steady-state-disabled) tracer. Seizure
    /// sessions take the fleet-shared `svm`.
    pub fn build(
        spec: SessionSpec,
        fleet: &FleetConfig,
        svm: Option<&LinearSvm>,
    ) -> Result<FleetSession, SystemError> {
        let mut halo = HaloConfig::small_test(spec.channels).channels(spec.channels);
        if spec.task == Task::SeizurePrediction {
            if let Some(svm) = svm {
                halo = halo.with_svm(svm.clone());
            }
        }
        let window = halo.feature_window_frames();

        let mut rec = RecordingConfig::new(RegionProfile::arm())
            .channels(spec.channels)
            .samples(spec.frames);
        if spec.task.uses_stimulation() && spec.frames > 4 * window {
            // Give closed-loop pipelines something to detect.
            rec = rec.seizure_at(2 * window, spec.frames / 2);
        }
        let recording = rec.generate(spec.patient_seed);

        let recorder =
            Arc::new(Recorder::new(fleet.event_capacity).with_sample_rate_hz(fleet.sample_rate_hz));
        let monitor = Arc::new(HealthMonitor::new(recorder, fleet.health.clone()));
        // Steady-state sampling stays off; the fleet elector grants
        // forced credits when this session is the group exemplar.
        let tracer = Arc::new(Tracer::new(fleet.seed ^ spec.id, 0));

        let mut system = HaloSystem::new(spec.task, halo)?;
        let continuous = match &fleet.continuous {
            Some(config) => {
                let layer = Arc::new(ContinuousTelemetry::new(monitor.clone(), config.clone()));
                system.attach_continuous(layer.clone());
                Some(layer)
            }
            None => {
                system.attach_health(monitor.clone());
                None
            }
        };
        system.attach_tracing(tracer.clone());
        // Always-on profiling: attribution rides the deterministic cost
        // model, so the fleet rollup can merge per-session profiles into
        // one flamegraph regardless of worker count.
        system.attach_profile();

        let elector = Elector::new(fleet.seed, spec.id, &fleet.exemplar);
        Ok(FleetSession {
            spec,
            system,
            monitor,
            continuous,
            tracer,
            recording,
            frames_pushed: 0,
            elector,
            metrics: None,
            error: None,
            done: false,
            device_mw: 0.0,
            processing_mw: 0.0,
        })
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// Streams up to `batch_frames` more frames. Returns `true` once the
    /// session has finished (successfully or not) and will make no more
    /// progress.
    pub fn step(&mut self, batch_frames: usize) -> bool {
        if self.done {
            return true;
        }
        let remaining = self.spec.frames - self.frames_pushed;
        let n = batch_frames.max(1).min(remaining);
        if n > 0 {
            if let Some(elector) = &mut self.elector {
                let credits = elector.credits(self.frames_pushed as u64, n as u64);
                if credits > 0 {
                    self.tracer.sampler().force_next(credits);
                }
            }
            let lo = self.frames_pushed * self.spec.channels;
            let hi = lo + n * self.spec.channels;
            match self.system.push_block(&self.recording.samples()[lo..hi]) {
                Ok(()) => self.frames_pushed += n,
                Err(e) => {
                    self.error = Some(e.to_string());
                    self.done = true;
                    return true;
                }
            }
        }
        if self.frames_pushed == self.spec.frames || self.monitor.tripped() {
            match self.system.finalize() {
                Ok(metrics) => {
                    let power = self.system.power_report(&metrics);
                    self.device_mw = power.device_mw();
                    self.processing_mw = power.processing_mw();
                    self.metrics = Some(metrics);
                }
                Err(e) => self.error = Some(e.to_string()),
            }
            self.done = true;
        }
        self.done
    }

    /// Consumes the finished session into its report.
    pub fn into_report(self) -> SessionReport {
        let profile = self.system.profile(&self.spec.id.to_string());
        SessionReport {
            spec: self.spec,
            frames_pushed: self.frames_pushed as u64,
            metrics: self.metrics,
            error: self.error,
            recorder: self.monitor.recorder().clone(),
            monitor: self.monitor,
            continuous: self.continuous,
            tracer: self.tracer,
            device_mw: self.device_mw,
            processing_mw: self.processing_mw,
            profile,
        }
    }
}

/// Outcome of one session: final metrics (or the error that ended it)
/// plus the live handles the fleet rollup aggregates from.
pub struct SessionReport {
    /// The spec the session was built from.
    pub spec: SessionSpec,
    /// Frames actually streamed.
    pub frames_pushed: u64,
    /// Final task metrics, when the stream finalized cleanly.
    pub metrics: Option<TaskMetrics>,
    /// The error that ended the session, if any.
    pub error: Option<String>,
    /// The session's private recorder.
    pub recorder: Arc<Recorder>,
    /// The session's watchdog (alerts, post-mortem).
    pub monitor: Arc<HealthMonitor>,
    /// The session's continuous-telemetry layer (history, SLOs, drift),
    /// when the fleet runs with one.
    pub continuous: Option<Arc<ContinuousTelemetry>>,
    /// The session's tracer (exemplar span trees).
    pub tracer: Arc<Tracer>,
    /// Modeled whole-device power, milliwatts.
    pub device_mw: f64,
    /// Modeled processing power (PEs + NoC + control), milliwatts.
    pub processing_mw: f64,
    /// The session's cycle/energy profile, rooted at the session id.
    pub profile: Option<CycleProfile>,
}

impl SessionReport {
    /// Whether the session completed its stream without error.
    pub fn completed(&self) -> bool {
        self.error.is_none() && self.metrics.is_some()
    }
}

impl std::fmt::Debug for SessionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionReport")
            .field("id", &self.spec.id)
            .field("task", &self.spec.task)
            .field("completed", &self.completed())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_session_matches_direct_process() {
        let fleet = FleetConfig::default().frames_per_session(400);
        let spec = SessionSpec {
            id: 0,
            task: Task::CompressLz4,
            patient_seed: 77,
            channels: 4,
            frames: 400,
        };

        let mut session = FleetSession::build(spec.clone(), &fleet, None).unwrap();
        while !session.step(64) {}
        let report = session.into_report();
        assert!(report.completed(), "error: {:?}", report.error);
        let batched = report.metrics.unwrap();

        let rec = RecordingConfig::new(RegionProfile::arm())
            .channels(4)
            .samples(400)
            .generate(77);
        let halo = HaloConfig::small_test(4).channels(4);
        let mut direct = HaloSystem::new(Task::CompressLz4, halo).unwrap();
        let reference = direct.process(&rec).unwrap();

        assert_eq!(batched.frames, reference.frames);
        assert_eq!(batched.radio_stream, reference.radio_stream);
        assert_eq!(batched.bus_bytes, reference.bus_bytes);
    }

    #[test]
    fn mixed_specs_cover_all_pipelines() {
        let fleet = FleetConfig::default();
        let specs = SessionSpec::mixed(16, &fleet);
        assert_eq!(specs.len(), 16);
        for task in Task::all() {
            assert_eq!(specs.iter().filter(|s| s.task == task).count(), 2);
        }
        // Distinct patients get distinct seeds.
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.patient_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }
}
