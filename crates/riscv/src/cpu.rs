//! The CPU core: fetch/decode/execute with an Ibex-like cycle model.

use crate::bus::SystemBus;
use crate::decode::{decode16, decode32, DecodeError, Instr};
use crate::exec;

/// Register-file width mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterMode {
    /// RV32I: 32 registers.
    I,
    /// RV32E: 16 registers — the embedded profile the paper taped out.
    E,
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// An `ecall` retired.
    Ecall,
    /// An `ebreak` retired.
    Ebreak,
    /// The step budget was exhausted before a halt.
    StepLimit,
}

/// Execution errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// Instruction decoding failed.
    Decode(DecodeError),
    /// An instruction referenced a register outside the RV32E file.
    BadRegister {
        /// The offending register index.
        reg: u8,
    },
}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

impl std::fmt::Display for CpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Decode(e) => write!(f, "{e}"),
            Self::BadRegister { reg } => {
                write!(f, "register x{reg} not available in RV32E mode")
            }
        }
    }
}

impl std::error::Error for CpuError {}

/// Result of [`Cpu::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles consumed under the Ibex-like cost model.
    pub cycles: u64,
    /// Why execution stopped.
    pub halt: HaltReason,
}

/// The RV32 core.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    mode: RegisterMode,
    instructions: u64,
    cycles: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates an RV32I-mode core at PC 0.
    pub fn new() -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            mode: RegisterMode::I,
            instructions: 0,
            cycles: 0,
        }
    }

    /// Creates an RV32E-mode core (16 registers), as taped out in §V-A.
    pub fn new_rv32e() -> Self {
        Self {
            mode: RegisterMode::E,
            ..Self::new()
        }
    }

    /// The register-file mode.
    pub fn mode(&self) -> RegisterMode {
        self.mode
    }

    /// Reads register `r` (x0 is always zero).
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[r as usize & 31]
    }

    /// Writes register `r` (writes to x0 are ignored).
    pub fn set_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[r as usize & 31] = value;
        }
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn check_regs(&self, instr: &Instr) -> Result<(), CpuError> {
        if self.mode == RegisterMode::I {
            return Ok(());
        }
        let bad = |r: u8| r >= 16;
        let regs: [u8; 3] = match *instr {
            Instr::Lui { rd, .. } | Instr::Auipc { rd, .. } => [rd, 0, 0],
            Instr::Jal { rd, .. } => [rd, 0, 0],
            Instr::Jalr { rd, rs1, .. } => [rd, rs1, 0],
            Instr::Branch { rs1, rs2, .. } => [rs1, rs2, 0],
            Instr::Load { rd, rs1, .. } => [rd, rs1, 0],
            Instr::Store { rs1, rs2, .. } => [rs1, rs2, 0],
            Instr::OpImm { rd, rs1, .. } => [rd, rs1, 0],
            Instr::Op { rd, rs1, rs2, .. } => [rd, rs1, rs2],
            _ => [0, 0, 0],
        };
        for r in regs {
            if bad(r) {
                return Err(CpuError::BadRegister { reg: r });
            }
        }
        Ok(())
    }

    /// Fetches, decodes, and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on illegal instructions or RV32E register
    /// violations.
    pub fn step(&mut self, bus: &mut SystemBus) -> Result<Option<HaltReason>, CpuError> {
        let half = bus.load16(self.pc);
        let (instr, len) = if half & 3 == 3 {
            let word = (half as u32) | ((bus.load16(self.pc + 2) as u32) << 16);
            (decode32(word)?, 4)
        } else {
            (decode16(half)?, 2)
        };
        self.check_regs(&instr)?;
        let outcome = exec::execute(self, bus, instr, len);
        self.instructions += 1;
        self.cycles += outcome.cycles as u64;
        Ok(outcome.halt)
    }

    /// Runs until halt or `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on illegal instructions or RV32E register
    /// violations.
    pub fn run(&mut self, bus: &mut SystemBus, max_steps: u64) -> Result<RunResult, CpuError> {
        for _ in 0..max_steps {
            if let Some(halt) = self.step(bus)? {
                return Ok(RunResult {
                    instructions: self.instructions,
                    cycles: self.cycles,
                    halt,
                });
            }
        }
        Ok(RunResult {
            instructions: self.instructions,
            cycles: self.cycles,
            halt: HaltReason::StepLimit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::bus::Memory;

    fn run_program(build: impl FnOnce(&mut Asm)) -> Cpu {
        let mut a = Asm::new();
        build(&mut a);
        a.ecall();
        let program = a.assemble(0).unwrap();
        let mut bus = SystemBus::new(Memory::new(0x10000));
        bus.load_program(0, &program);
        let mut cpu = Cpu::new();
        let r = cpu.run(&mut bus, 1_000_000).unwrap();
        assert_eq!(r.halt, HaltReason::Ecall);
        cpu
    }

    #[test]
    fn arithmetic_and_logic() {
        let cpu = run_program(|a| {
            a.li(1, 100);
            a.li(2, -7);
            a.add(3, 1, 2); // 93
            a.sub(4, 1, 2); // 107
            a.xor(5, 1, 2);
            a.and(6, 1, 2);
            a.or(7, 1, 2);
        });
        assert_eq!(cpu.reg(3), 93);
        assert_eq!(cpu.reg(4), 107);
        assert_eq!(cpu.reg(5), 100u32 ^ (-7i32 as u32));
        assert_eq!(cpu.reg(6), 100u32 & (-7i32 as u32));
        assert_eq!(cpu.reg(7), 100u32 | (-7i32 as u32));
    }

    #[test]
    fn shifts_and_compares() {
        let cpu = run_program(|a| {
            a.li(1, -16);
            a.srai(2, 1, 2); // -4
            a.srli(3, 1, 2); // logical
            a.slli(4, 1, 1); // -32
            a.li(5, 3);
            a.slt(6, 1, 5); // -16 < 3 -> 1
            a.sltu(7, 1, 5); // huge unsigned -> 0
        });
        assert_eq!(cpu.reg(2) as i32, -4);
        assert_eq!(cpu.reg(3), (-16i32 as u32) >> 2);
        assert_eq!(cpu.reg(4) as i32, -32);
        assert_eq!(cpu.reg(6), 1);
        assert_eq!(cpu.reg(7), 0);
    }

    #[test]
    fn mul_div_semantics() {
        let cpu = run_program(|a| {
            a.li(1, -6);
            a.li(2, 4);
            a.mul(3, 1, 2); // -24
            a.div(4, 1, 2); // -1 (toward zero)
            a.rem(5, 1, 2); // -2
            a.li(6, 0);
            a.div(7, 1, 6); // div by zero -> -1
            a.rem(8, 1, 6); // rem by zero -> rs1
        });
        assert_eq!(cpu.reg(3) as i32, -24);
        assert_eq!(cpu.reg(4) as i32, -1);
        assert_eq!(cpu.reg(5) as i32, -2);
        assert_eq!(cpu.reg(7) as i32, -1);
        assert_eq!(cpu.reg(8) as i32, -6);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10 with a loop.
        let cpu = run_program(|a| {
            a.li(1, 0); // acc
            a.li(2, 1); // i
            a.li(3, 11); // limit
            a.label("loop");
            a.add(1, 1, 2);
            a.addi(2, 2, 1);
            a.blt(2, 3, "loop");
        });
        assert_eq!(cpu.reg(1), 55);
    }

    #[test]
    fn memory_access() {
        let cpu = run_program(|a| {
            a.li(1, 0x1234);
            a.li(2, 0x100);
            a.sw(2, 1, 0);
            a.lw(3, 2, 0);
            a.lh(4, 2, 0);
            a.lb(5, 2, 1); // byte 0x12
            a.li(6, -1);
            a.sb(2, 6, 8);
            a.lbu(7, 2, 8); // 0xff
            a.lb(8, 2, 8); // -1
        });
        assert_eq!(cpu.reg(3), 0x1234);
        assert_eq!(cpu.reg(4), 0x1234);
        assert_eq!(cpu.reg(5), 0x12);
        assert_eq!(cpu.reg(7), 0xff);
        assert_eq!(cpu.reg(8) as i32, -1);
    }

    #[test]
    fn function_call_via_jal() {
        let cpu = run_program(|a| {
            a.li(10, 5);
            a.jal(1, "double");
            a.jal(1, "double");
            a.j("done");
            a.label("double");
            a.add(10, 10, 10);
            a.jalr(0, 1, 0); // ret
            a.label("done");
        });
        assert_eq!(cpu.reg(10), 20);
    }

    #[test]
    fn rv32e_rejects_high_registers() {
        let mut a = Asm::new();
        a.li(20, 1);
        a.ecall();
        let program = a.assemble(0).unwrap();
        let mut bus = SystemBus::new(Memory::new(0x1000));
        bus.load_program(0, &program);
        let mut cpu = Cpu::new_rv32e();
        assert_eq!(
            cpu.run(&mut bus, 10),
            Err(CpuError::BadRegister { reg: 20 })
        );
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let cpu = run_program(|a| {
            a.li(0, 99);
            a.add(1, 0, 0);
        });
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 0);
    }

    #[test]
    fn cycle_model_charges_loads_and_branches() {
        // Straight-line ALU: 1 cycle each (+ecall).
        let alu = run_program(|a| {
            for _ in 0..10 {
                a.addi(1, 1, 1);
            }
        });
        // Ten loads: 2 cycles each.
        let mem = run_program(|a| {
            for _ in 0..10 {
                a.lw(1, 0, 0x100);
            }
        });
        assert!(mem.cycles() > alu.cycles());
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped by RVC fields
    fn compressed_instructions_execute() {
        // Hand-encode: c.li x5, 21 ; c.add x5, x5 ; ecall (32-bit).
        let mut bus = SystemBus::new(Memory::new(0x1000));
        let c_li: u16 = 0b010_0_00101_10101_01; // c.li x5, 21
        let c_add: u16 = 0b100_1_00101_00101_10; // c.add x5, x5
        bus.store16(0, c_li);
        bus.store16(2, c_add);
        bus.store32(4, 0x0000_0073); // ecall
        let mut cpu = Cpu::new();
        let r = cpu.run(&mut bus, 10).unwrap();
        assert_eq!(r.halt, HaltReason::Ecall);
        assert_eq!(cpu.reg(5), 42);
    }
}
