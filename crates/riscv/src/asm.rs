//! A label-aware RV32IM mini-assembler.
//!
//! Controller firmware in this repository — switch programming, closed-loop
//! stimulation, the software kernels of the Figure 4 baseline — is written
//! against this builder API and executed on the simulator. It emits 32-bit
//! encodings only (the fetch path also accepts compressed instructions, but
//! firmware here does not need them).

/// Assembly-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced an undefined label.
    UnknownLabel(String),
    /// A resolved offset does not fit its encoding.
    OffsetOutOfRange {
        /// The label whose offset overflowed.
        label: String,
        /// The offset in bytes.
        offset: i64,
    },
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownLabel(l) => write!(f, "unknown label `{l}`"),
            Self::OffsetOutOfRange { label, offset } => {
                write!(f, "offset {offset} to `{label}` out of range")
            }
            Self::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Word(u32),
    Branch {
        funct3: u32,
        rs1: u8,
        rs2: u8,
        label: String,
    },
    Jal {
        rd: u8,
        label: String,
    },
}

/// The program builder.
///
/// # Example
///
/// ```
/// use halo_riscv::asm::Asm;
/// let mut a = Asm::new();
/// a.li(10, 0);
/// a.li(11, 4);
/// a.label("loop");
/// a.addi(10, 10, 2);
/// a.addi(11, 11, -1);
/// a.bne(11, 0, "loop");
/// a.ecall();
/// let words = a.assemble(0).unwrap();
/// assert!(!words.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: std::collections::HashMap<String, usize>,
    error: Option<AsmError>,
}

fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn i_type(imm: i32, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    ((imm as u32 & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

fn s_type(imm: i32, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_encode(offset: i32, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0x63
}

fn j_encode(offset: i32, rd: u8) -> u32 {
    let imm = offset as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | ((rd as u32) << 7)
        | 0x6f
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction count (for manual offset math).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) {
        if self
            .labels
            .insert(name.to_string(), self.items.len())
            .is_some()
            && self.error.is_none()
        {
            self.error = Some(AsmError::DuplicateLabel(name.to_string()));
        }
    }

    fn word(&mut self, w: u32) {
        self.items.push(Item::Word(w));
    }

    // ---- U / J / jumps ----

    /// `lui rd, imm20` (imm is the full upper value, e.g. `0x4000_0000`).
    pub fn lui(&mut self, rd: u8, imm: u32) {
        self.word((imm & 0xffff_f000) | ((rd as u32) << 7) | 0x37);
    }

    /// `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: u8, imm: u32) {
        self.word((imm & 0xffff_f000) | ((rd as u32) << 7) | 0x17);
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: u8, label: &str) {
        self.items.push(Item::Jal {
            rd,
            label: label.to_string(),
        });
    }

    /// `j label` (pseudo: `jal x0, label`).
    pub fn j(&mut self, label: &str) {
        self.jal(0, label);
    }

    /// `jalr rd, rs1, offset`.
    pub fn jalr(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.word(i_type(offset, rs1, 0, rd, 0x67));
    }

    /// `ret` (pseudo: `jalr x0, x1, 0`).
    pub fn ret(&mut self) {
        self.jalr(0, 1, 0);
    }

    // ---- ALU immediate ----

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.word(i_type(imm, rs1, 0, rd, 0x13));
    }

    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.word(i_type(imm, rs1, 2, rd, 0x13));
    }

    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.word(i_type(imm, rs1, 3, rd, 0x13));
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.word(i_type(imm, rs1, 4, rd, 0x13));
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.word(i_type(imm, rs1, 6, rd, 0x13));
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i32) {
        self.word(i_type(imm, rs1, 7, rd, 0x13));
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.word(i_type((shamt & 31) as i32, rs1, 1, rd, 0x13));
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.word(i_type((shamt & 31) as i32, rs1, 5, rd, 0x13));
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: u8) {
        self.word(i_type((shamt & 31) as i32 | 0x400, rs1, 5, rd, 0x13));
    }

    /// `li rd, imm` (pseudo: `addi` or `lui`+`addi`).
    pub fn li(&mut self, rd: u8, imm: i32) {
        if (-2048..=2047).contains(&imm) {
            self.addi(rd, 0, imm);
        } else {
            // Round so the sign-extended low half corrects exactly.
            let low = (imm << 20) >> 20;
            let high = imm.wrapping_sub(low) as u32;
            self.lui(rd, high);
            if low != 0 {
                self.addi(rd, rd, low);
            }
        }
    }

    /// `mv rd, rs` (pseudo: `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.addi(rd, rs, 0);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(0, 0, 0);
    }

    // ---- ALU register ----

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 0, rd, 0x33));
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0x20, rs2, rs1, 0, rd, 0x33));
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 1, rd, 0x33));
    }

    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 2, rd, 0x33));
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 3, rd, 0x33));
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 4, rd, 0x33));
    }

    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 5, rd, 0x33));
    }

    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0x20, rs2, rs1, 5, rd, 0x33));
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 6, rd, 0x33));
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(0, rs2, rs1, 7, rd, 0x33));
    }

    // ---- M extension ----

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(1, rs2, rs1, 0, rd, 0x33));
    }

    /// `mulh rd, rs1, rs2`.
    pub fn mulh(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(1, rs2, rs1, 1, rd, 0x33));
    }

    /// `div rd, rs1, rs2`.
    pub fn div(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(1, rs2, rs1, 4, rd, 0x33));
    }

    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(1, rs2, rs1, 5, rd, 0x33));
    }

    /// `rem rd, rs1, rs2`.
    pub fn rem(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(1, rs2, rs1, 6, rd, 0x33));
    }

    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.word(r_type(1, rs2, rs1, 7, rd, 0x33));
    }

    // ---- Memory ----

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.word(i_type(offset, rs1, 2, rd, 0x03));
    }

    /// `lh rd, offset(rs1)`.
    pub fn lh(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.word(i_type(offset, rs1, 1, rd, 0x03));
    }

    /// `lhu rd, offset(rs1)`.
    pub fn lhu(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.word(i_type(offset, rs1, 5, rd, 0x03));
    }

    /// `lb rd, offset(rs1)`.
    pub fn lb(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.word(i_type(offset, rs1, 0, rd, 0x03));
    }

    /// `lbu rd, offset(rs1)`.
    pub fn lbu(&mut self, rd: u8, rs1: u8, offset: i32) {
        self.word(i_type(offset, rs1, 4, rd, 0x03));
    }

    /// `sw rs2, offset(rs1)` — note the argument order `(rs1, rs2, offset)`.
    pub fn sw(&mut self, rs1: u8, rs2: u8, offset: i32) {
        self.word(s_type(offset, rs2, rs1, 2, 0x23));
    }

    /// `sh rs2, offset(rs1)`.
    pub fn sh(&mut self, rs1: u8, rs2: u8, offset: i32) {
        self.word(s_type(offset, rs2, rs1, 1, 0x23));
    }

    /// `sb rs2, offset(rs1)`.
    pub fn sb(&mut self, rs1: u8, rs2: u8, offset: i32) {
        self.word(s_type(offset, rs2, rs1, 0, 0x23));
    }

    // ---- Branches ----

    fn branch(&mut self, funct3: u32, rs1: u8, rs2: u8, label: &str) {
        self.items.push(Item::Branch {
            funct3,
            rs1,
            rs2,
            label: label.to_string(),
        });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(0, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(1, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(4, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(5, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(6, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, label: &str) {
        self.branch(7, rs1, rs2, label);
    }

    // ---- System ----

    /// `ecall` (halts the simulator).
    pub fn ecall(&mut self) {
        self.word(0x0000_0073);
    }

    /// `ebreak` (halts the simulator).
    pub fn ebreak(&mut self) {
        self.word(0x0010_0073);
    }

    /// Resolves labels and emits the instruction words.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined/duplicate labels or out-of-range
    /// offsets.
    pub fn assemble(&self, _base: u32) -> Result<Vec<u32>, AsmError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        let mut out = Vec::with_capacity(self.items.len());
        for (i, item) in self.items.iter().enumerate() {
            let resolve = |label: &String, range_bits: u32| -> Result<i32, AsmError> {
                let target = *self
                    .labels
                    .get(label)
                    .ok_or_else(|| AsmError::UnknownLabel(label.clone()))?;
                let offset = (target as i64 - i as i64) * 4;
                let max = (1i64 << (range_bits - 1)) - 1;
                if offset > max || offset < -(max + 1) {
                    return Err(AsmError::OffsetOutOfRange {
                        label: label.clone(),
                        offset,
                    });
                }
                Ok(offset as i32)
            };
            let word = match item {
                Item::Word(w) => *w,
                Item::Branch {
                    funct3,
                    rs1,
                    rs2,
                    label,
                } => b_encode(resolve(label, 13)?, *rs2, *rs1, *funct3),
                Item::Jal { rd, label } => j_encode(resolve(label, 21)?, *rd),
            };
            out.push(word);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode32, AluOp, BranchOp, Instr};

    #[test]
    fn encodings_decode_back() {
        let mut a = Asm::new();
        a.addi(5, 6, -1);
        a.add(1, 2, 3);
        a.mul(10, 11, 12);
        a.lw(5, 2, 16);
        a.sw(2, 5, 16);
        let words = a.assemble(0).unwrap();
        assert_eq!(
            decode32(words[0]).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 6,
                imm: -1
            }
        );
        assert_eq!(
            decode32(words[1]).unwrap(),
            Instr::Op {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3
            }
        );
        assert_eq!(
            decode32(words[2]).unwrap(),
            Instr::Op {
                op: AluOp::Mul,
                rd: 10,
                rs1: 11,
                rs2: 12
            }
        );
        assert!(matches!(decode32(words[3]).unwrap(), Instr::Load { .. }));
        assert!(matches!(decode32(words[4]).unwrap(), Instr::Store { .. }));
    }

    #[test]
    fn branch_offsets_resolve() {
        let mut a = Asm::new();
        a.label("top");
        a.nop();
        a.beq(1, 2, "top");
        let words = a.assemble(0).unwrap();
        assert_eq!(
            decode32(words[1]).unwrap(),
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: 1,
                rs2: 2,
                offset: -4
            }
        );
    }

    #[test]
    fn li_handles_large_values() {
        for imm in [
            0i32,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x12345,
            -0x54321,
            i32::MAX,
            i32::MIN,
        ] {
            let mut a = Asm::new();
            a.li(7, imm);
            a.ecall();
            let program = a.assemble(0).unwrap();
            let mut bus = crate::SystemBus::new(crate::Memory::new(0x1000));
            bus.load_program(0, &program);
            let mut cpu = crate::Cpu::new();
            cpu.run(&mut bus, 10).unwrap();
            assert_eq!(cpu.reg(7) as i32, imm, "imm {imm}");
        }
    }

    #[test]
    fn unknown_label_errors() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(a.assemble(0), Err(AsmError::UnknownLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.assemble(0), Err(AsmError::DuplicateLabel("x".into())));
    }
}
