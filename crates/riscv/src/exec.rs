//! Instruction execution and the Ibex-like cycle model.
//!
//! The Ibex ("Zero-riscy", §V-A) is a 2-stage in-order core: ALU ops retire
//! in 1 cycle; loads, stores, and taken branches stall the fetch stage for
//! an extra cycle; jumps take 2; multiplies take 3 (slow multiplier
//! option); divisions take 37.

use crate::bus::SystemBus;
use crate::cpu::{Cpu, HaltReason};
use crate::decode::{AluOp, BranchOp, Instr, LoadOp, StoreOp};

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Cycles charged under the Ibex-like model.
    pub cycles: u32,
    /// Halt condition, if the instruction halts the simulation.
    pub halt: Option<HaltReason>,
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
        AluOp::Mulhsu => ((a as i32 as i64).wrapping_mul(b as u64 as i64) >> 32) as u32,
        AluOp::Mulhu => ((a as u64).wrapping_mul(b as u64) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a as i32 == i32::MIN && b as i32 == -1 {
                a
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a as i32 == i32::MIN && b as i32 == -1 {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn alu_cycles(op: AluOp) -> u32 {
    match op {
        AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => 3,
        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 37,
        _ => 1,
    }
}

/// Executes one decoded instruction; advances the PC.
pub fn execute(cpu: &mut Cpu, bus: &mut SystemBus, instr: Instr, len: u32) -> Outcome {
    let next = cpu.pc.wrapping_add(len);
    let mut cycles = 1;
    let mut halt = None;
    match instr {
        Instr::Lui { rd, imm } => {
            cpu.set_reg(rd, imm as u32);
            cpu.pc = next;
        }
        Instr::Auipc { rd, imm } => {
            cpu.set_reg(rd, cpu.pc.wrapping_add(imm as u32));
            cpu.pc = next;
        }
        Instr::Jal { rd, offset } => {
            cpu.set_reg(rd, next);
            cpu.pc = cpu.pc.wrapping_add(offset as u32);
            cycles = 2;
        }
        Instr::Jalr { rd, rs1, offset } => {
            let target = cpu.reg(rs1).wrapping_add(offset as u32) & !1;
            cpu.set_reg(rd, next);
            cpu.pc = target;
            cycles = 2;
        }
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let a = cpu.reg(rs1);
            let b = cpu.reg(rs2);
            let taken = match op {
                BranchOp::Eq => a == b,
                BranchOp::Ne => a != b,
                BranchOp::Lt => (a as i32) < (b as i32),
                BranchOp::Ge => (a as i32) >= (b as i32),
                BranchOp::Ltu => a < b,
                BranchOp::Geu => a >= b,
            };
            if taken {
                cpu.pc = cpu.pc.wrapping_add(offset as u32);
                cycles = 3;
            } else {
                cpu.pc = next;
            }
        }
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let addr = cpu.reg(rs1).wrapping_add(offset as u32);
            let value = match op {
                LoadOp::Lb => bus.load8(addr) as i8 as i32 as u32,
                LoadOp::Lbu => bus.load8(addr) as u32,
                LoadOp::Lh => bus.load16(addr) as i16 as i32 as u32,
                LoadOp::Lhu => bus.load16(addr) as u32,
                LoadOp::Lw => bus.load32(addr),
            };
            cpu.set_reg(rd, value);
            cpu.pc = next;
            cycles = 2;
        }
        Instr::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let addr = cpu.reg(rs1).wrapping_add(offset as u32);
            let value = cpu.reg(rs2);
            match op {
                StoreOp::Sb => bus.store8(addr, value as u8),
                StoreOp::Sh => bus.store16(addr, value as u16),
                StoreOp::Sw => bus.store32(addr, value),
            }
            cpu.pc = next;
            cycles = 2;
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            cpu.set_reg(rd, alu(op, cpu.reg(rs1), imm as u32));
            cpu.pc = next;
            cycles = alu_cycles(op);
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            cpu.set_reg(rd, alu(op, cpu.reg(rs1), cpu.reg(rs2)));
            cpu.pc = next;
            cycles = alu_cycles(op);
        }
        Instr::Fence => {
            cpu.pc = next;
        }
        Instr::Ecall => {
            cpu.pc = next;
            halt = Some(HaltReason::Ecall);
        }
        Instr::Ebreak => {
            cpu.pc = next;
            halt = Some(HaltReason::Ebreak);
        }
    }
    Outcome { cycles, halt }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riscv_division_edge_cases() {
        assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Divu, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        assert_eq!(
            alu(AluOp::Div, i32::MIN as u32, -1i32 as u32),
            i32::MIN as u32
        );
        assert_eq!(alu(AluOp::Rem, i32::MIN as u32, -1i32 as u32), 0);
    }

    #[test]
    fn mulh_variants() {
        let a = -3i32 as u32;
        let b = 5u32;
        assert_eq!(alu(AluOp::Mulh, a, b), ((-3i64 * 5) >> 32) as u32);
        assert_eq!(alu(AluOp::Mulhu, a, b), (((a as u64) * 5) >> 32) as u32);
        assert_eq!(alu(AluOp::Mulhsu, a, b), ((-3i64 * 5) >> 32) as u32);
    }

    #[test]
    fn shift_amounts_mask_to_five_bits() {
        assert_eq!(alu(AluOp::Sll, 1, 33), 2);
        assert_eq!(alu(AluOp::Srl, 4, 33), 2);
    }

    #[test]
    fn cycle_costs() {
        assert_eq!(alu_cycles(AluOp::Add), 1);
        assert_eq!(alu_cycles(AluOp::Mul), 3);
        assert_eq!(alu_cycles(AluOp::Div), 37);
    }
}
