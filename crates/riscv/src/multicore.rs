//! Multi-core arrays for the all-software baseline.
//!
//! Figure 4 evaluates HALO against "software tasks execut\[ing\] on
//! micro-controller cores in both single-core and multi-core designs,
//! where we divide the 96 channel data streams and operate on them in
//! parallel … 1–64 RISC-V core counts, in powers of two". This module runs
//! the same firmware image on N independent cores (private memories, as in
//! the paper's shared-nothing channel partitioning) and reports aggregate
//! instruction/cycle counts that the power model converts into the
//! required per-core frequency.

use crate::bus::{Memory, SystemBus};
use crate::cpu::{Cpu, CpuError, RunResult};

/// Core counts evaluated by the paper's sweep.
pub const CORE_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A shared-nothing array of RV32 cores.
pub struct MulticoreArray {
    cores: Vec<(Cpu, SystemBus)>,
}

impl std::fmt::Debug for MulticoreArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulticoreArray")
            .field("cores", &self.cores.len())
            .finish()
    }
}

/// Aggregate results of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelResult {
    /// Instructions retired across all cores.
    pub total_instructions: u64,
    /// The slowest core's cycle count — the array's makespan.
    pub makespan_cycles: u64,
}

impl MulticoreArray {
    /// Creates `n` cores, each with `mem_bytes` of private RAM and the same
    /// program image at address 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, mem_bytes: usize, program: &[u32]) -> Self {
        assert!(n > 0, "need at least one core");
        let cores = (0..n)
            .map(|_| {
                let mut bus = SystemBus::new(Memory::new(mem_bytes));
                bus.load_program(0, program);
                (Cpu::new(), bus)
            })
            .collect();
        Self { cores }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Seeds register `reg` of core `i` (e.g. its channel-slice base).
    pub fn set_reg(&mut self, core: usize, reg: u8, value: u32) {
        self.cores[core].0.set_reg(reg, value);
    }

    /// Writes bytes into core `i`'s private RAM (its channel-slice input).
    pub fn load_bytes(&mut self, core: usize, base: u32, bytes: &[u8]) {
        self.cores[core].1.load_bytes(base, bytes);
    }

    /// Reads a register of core `i` after a run.
    pub fn reg(&self, core: usize, reg: u8) -> u32 {
        self.cores[core].0.reg(reg)
    }

    /// Runs every core to completion (or `max_steps`).
    ///
    /// # Errors
    ///
    /// Returns the first core error encountered.
    pub fn run_all(&mut self, max_steps: u64) -> Result<ParallelResult, CpuError> {
        let mut total_instructions = 0;
        let mut makespan_cycles = 0;
        for (cpu, bus) in &mut self.cores {
            let RunResult {
                instructions,
                cycles,
                ..
            } = cpu.run(bus, max_steps)?;
            total_instructions += instructions;
            makespan_cycles = makespan_cycles.max(cycles);
        }
        Ok(ParallelResult {
            total_instructions,
            makespan_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    /// Firmware: sum `r11` halfwords at address in `r10` into `r12`.
    fn sum_program() -> Vec<u32> {
        let mut a = Asm::new();
        a.li(12, 0);
        a.label("loop");
        a.beq(11, 0, "done");
        a.lh(13, 10, 0);
        a.add(12, 12, 13);
        a.addi(10, 10, 2);
        a.addi(11, 11, -1);
        a.j("loop");
        a.label("done");
        a.ecall();
        a.assemble(0).unwrap()
    }

    #[test]
    fn channel_partitioning_across_cores() {
        // 8 channel-slices of 4 samples, partitioned over 4 cores (2 each
        // is modeled as one slice per core here for simplicity).
        let program = sum_program();
        let mut array = MulticoreArray::new(4, 0x1000, &program);
        for core in 0..4 {
            let samples: Vec<u8> = (0..4i16)
                .flat_map(|s| ((core as i16 + 1) * (s + 1)).to_le_bytes())
                .collect();
            array.load_bytes(core, 0x800, &samples);
            array.set_reg(core, 10, 0x800);
            array.set_reg(core, 11, 4);
        }
        let result = array.run_all(10_000).unwrap();
        for core in 0..4 {
            let want: i16 = (1..=4).map(|s| (core as i16 + 1) * s).sum();
            assert_eq!(array.reg(core, 12) as i32, want as i32, "core {core}");
        }
        assert!(result.total_instructions > 0);
        assert!(result.makespan_cycles > 0);
    }

    #[test]
    fn makespan_is_max_not_sum() {
        let program = sum_program();
        let mut a1 = MulticoreArray::new(1, 0x1000, &program);
        a1.set_reg(0, 10, 0x800);
        a1.set_reg(0, 11, 64);
        let r1 = a1.run_all(100_000).unwrap();

        let mut a4 = MulticoreArray::new(4, 0x1000, &program);
        for c in 0..4 {
            a4.set_reg(c, 10, 0x800);
            a4.set_reg(c, 11, 16); // a quarter of the work each
        }
        let r4 = a4.run_all(100_000).unwrap();
        // Parallelizing shrinks the makespan roughly 4x.
        assert!(r4.makespan_cycles * 3 < r1.makespan_cycles);
    }
}
