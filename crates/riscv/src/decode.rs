//! Instruction decoding: RV32I, M, and the C (compressed) extension.

/// A decoded instruction.
///
/// Registers are architectural indices (`0..32`; the RV32E mode restricts
/// them to `0..16` at execution time). Immediates are sign-extended where
/// the ISA says so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Load upper immediate.
    Lui { rd: u8, imm: i32 },
    /// Add upper immediate to PC.
    Auipc { rd: u8, imm: i32 },
    /// Jump and link.
    Jal { rd: u8, offset: i32 },
    /// Jump and link register.
    Jalr { rd: u8, rs1: u8, offset: i32 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    /// Memory load.
    Load {
        op: LoadOp,
        rd: u8,
        rs1: u8,
        offset: i32,
    },
    /// Memory store.
    Store {
        op: StoreOp,
        rs1: u8,
        rs2: u8,
        offset: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    /// Register-register ALU operation (including M extension).
    Op { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// Memory fence (a no-op in this single-hart model).
    Fence,
    /// Environment call (halts the simulation).
    Ecall,
    /// Breakpoint (halts the simulation).
    Ebreak,
}

/// Branch comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Load widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// Sign-extended byte.
    Lb,
    /// Sign-extended halfword.
    Lh,
    /// Word.
    Lw,
    /// Zero-extended byte.
    Lbu,
    /// Zero-extended halfword.
    Lhu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// Byte.
    Sb,
    /// Halfword.
    Sh,
    /// Word.
    Sw,
}

/// ALU operations (RV32I plus the M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Shift left logical.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Inclusive or.
    Or,
    /// And.
    And,
    /// Multiply (low 32 bits).
    Mul,
    /// Multiply high, signed × signed.
    Mulh,
    /// Multiply high, signed × unsigned.
    Mulhsu,
    /// Multiply high, unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The 32-bit pattern is not a supported instruction.
    Illegal(u32),
    /// The 16-bit pattern is not a supported compressed instruction.
    IllegalCompressed(u16),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Illegal(w) => write!(f, "illegal instruction {w:#010x}"),
            Self::IllegalCompressed(h) => write!(f, "illegal compressed instruction {h:#06x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError::Illegal`] for unsupported encodings.
pub fn decode32(word: u32) -> Result<Instr, DecodeError> {
    let opcode = word & 0x7f;
    let rd = bits(word, 11, 7) as u8;
    let rs1 = bits(word, 19, 15) as u8;
    let rs2 = bits(word, 24, 20) as u8;
    let funct3 = bits(word, 14, 12);
    let funct7 = bits(word, 31, 25);
    match opcode {
        0x37 => Ok(Instr::Lui {
            rd,
            imm: (word & 0xffff_f000) as i32,
        }),
        0x17 => Ok(Instr::Auipc {
            rd,
            imm: (word & 0xffff_f000) as i32,
        }),
        0x6f => {
            let imm = (bits(word, 31, 31) << 20)
                | (bits(word, 19, 12) << 12)
                | (bits(word, 20, 20) << 11)
                | (bits(word, 30, 21) << 1);
            Ok(Instr::Jal {
                rd,
                offset: sign_extend(imm, 21),
            })
        }
        0x67 if funct3 == 0 => Ok(Instr::Jalr {
            rd,
            rs1,
            offset: sign_extend(bits(word, 31, 20), 12),
        }),
        0x63 => {
            let imm = (bits(word, 31, 31) << 12)
                | (bits(word, 7, 7) << 11)
                | (bits(word, 30, 25) << 5)
                | (bits(word, 11, 8) << 1);
            let offset = sign_extend(imm, 13);
            let op = match funct3 {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return Err(DecodeError::Illegal(word)),
            };
            Ok(Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            })
        }
        0x03 => {
            let op = match funct3 {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                _ => return Err(DecodeError::Illegal(word)),
            };
            Ok(Instr::Load {
                op,
                rd,
                rs1,
                offset: sign_extend(bits(word, 31, 20), 12),
            })
        }
        0x23 => {
            let op = match funct3 {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                _ => return Err(DecodeError::Illegal(word)),
            };
            let imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7);
            Ok(Instr::Store {
                op,
                rs1,
                rs2,
                offset: sign_extend(imm, 12),
            })
        }
        0x13 => {
            let imm = sign_extend(bits(word, 31, 20), 12);
            let shamt = bits(word, 24, 20) as i32;
            let op = match funct3 {
                0 => AluOp::Add,
                1 if funct7 == 0 => {
                    return Ok(Instr::OpImm {
                        op: AluOp::Sll,
                        rd,
                        rs1,
                        imm: shamt,
                    })
                }
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 if funct7 == 0 => {
                    return Ok(Instr::OpImm {
                        op: AluOp::Srl,
                        rd,
                        rs1,
                        imm: shamt,
                    })
                }
                5 if funct7 == 0x20 => {
                    return Ok(Instr::OpImm {
                        op: AluOp::Sra,
                        rd,
                        rs1,
                        imm: shamt,
                    })
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return Err(DecodeError::Illegal(word)),
            };
            Ok(Instr::OpImm { op, rd, rs1, imm })
        }
        0x33 => {
            let op = match (funct7, funct3) {
                (0x00, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0x00, 1) => AluOp::Sll,
                (0x00, 2) => AluOp::Slt,
                (0x00, 3) => AluOp::Sltu,
                (0x00, 4) => AluOp::Xor,
                (0x00, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0x00, 6) => AluOp::Or,
                (0x00, 7) => AluOp::And,
                (0x01, 0) => AluOp::Mul,
                (0x01, 1) => AluOp::Mulh,
                (0x01, 2) => AluOp::Mulhsu,
                (0x01, 3) => AluOp::Mulhu,
                (0x01, 4) => AluOp::Div,
                (0x01, 5) => AluOp::Divu,
                (0x01, 6) => AluOp::Rem,
                (0x01, 7) => AluOp::Remu,
                _ => return Err(DecodeError::Illegal(word)),
            };
            Ok(Instr::Op { op, rd, rs1, rs2 })
        }
        0x0f => Ok(Instr::Fence),
        0x73 => match word {
            0x0000_0073 => Ok(Instr::Ecall),
            0x0010_0073 => Ok(Instr::Ebreak),
            _ => Err(DecodeError::Illegal(word)),
        },
        _ => Err(DecodeError::Illegal(word)),
    }
}

fn cbits(h: u16, hi: u32, lo: u32) -> u32 {
    ((h as u32) >> lo) & ((1 << (hi - lo + 1)) - 1)
}

/// Decodes a 16-bit compressed instruction into its 32-bit equivalent
/// semantics.
///
/// # Errors
///
/// Returns [`DecodeError::IllegalCompressed`] for unsupported or reserved
/// encodings (including the all-zero word).
pub fn decode16(h: u16) -> Result<Instr, DecodeError> {
    let op = h & 3;
    let funct3 = cbits(h, 15, 13);
    // Compressed register fields map x8..x15.
    let rd_p = (cbits(h, 4, 2) + 8) as u8;
    let rs1_p = (cbits(h, 9, 7) + 8) as u8;
    let rd_full = cbits(h, 11, 7) as u8;
    let rs2_full = cbits(h, 6, 2) as u8;
    match (op, funct3) {
        (0, 0) => {
            // C.ADDI4SPN: addi rd', x2, nzuimm
            let imm = (cbits(h, 10, 7) << 6)
                | (cbits(h, 12, 11) << 4)
                | (cbits(h, 5, 5) << 3)
                | (cbits(h, 6, 6) << 2);
            if imm == 0 {
                return Err(DecodeError::IllegalCompressed(h));
            }
            Ok(Instr::OpImm {
                op: AluOp::Add,
                rd: rd_p,
                rs1: 2,
                imm: imm as i32,
            })
        }
        (0, 2) => {
            // C.LW
            let imm = (cbits(h, 5, 5) << 6) | (cbits(h, 12, 10) << 3) | (cbits(h, 6, 6) << 2);
            Ok(Instr::Load {
                op: LoadOp::Lw,
                rd: rd_p,
                rs1: rs1_p,
                offset: imm as i32,
            })
        }
        (0, 6) => {
            // C.SW
            let imm = (cbits(h, 5, 5) << 6) | (cbits(h, 12, 10) << 3) | (cbits(h, 6, 6) << 2);
            Ok(Instr::Store {
                op: StoreOp::Sw,
                rs1: rs1_p,
                rs2: rd_p,
                offset: imm as i32,
            })
        }
        (1, 0) => {
            // C.ADDI (C.NOP when rd=0)
            let imm = sign_extend((cbits(h, 12, 12) << 5) | cbits(h, 6, 2), 6);
            Ok(Instr::OpImm {
                op: AluOp::Add,
                rd: rd_full,
                rs1: rd_full,
                imm,
            })
        }
        (1, 1) => {
            // C.JAL (RV32)
            let imm = c_j_imm(h);
            Ok(Instr::Jal { rd: 1, offset: imm })
        }
        (1, 2) => {
            // C.LI
            let imm = sign_extend((cbits(h, 12, 12) << 5) | cbits(h, 6, 2), 6);
            Ok(Instr::OpImm {
                op: AluOp::Add,
                rd: rd_full,
                rs1: 0,
                imm,
            })
        }
        (1, 3) => {
            if rd_full == 2 {
                // C.ADDI16SP
                let imm = sign_extend(
                    (cbits(h, 12, 12) << 9)
                        | (cbits(h, 4, 3) << 7)
                        | (cbits(h, 5, 5) << 6)
                        | (cbits(h, 2, 2) << 5)
                        | (cbits(h, 6, 6) << 4),
                    10,
                );
                if imm == 0 {
                    return Err(DecodeError::IllegalCompressed(h));
                }
                Ok(Instr::OpImm {
                    op: AluOp::Add,
                    rd: 2,
                    rs1: 2,
                    imm,
                })
            } else {
                // C.LUI
                let imm = sign_extend((cbits(h, 12, 12) << 17) | (cbits(h, 6, 2) << 12), 18);
                if imm == 0 {
                    return Err(DecodeError::IllegalCompressed(h));
                }
                Ok(Instr::Lui { rd: rd_full, imm })
            }
        }
        (1, 4) => {
            let sub = cbits(h, 11, 10);
            match sub {
                0 | 1 => {
                    // C.SRLI / C.SRAI
                    let shamt = ((cbits(h, 12, 12) << 5) | cbits(h, 6, 2)) as i32;
                    let op = if sub == 0 { AluOp::Srl } else { AluOp::Sra };
                    Ok(Instr::OpImm {
                        op,
                        rd: rs1_p,
                        rs1: rs1_p,
                        imm: shamt,
                    })
                }
                2 => {
                    // C.ANDI
                    let imm = sign_extend((cbits(h, 12, 12) << 5) | cbits(h, 6, 2), 6);
                    Ok(Instr::OpImm {
                        op: AluOp::And,
                        rd: rs1_p,
                        rs1: rs1_p,
                        imm,
                    })
                }
                _ => {
                    let op = match (cbits(h, 12, 12), cbits(h, 6, 5)) {
                        (0, 0) => AluOp::Sub,
                        (0, 1) => AluOp::Xor,
                        (0, 2) => AluOp::Or,
                        (0, 3) => AluOp::And,
                        _ => return Err(DecodeError::IllegalCompressed(h)),
                    };
                    Ok(Instr::Op {
                        op,
                        rd: rs1_p,
                        rs1: rs1_p,
                        rs2: rd_p,
                    })
                }
            }
        }
        (1, 5) => Ok(Instr::Jal {
            rd: 0,
            offset: c_j_imm(h),
        }),
        (1, 6) | (1, 7) => {
            // C.BEQZ / C.BNEZ
            let imm = sign_extend(
                (cbits(h, 12, 12) << 8)
                    | (cbits(h, 6, 5) << 6)
                    | (cbits(h, 2, 2) << 5)
                    | (cbits(h, 11, 10) << 3)
                    | (cbits(h, 4, 3) << 1),
                9,
            );
            let op = if funct3 == 6 {
                BranchOp::Eq
            } else {
                BranchOp::Ne
            };
            Ok(Instr::Branch {
                op,
                rs1: rs1_p,
                rs2: 0,
                offset: imm,
            })
        }
        (2, 0) => {
            // C.SLLI
            let shamt = ((cbits(h, 12, 12) << 5) | cbits(h, 6, 2)) as i32;
            Ok(Instr::OpImm {
                op: AluOp::Sll,
                rd: rd_full,
                rs1: rd_full,
                imm: shamt,
            })
        }
        (2, 2) => {
            // C.LWSP
            if rd_full == 0 {
                return Err(DecodeError::IllegalCompressed(h));
            }
            let imm = (cbits(h, 3, 2) << 6) | (cbits(h, 12, 12) << 5) | (cbits(h, 6, 4) << 2);
            Ok(Instr::Load {
                op: LoadOp::Lw,
                rd: rd_full,
                rs1: 2,
                offset: imm as i32,
            })
        }
        (2, 4) => {
            let bit12 = cbits(h, 12, 12);
            match (bit12, rd_full, rs2_full) {
                (0, rs1, 0) if rs1 != 0 => Ok(Instr::Jalr {
                    rd: 0,
                    rs1,
                    offset: 0,
                }), // C.JR
                (0, rd, rs2) if rd != 0 => {
                    Ok(Instr::Op {
                        op: AluOp::Add,
                        rd,
                        rs1: 0,
                        rs2,
                    }) // C.MV
                }
                (1, 0, 0) => Ok(Instr::Ebreak),
                (1, rs1, 0) => Ok(Instr::Jalr {
                    rd: 1,
                    rs1,
                    offset: 0,
                }), // C.JALR
                (1, rd, rs2) => Ok(Instr::Op {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    rs2,
                }), // C.ADD
                _ => Err(DecodeError::IllegalCompressed(h)),
            }
        }
        (2, 6) => {
            // C.SWSP
            let imm = (cbits(h, 8, 7) << 6) | (cbits(h, 12, 9) << 2);
            Ok(Instr::Store {
                op: StoreOp::Sw,
                rs1: 2,
                rs2: rs2_full,
                offset: imm as i32,
            })
        }
        _ => Err(DecodeError::IllegalCompressed(h)),
    }
}

/// The CJ-format immediate shared by C.J and C.JAL.
fn c_j_imm(h: u16) -> i32 {
    let imm = (cbits(h, 12, 12) << 11)
        | (cbits(h, 8, 8) << 10)
        | (cbits(h, 10, 9) << 8)
        | (cbits(h, 6, 6) << 7)
        | (cbits(h, 7, 7) << 6)
        | (cbits(h, 2, 2) << 5)
        | (cbits(h, 11, 11) << 4)
        | (cbits(h, 5, 3) << 1);
    sign_extend(imm, 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_basic_alu() {
        // addi x5, x6, -1  => imm=0xfff rs1=6 funct3=0 rd=5 opcode=0x13
        let w = 0xfff3_0293;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 6,
                imm: -1
            }
        );
        // add x1, x2, x3
        let w = 0x0031_00b3;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::Op {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3
            }
        );
    }

    #[test]
    fn decodes_mul_div() {
        // mul x10, x11, x12 => funct7=1
        let w = 0x02c5_8533;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::Op {
                op: AluOp::Mul,
                rd: 10,
                rs1: 11,
                rs2: 12
            }
        );
        // divu x5, x6, x7
        let w = 0x0273_52b3;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::Op {
                op: AluOp::Divu,
                rd: 5,
                rs1: 6,
                rs2: 7
            }
        );
    }

    #[test]
    fn decodes_branches_with_negative_offsets() {
        // beq x1, x2, -4  (branch back one instruction)
        // imm[12|10:5]=0b1111111, rs2=2, rs1=1, funct3=0, imm[4:1|11]=0b11101, opcode=0x63
        let w = 0xfe20_8ee3;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: 1,
                rs2: 2,
                offset: -4
            }
        );
    }

    #[test]
    fn decodes_jal() {
        // jal x1, +8
        let w = 0x0080_00ef;
        assert_eq!(decode32(w).unwrap(), Instr::Jal { rd: 1, offset: 8 });
    }

    #[test]
    fn decodes_loads_stores() {
        // lw x5, 16(x2)
        let w = 0x0101_2283;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::Load {
                op: LoadOp::Lw,
                rd: 5,
                rs1: 2,
                offset: 16
            }
        );
        // sw x5, 16(x2)
        let w = 0x0051_2823;
        assert_eq!(
            decode32(w).unwrap(),
            Instr::Store {
                op: StoreOp::Sw,
                rs1: 2,
                rs2: 5,
                offset: 16
            }
        );
    }

    #[test]
    fn decodes_system() {
        assert_eq!(decode32(0x0000_0073).unwrap(), Instr::Ecall);
        assert_eq!(decode32(0x0010_0073).unwrap(), Instr::Ebreak);
        assert!(decode32(0xffff_ffff).is_err());
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped by RVC fields
    fn compressed_li_and_mv() {
        // c.li x5, 3 => 010 0 00101 00011 01 = 0x428d... compute: funct3=010 op=01,
        // imm[5]=0 rd=5 imm=3 -> 0b010_0_00101_00011_01
        let h = 0b010_0_00101_00011_01u16;
        assert_eq!(
            decode16(h).unwrap(),
            Instr::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 0,
                imm: 3
            }
        );
        // c.mv x5, x6 => 100 0 00101 00110 10
        let h = 0b100_0_00101_00110_10u16;
        assert_eq!(
            decode16(h).unwrap(),
            Instr::Op {
                op: AluOp::Add,
                rd: 5,
                rs1: 0,
                rs2: 6
            }
        );
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped by RVC fields
    fn compressed_add_and_ebreak() {
        // c.add x5, x6 => 100 1 00101 00110 10
        let h = 0b100_1_00101_00110_10u16;
        assert_eq!(
            decode16(h).unwrap(),
            Instr::Op {
                op: AluOp::Add,
                rd: 5,
                rs1: 5,
                rs2: 6
            }
        );
        // c.ebreak => 100 1 00000 00000 10
        let h = 0b100_1_00000_00000_10u16;
        assert_eq!(decode16(h).unwrap(), Instr::Ebreak);
    }

    #[test]
    fn compressed_zero_word_is_illegal() {
        assert_eq!(decode16(0), Err(DecodeError::IllegalCompressed(0)));
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped by RVC fields
    fn compressed_beqz_offset() {
        // c.beqz x8, +4 => funct3=110 op=01 rs1'=000 imm=4
        // imm[8|4:3]=000 (bits 12:10), imm[7:6|2:1|5]=00100? CB: [12]imm8 [11:10]imm4:3 [6:5]imm7:6 [4:3]imm2:1 [2]imm5
        let h = 0b110_000_000_00100_01u16; // imm2:1 = 10 -> offset 4
        assert_eq!(
            decode16(h).unwrap(),
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: 8,
                rs2: 0,
                offset: 4
            }
        );
    }
}
