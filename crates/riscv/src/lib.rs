//! RV32IM(C) micro-controller simulator for HALO.
//!
//! HALO integrates "a 2-stage in-order 32-bit Ibex RISC-V core … with the
//! RV32EC ISA" (§V-A) that (1) assembles PEs into pipelines by programming
//! interconnect switches, (2) configures PE parameters, (3) runs closed-loop
//! stimulation decisions, and (4) executes kernels for which no PE exists —
//! including the all-software baseline of Figure 4.
//!
//! This crate is a from-scratch instruction-set simulator covering:
//!
//! * **RV32I** base ISA plus the **M** multiply/divide extension,
//! * the **C** compressed extension (fetch understands mixed 16/32-bit
//!   streams — the paper calls out RVC as "used commonly for low-power
//!   embedded devices" to shrink program memory),
//! * an **RV32E** register-file mode (16 registers, as taped out),
//! * an Ibex-flavoured cycle model (2-cycle loads/stores and taken
//!   branches, multi-cycle divide),
//! * a memory-mapped I/O bus so controller programs can poke interconnect
//!   switches and stimulation registers,
//! * a label-aware [`asm::Asm`] mini-assembler for writing controller
//!   firmware in tests and experiments,
//! * [`multicore::MulticoreArray`] for the 1–64-core software-baseline
//!   sweep.
//!
//! # Example
//!
//! ```
//! use halo_riscv::asm::Asm;
//! use halo_riscv::{Cpu, Memory, SystemBus};
//!
//! // r10 = 6 * 7, then halt.
//! let mut a = Asm::new();
//! a.li(10, 6);
//! a.li(11, 7);
//! a.mul(10, 10, 11);
//! a.ecall();
//! let program = a.assemble(0).unwrap();
//!
//! let mut bus = SystemBus::new(Memory::new(0x1000));
//! bus.load_program(0, &program);
//! let mut cpu = Cpu::new();
//! cpu.run(&mut bus, 1_000).unwrap();
//! assert_eq!(cpu.reg(10), 42);
//! ```

pub mod asm;
pub mod bus;
pub mod cpu;
pub mod decode;
pub mod exec;
pub mod multicore;

pub use bus::{Memory, MmioDevice, SystemBus};
pub use cpu::{Cpu, CpuError, HaltReason, RegisterMode, RunResult};
pub use decode::Instr;
pub use multicore::MulticoreArray;
