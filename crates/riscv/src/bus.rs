//! Memory and the memory-mapped I/O bus.

/// A memory-mapped peripheral.
///
/// HALO's controller drives interconnect switches, PE parameter registers,
/// and the stimulation engine through plain loads/stores (§IV-E:
/// "instructions write to general purpose IO pins that set the switches
/// dynamically").
pub trait MmioDevice {
    /// Whether `addr` falls in this device's window.
    fn contains(&self, addr: u32) -> bool;
    /// 32-bit read.
    fn read32(&mut self, addr: u32) -> u32;
    /// 32-bit write.
    fn write32(&mut self, addr: u32, value: u32);
    /// Host-side downcast hook (e.g. to drain a [`Mailbox`]).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Flat little-endian RAM.
///
/// The paper's controller has 64 KB ("a small amount of memory (64Kb)",
/// §IV-E); the default constructor follows suit but any size is allowed.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates zeroed RAM of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            bytes: vec![0; size],
        }
    }

    /// The paper's controller memory: 64 KB.
    pub fn halo_default() -> Self {
        Self::new(64 * 1024)
    }

    /// RAM size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the RAM has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn get(&self, addr: u32) -> u8 {
        self.bytes.get(addr as usize).copied().unwrap_or(0)
    }

    fn set(&mut self, addr: u32, value: u8) {
        if let Some(b) = self.bytes.get_mut(addr as usize) {
            *b = value;
        }
    }
}

/// The system bus: RAM plus MMIO devices.
///
/// Device windows take precedence over RAM for 32-bit accesses; narrow
/// accesses always go to RAM (devices are word-registers, as in the real
/// design).
pub struct SystemBus {
    /// Backing RAM.
    pub mem: Memory,
    devices: Vec<Box<dyn MmioDevice>>,
}

impl std::fmt::Debug for SystemBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBus")
            .field("mem_len", &self.mem.len())
            .field("devices", &self.devices.len())
            .finish()
    }
}

impl SystemBus {
    /// Creates a bus over RAM with no devices.
    pub fn new(mem: Memory) -> Self {
        Self {
            mem,
            devices: Vec::new(),
        }
    }

    /// Attaches an MMIO device.
    pub fn attach(&mut self, device: Box<dyn MmioDevice>) {
        self.devices.push(device);
    }

    /// Access to an attached device (for host-side inspection).
    pub fn device(&mut self, index: usize) -> Option<&mut Box<dyn MmioDevice>> {
        self.devices.get_mut(index)
    }

    /// Loads a program of 32-bit words at `base`.
    pub fn load_program(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.store32(base + 4 * i as u32, w);
        }
    }

    /// Loads raw bytes at `base`.
    pub fn load_bytes(&mut self, base: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.mem.set(base + i as u32, b);
        }
    }

    /// 8-bit load.
    pub fn load8(&mut self, addr: u32) -> u8 {
        self.mem.get(addr)
    }

    /// 16-bit load (little endian).
    pub fn load16(&mut self, addr: u32) -> u16 {
        u16::from_le_bytes([self.mem.get(addr), self.mem.get(addr + 1)])
    }

    /// 32-bit load; MMIO windows take precedence.
    pub fn load32(&mut self, addr: u32) -> u32 {
        for d in &mut self.devices {
            if d.contains(addr) {
                return d.read32(addr);
            }
        }
        u32::from_le_bytes([
            self.mem.get(addr),
            self.mem.get(addr + 1),
            self.mem.get(addr + 2),
            self.mem.get(addr + 3),
        ])
    }

    /// 8-bit store.
    pub fn store8(&mut self, addr: u32, value: u8) {
        self.mem.set(addr, value);
    }

    /// 16-bit store (little endian).
    pub fn store16(&mut self, addr: u32, value: u16) {
        let b = value.to_le_bytes();
        self.mem.set(addr, b[0]);
        self.mem.set(addr + 1, b[1]);
    }

    /// 32-bit store; MMIO windows take precedence.
    pub fn store32(&mut self, addr: u32, value: u32) {
        for d in &mut self.devices {
            if d.contains(addr) {
                d.write32(addr, value);
                return;
            }
        }
        let b = value.to_le_bytes();
        self.mem.set(addr, b[0]);
        self.mem.set(addr + 1, b[1]);
        self.mem.set(addr + 2, b[2]);
        self.mem.set(addr + 3, b[3]);
    }
}

/// A simple mailbox device: every word written is recorded for the host to
/// drain. HALO's runtime uses mailboxes for switch programming and
/// stimulation commands.
#[derive(Debug, Default)]
pub struct Mailbox {
    base: u32,
    words: Vec<u32>,
}

impl Mailbox {
    /// Creates a mailbox with a one-word window at `base`.
    pub fn new(base: u32) -> Self {
        Self {
            base,
            words: Vec::new(),
        }
    }

    /// Drains everything written so far.
    pub fn drain(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.words)
    }

    /// Words currently queued.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing has been written since the last drain.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl MmioDevice for Mailbox {
    fn contains(&self, addr: u32) -> bool {
        addr == self.base
    }

    fn read32(&mut self, _addr: u32) -> u32 {
        self.words.len() as u32
    }

    fn write32(&mut self, _addr: u32, value: u32) {
        self.words.push(value);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_round_trip() {
        let mut bus = SystemBus::new(Memory::new(64));
        bus.store32(0, 0xdead_beef);
        assert_eq!(bus.load32(0), 0xdead_beef);
        assert_eq!(bus.load8(0), 0xef); // little endian
        assert_eq!(bus.load16(2), 0xdead);
        bus.store8(1, 0x00);
        assert_eq!(bus.load32(0), 0xdead_00ef);
    }

    #[test]
    fn out_of_range_reads_zero_writes_ignored() {
        let mut bus = SystemBus::new(Memory::new(4));
        bus.store32(100, 123);
        assert_eq!(bus.load32(100), 0);
    }

    #[test]
    fn mailbox_captures_writes() {
        let mut bus = SystemBus::new(Memory::new(64));
        bus.attach(Box::new(Mailbox::new(0x4000_0000)));
        bus.store32(0x4000_0000, 7);
        bus.store32(0x4000_0000, 9);
        assert_eq!(bus.load32(0x4000_0000), 2); // occupancy
                                                // RAM unaffected by device writes.
        assert_eq!(bus.load32(0), 0);
    }

    #[test]
    fn program_loading() {
        let mut bus = SystemBus::new(Memory::new(64));
        bus.load_program(8, &[1, 2, 3]);
        assert_eq!(bus.load32(8), 1);
        assert_eq!(bus.load32(12), 2);
        assert_eq!(bus.load32(16), 3);
    }
}
