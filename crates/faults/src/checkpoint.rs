//! Checkpoint/restore built on the binary-stable trace-log format.
//!
//! The simulator is deterministic, so a mid-run snapshot does not need
//! to serialize internal state: it records the *consumed input prefix*
//! plus the outputs produced so far (the same fields a
//! [`TraceLog`] stores). [`Checkpoint::restore`] rebuilds a fresh
//! system, re-drives the prefix, and proves byte-identity of every
//! output before handing the system back — the resumed run is
//! indistinguishable from one that never died.
//!
//! This is also how the chaos harness recovers from data-plane
//! corruption: the fault hook raises its typed error *before* the
//! damaged frame's samples are ingested, so the poisoned system's
//! outputs are still clean and [`Checkpoint::snapshot`] taken at the
//! point of failure names the exact resume frame.

use halo_core::{HaloConfig, HaloSystem, SystemError, Task};
use halo_telemetry::TraceLog;

/// Errors raised while restoring a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The checkpoint names a task this build does not know.
    UnknownTask(String),
    /// The supplied configuration does not fingerprint-match the
    /// snapshot-time configuration.
    ConfigMismatch {
        /// Fingerprint recorded in the checkpoint.
        expected: u64,
        /// Fingerprint of the configuration supplied for restore.
        got: u64,
    },
    /// The rebuilt fabric programmed different switch words.
    FabricMismatch,
    /// The rebuilt system failed to configure or stream.
    System(SystemError),
    /// Replaying the prefix did not reproduce the checkpointed outputs
    /// byte-for-byte — a determinism regression.
    Diverged {
        /// Which output diverged.
        what: &'static str,
    },
}

impl From<SystemError> for CheckpointError {
    fn from(e: SystemError) -> Self {
        Self::System(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownTask(label) => write!(f, "checkpoint names unknown task {label:?}"),
            Self::ConfigMismatch { expected, got } => write!(
                f,
                "config fingerprint {got:#018x} does not match checkpointed {expected:#018x}"
            ),
            Self::FabricMismatch => write!(f, "rebuilt fabric differs from checkpointed routes"),
            Self::System(e) => write!(f, "{e}"),
            Self::Diverged { what } => {
                write!(f, "restore replay diverged from checkpointed {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A restorable mid-run snapshot. Serialization is the trace-log text
/// format ([`Checkpoint::write`]/[`Checkpoint::read`]), so checkpoints
/// survive process death and travel as ordinary artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    log: TraceLog,
}

impl Checkpoint {
    /// Snapshots `system` mid-run. `consumed` must be exactly the
    /// frame-major samples the system has ingested so far (i.e.
    /// `frames() * channels` values); the outputs produced for that
    /// prefix are captured from the live runtime.
    pub fn snapshot(system: &HaloSystem, consumed: &[i16]) -> Self {
        debug_assert_eq!(
            consumed.len() as u64,
            system.runtime().frames() * system.config().channels as u64,
            "consumed slice must cover exactly the ingested frames"
        );
        Self {
            log: TraceLog {
                task: system.task().label().to_string(),
                config_fingerprint: system.config().fingerprint(),
                channels: system.config().channels as u32,
                sample_rate_hz: system.config().sample_rate_hz,
                switch_words: system.runtime().fabric().encoded_routes(),
                samples: consumed.to_vec(),
                radio: system.runtime().radio_stream().to_vec(),
                mcu_flags: system.runtime().mcu_flags().to_vec(),
                stim: Vec::new(),
            },
        }
    }

    /// The frame index execution resumes from.
    pub fn frame(&self) -> u64 {
        if self.log.channels == 0 {
            0
        } else {
            self.log.samples.len() as u64 / self.log.channels as u64
        }
    }

    /// The underlying trace log.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Serializes to the trace-log text format.
    pub fn write(&self) -> String {
        self.log.write()
    }

    /// Parses a serialized checkpoint.
    ///
    /// # Errors
    ///
    /// Returns the trace-log parser's message on malformed input.
    pub fn read(text: &str) -> Result<Self, String> {
        Ok(Self {
            log: TraceLog::read(text)?,
        })
    }

    /// Rebuilds a fresh system, replays the consumed prefix, and
    /// verifies every output byte-identically before returning the
    /// system, positioned at [`Checkpoint::frame`] and ready for the
    /// rest of the stream. `block_dispatch` sets the rebuilt runtime's
    /// quiet-frame batching — restore is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the configuration or fabric
    /// differs from snapshot time, the replay fails, or any replayed
    /// output diverges.
    pub fn restore(
        &self,
        config: HaloConfig,
        block_dispatch: bool,
    ) -> Result<HaloSystem, CheckpointError> {
        let task = Task::from_label(&self.log.task)
            .ok_or_else(|| CheckpointError::UnknownTask(self.log.task.clone()))?;
        let fingerprint = config.fingerprint();
        if fingerprint != self.log.config_fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                expected: self.log.config_fingerprint,
                got: fingerprint,
            });
        }
        let mut system = HaloSystem::new(task, config)?;
        if system.runtime().fabric().encoded_routes() != self.log.switch_words {
            return Err(CheckpointError::FabricMismatch);
        }
        system.set_block_dispatch(block_dispatch);
        system.push_block(&self.log.samples)?;
        if system.runtime().frames() != self.frame() {
            return Err(CheckpointError::Diverged {
                what: "frame count",
            });
        }
        if system.runtime().radio_stream() != self.log.radio {
            return Err(CheckpointError::Diverged {
                what: "radio stream",
            });
        }
        if system.runtime().mcu_flags() != self.log.mcu_flags {
            return Err(CheckpointError::Diverged { what: "mcu flags" });
        }
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_signal::{RecordingConfig, RegionProfile};

    fn recording(channels: usize, ms: usize, seed: u64) -> halo_signal::Recording {
        RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(ms)
            .generate(seed)
    }

    /// Snapshot mid-run, "die", restore, push the rest: outputs must be
    /// byte-identical to an uninterrupted run.
    #[test]
    fn snapshot_then_restore_resumes_byte_identically() {
        let config = HaloConfig::small_test(4).block_bytes(512);
        let rec = recording(4, 40, 21);
        let samples = rec.samples();

        let mut uninterrupted = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
        let expected = uninterrupted.process(&rec).unwrap();

        let mut first = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
        let cut = samples.len() / 2 - (samples.len() / 2) % 4;
        first.push_block(&samples[..cut]).unwrap();
        let ckpt = Checkpoint::snapshot(&first, &samples[..cut]);
        drop(first); // the run dies here

        let mut resumed = ckpt.restore(config, true).unwrap();
        resumed.push_block(&samples[cut..]).unwrap();
        let got = resumed.finalize().unwrap();
        assert_eq!(got.radio_stream, expected.radio_stream);
        assert_eq!(got.detections, expected.detections);
        assert_eq!(got.frames, expected.frames);
    }

    /// The serialized form round-trips and still restores.
    #[test]
    fn checkpoint_survives_serialization() {
        let config = HaloConfig::small_test(2);
        let rec = recording(2, 30, 5);
        let samples = rec.samples();
        let mut sys = HaloSystem::new(Task::EncryptRaw, config.clone()).unwrap();
        let cut = samples.len() / 2;
        sys.push_block(&samples[..cut]).unwrap();
        let ckpt = Checkpoint::snapshot(&sys, &samples[..cut]);

        let reread = Checkpoint::read(&ckpt.write()).unwrap();
        assert_eq!(reread, ckpt);
        let restored = reread.restore(config, true).unwrap();
        assert_eq!(restored.runtime().frames(), ckpt.frame());
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let config = HaloConfig::small_test(4);
        let rec = recording(4, 10, 2);
        let mut sys = HaloSystem::new(Task::CompressLz4, config).unwrap();
        sys.push_block(rec.samples()).unwrap();
        let ckpt = Checkpoint::snapshot(&sys, rec.samples());
        let other = HaloConfig::small_test(4).channels(2);
        assert!(matches!(
            ckpt.restore(other, true),
            Err(CheckpointError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn tampered_checkpoint_is_caught_at_restore() {
        let config = HaloConfig::small_test(2).block_bytes(256);
        let rec = recording(2, 20, 8);
        let mut sys = HaloSystem::new(Task::CompressLz4, config.clone()).unwrap();
        sys.push_block(rec.samples()).unwrap();
        let mut ckpt = Checkpoint::snapshot(&sys, rec.samples());
        assert!(!ckpt.log.radio.is_empty());
        ckpt.log.radio[0] ^= 0xFF;
        assert!(matches!(
            ckpt.restore(config, true),
            Err(CheckpointError::Diverged {
                what: "radio stream"
            })
        ));
    }
}
