//! The chaos harness: drives one device through a fault plan and
//! recovers it.
//!
//! A [`ChaosSession`] runs a [`FaultPlan`] against a stock pipeline and
//! exercises every recovery path the device has:
//!
//! * **Fabric faults** (rogue MMIO words, and faults targeting slots
//!   the current pipeline does not have) are repaired *in place*: the
//!   harness clears the switch matrix and reprograms the captured legal
//!   words through the ordinary MMIO path. No frames are lost.
//! * **Data-plane corruption** (FIFO parity, overflow pressure, PE
//!   residue errors) is recovered by **checkpoint/restore**: the
//!   integrity error fires before the damaged frame is ingested, so a
//!   [`Checkpoint`] taken at the failure names the exact resume point;
//!   restore proves byte-identity of all replayed outputs.
//! * **Radio losses** ride the ARQ link: drops and CRC-rejected frames
//!   retransmit with exponential backoff; exhausted retries mark the
//!   session degraded rather than silently losing data.
//! * **Brownouts** engage the [`DegradedSupervisor`]: when the shrunken
//!   budget cannot fit the primary pipeline, the device swaps to its
//!   registered low-power fallback through the reprogramming path and
//!   restores the primary once the envelope recovers.
//!
//! The verdict is strict: a session is [`Outcome::Recovered`] only if
//! its final outputs are byte-identical to a fault-free reference run;
//! any divergence without a degraded marker is an undetected corruption
//! and reported as [`Outcome::Dead`].

use std::sync::Arc;

use halo_core::runtime::{RuntimeError, ScheduledFault};
use halo_core::{
    ArqConfig, ArqCounters, ArqError, ArqLink, HaloConfig, HaloSystem, SystemError, Task,
};
use halo_noc::Fabric;
use halo_signal::{Recording, RecordingConfig, RegionProfile};
use halo_telemetry::{HealthConfig, HealthMonitor, Recorder};

use crate::channel::PlanChannel;
use crate::checkpoint::Checkpoint;
use crate::degraded::{DegradedSupervisor, SupervisorAction};
use crate::plan::{FaultPlan, FaultPlanConfig};

/// How a chaos session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every fault was recovered and the final outputs are byte-identical
    /// to the fault-free reference.
    Recovered,
    /// The session survived but carries a degraded marker: it ran the
    /// fallback pipeline during a brownout, or the radio link exhausted
    /// its retries.
    Degraded,
    /// The session could not recover, or its outputs silently diverged
    /// from the reference (an undetected corruption — never acceptable).
    Dead,
}

impl Outcome {
    /// Stable lower-case label for triage output.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Recovered => "recovered",
            Outcome::Degraded => "degraded",
            Outcome::Dead => "dead",
        }
    }
}

/// One successful recovery action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Global frame at which the fault surfaced.
    pub frame: u64,
    /// The detected fault's class label.
    pub kind: &'static str,
    /// Recovery strategy applied (`fabric_reprogram` or
    /// `checkpoint_restore`).
    pub strategy: &'static str,
    /// Time to recovery in frames: work redone to get back to the
    /// failure point (zero for in-place repairs).
    pub ttr_frames: u64,
}

/// Configuration for one chaos session.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The primary pipeline under test.
    pub task: Task,
    /// Low-power fallback used under brownout.
    pub fallback: Task,
    /// Electrode channels.
    pub channels: usize,
    /// Stream length in milliseconds of biological time.
    pub duration_ms: usize,
    /// Seed of the synthetic recording.
    pub recording_seed: u64,
    /// Frames per scheduler batch.
    pub batch_frames: usize,
    /// Whether the runtime's quiet-frame block dispatch is on.
    pub block_dispatch: bool,
    /// Raw bytes per compression block (smaller blocks frame radio
    /// traffic earlier, exercising the ARQ link mid-stream).
    pub block_bytes: usize,
    /// The fault plan parameters (`frames` and `pe_slots` are filled in
    /// by the harness from the recording and pipeline).
    pub plan: FaultPlanConfig,
    /// ARQ parameters for the radio link.
    pub arq: ArqConfig,
    /// Flight-recorder ring capacity.
    pub event_capacity: usize,
}

impl ChaosConfig {
    /// Sensible defaults for `task`: 4 channels, 40 ms stream, spike
    /// detection as the low-power fallback.
    pub fn new(task: Task) -> Self {
        let fallback = if task == Task::SpikeDetectNeo {
            Task::CompressLz4
        } else {
            Task::SpikeDetectNeo
        };
        Self {
            task,
            fallback,
            channels: 4,
            duration_ms: 40,
            recording_seed: 0xBC1,
            batch_frames: 32,
            block_dispatch: true,
            block_bytes: 1 << 14,
            plan: FaultPlanConfig::default(),
            arq: ArqConfig::default(),
            event_capacity: 256,
        }
    }
}

/// The result of one chaos session.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The primary pipeline.
    pub task: Task,
    /// The verdict.
    pub outcome: Outcome,
    /// Frames in the stream.
    pub frames: u64,
    /// Faults the runtime hook actually injected.
    pub faults_injected: usize,
    /// Injected faults that raised a typed integrity error (the rest
    /// landed on empty state and were physically harmless).
    pub faults_detected: usize,
    /// Every recovery performed, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Completed fallback episodes.
    pub degraded_episodes: u64,
    /// Frames spent in the fallback pipeline.
    pub degraded_frames: u64,
    /// Brownout windows whose shrunken budget was violated.
    pub brownout_violations: u64,
    /// Radio link counters (retries, giveups, CRC rejects, ...).
    pub arq: ArqCounters,
    /// Radio payload bytes offered to the link.
    pub radio_bytes: u64,
    /// Fingerprint of the injected plan (replay proof).
    pub plan_fingerprint: u64,
    /// Why the session is degraded or dead, if it is.
    pub reason: Option<String>,
    /// The flight recorder's post-mortem JSON, if one was latched.
    pub postmortem: Option<String>,
}

/// Classification of a runtime error surfaced during chaos.
enum FaultClass {
    /// Recoverable in place by reprogramming the fabric.
    Fabric(&'static str),
    /// Recoverable by checkpoint/restore.
    DataPlane(&'static str),
    /// Not a modeled fault — unrecoverable.
    Unknown,
}

fn classify(e: &RuntimeError) -> FaultClass {
    match e {
        RuntimeError::FifoParity { .. } => FaultClass::DataPlane("fifo_bit_flip"),
        RuntimeError::FifoOverflow { .. } => FaultClass::DataPlane("fifo_overflow"),
        RuntimeError::PeResidue { .. } => FaultClass::DataPlane("pe_output_corrupt"),
        RuntimeError::Fabric(_) => FaultClass::Fabric("rogue_mmio"),
        RuntimeError::NoSuchNode(_) => FaultClass::Fabric("no_such_node"),
        _ => FaultClass::Unknown,
    }
}

/// One seeded chaos run. Build with [`ChaosSession::new`], execute with
/// [`ChaosSession::run`]; the whole run is deterministic in its config.
#[derive(Debug, Clone)]
pub struct ChaosSession {
    config: ChaosConfig,
}

impl ChaosSession {
    /// A session for `config`.
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// The session's configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Runs the session to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] only for *setup* failures (the reference
    /// run or initial configuration); faults during the chaos run are
    /// recovered or reported through the [`ChaosReport`].
    pub fn run(&self) -> Result<ChaosReport, SystemError> {
        let cfg = &self.config;
        let halo_config = HaloConfig::small_test(cfg.channels).block_bytes(cfg.block_bytes);
        let recording = RecordingConfig::new(RegionProfile::arm())
            .channels(cfg.channels)
            .duration_ms(cfg.duration_ms)
            .generate(cfg.recording_seed);
        let total_frames = recording.samples_per_channel() as u64;

        let mut plan_cfg = cfg.plan.clone();
        plan_cfg.frames = total_frames;
        plan_cfg.pe_slots = cfg.task.pe_kinds().len() as u8;
        let mut plan = FaultPlan::generate(&plan_cfg);

        // Fault-free reference: the recovered session must reproduce
        // these outputs byte-for-byte.
        let mut reference_sys = HaloSystem::new(cfg.task, halo_config.clone())?;
        reference_sys.set_block_dispatch(cfg.block_dispatch);
        let reference = reference_sys.process(&recording)?;
        let primary_mw = reference_sys.power_report(&reference).device_mw();

        // Steady draw of the fallback, for brownout supervision.
        let fallback_mw = if plan.brownouts.is_empty() {
            0.0
        } else {
            let mut sys = HaloSystem::new(cfg.fallback, halo_config.clone())?;
            let metrics = sys.process(&recording)?;
            sys.power_report(&metrics).device_mw()
        };
        for w in &mut plan.brownouts {
            if w.budget_mw == 0.0 {
                // Auto budget: between the two pipelines' steady draw,
                // so the brownout forces the fallback and the fallback
                // fits.
                w.budget_mw = (primary_mw + fallback_mw) / 2.0;
            }
        }
        let plan_fingerprint = plan.fingerprint();
        let radio = plan.radio;

        let recorder = Arc::new(Recorder::new(cfg.event_capacity));
        let monitor = Arc::new(HealthMonitor::new(recorder, HealthConfig::default()));
        let mut system = HaloSystem::new(cfg.task, halo_config.clone())?;
        system.attach_health(monitor.clone());
        system.set_block_dispatch(cfg.block_dispatch);
        system.runtime_mut().attach_faults(plan.schedule.clone());

        let mut engine = Engine {
            cfg,
            halo_config,
            recording: &recording,
            total_frames,
            schedule_len: plan.schedule.len(),
            pending: plan.schedule.clone(),
            plan,
            legal_words: system.runtime().fabric().encoded_routes(),
            system,
            monitor,
            link: ArqLink::new(cfg.arq, PlanChannel::new(&radio)),
            supervisor: DegradedSupervisor::new(cfg.task, cfg.fallback),
            frame_base: 0,
            radio_offset: 0,
            offered: Vec::new(),
            delivered: Vec::new(),
            recoveries: Vec::new(),
            faults_detected: 0,
            dead: None,
            radio_lost: false,
            primary_mw,
            fallback_mw,
        };
        let metrics = engine.drive();
        Ok(engine.verdict(metrics, &reference, plan_fingerprint))
    }
}

/// Mutable state of one running chaos session.
struct Engine<'a> {
    cfg: &'a ChaosConfig,
    halo_config: HaloConfig,
    recording: &'a Recording,
    total_frames: u64,
    schedule_len: usize,
    /// Plan faults not yet injected, in global frame numbering.
    pending: Vec<ScheduledFault>,
    plan: FaultPlan,
    /// Switch words of the currently-running pipeline, for in-place
    /// fabric repair.
    legal_words: Vec<u32>,
    system: HaloSystem,
    monitor: Arc<HealthMonitor>,
    link: ArqLink<PlanChannel>,
    supervisor: DegradedSupervisor,
    /// Global frames completed before the current runtime epoch
    /// (non-zero after degraded-mode swaps).
    frame_base: u64,
    /// Bytes of the current epoch's radio stream already offered.
    radio_offset: usize,
    offered: Vec<u8>,
    delivered: Vec<u8>,
    recoveries: Vec<RecoveryEvent>,
    faults_detected: usize,
    dead: Option<String>,
    radio_lost: bool,
    primary_mw: f64,
    fallback_mw: f64,
}

impl Engine<'_> {
    fn global_frame(&self) -> u64 {
        self.frame_base + self.system.runtime().frames()
    }

    /// Drains plan faults the runtime has already injected from the
    /// pending list. Call only immediately before replacing the
    /// attached schedule (the runtime's cursor resets on attach).
    fn sync_pending(&mut self) {
        let fired = self.system.runtime().fault_cursor();
        self.pending.drain(..fired.min(self.pending.len()));
    }

    /// Attaches the pending faults to the current runtime, rebased to
    /// its local frame numbering.
    fn attach_pending(&mut self) {
        let base = self.frame_base;
        let rebased: Vec<ScheduledFault> = self
            .pending
            .iter()
            .map(|f| ScheduledFault {
                frame: f.frame.saturating_sub(base),
                action: f.action,
            })
            .collect();
        self.system.runtime_mut().attach_faults(rebased);
    }

    /// The main streaming loop, then finalize-with-recovery. Returns
    /// the final metrics unless the session died.
    fn drive(&mut self) -> Option<halo_core::TaskMetrics> {
        let channels = self.halo_config.channels;
        let samples = self.recording.samples();
        let recovery_budget = 2 * self.schedule_len + 8;
        while self.dead.is_none() {
            let global = self.global_frame();
            if global >= self.total_frames {
                break;
            }
            self.supervise(global);
            if self.dead.is_some() {
                break;
            }
            let end = (global + self.cfg.batch_frames as u64).min(self.total_frames);
            let lo = global as usize * channels;
            let hi = end as usize * channels;
            match self.system.push_block(&samples[lo..hi]) {
                Ok(()) => self.pump_radio(end),
                Err(SystemError::Runtime(e)) => {
                    self.recover(e);
                    if self.recoveries.len() > recovery_budget {
                        self.dead = Some("recovery loop did not converge".to_string());
                    }
                }
                Err(other) => self.dead = Some(other.to_string()),
            }
        }
        let metrics = self.finalize_with_recovery();
        self.flush_radio();
        self.supervisor.finish(self.total_frames);
        metrics
    }

    /// Degraded-mode supervision at a batch boundary.
    fn supervise(&mut self, global: u64) {
        let draw = if self.system.task() == self.cfg.task {
            self.primary_mw
        } else {
            self.fallback_mw
        };
        let window = self
            .plan
            .brownouts
            .iter()
            .find(|w| w.contains(global))
            .copied();
        match self.supervisor.evaluate(global, draw, window.as_ref()) {
            SupervisorAction::Stay => {}
            SupervisorAction::EnterFallback => self.swap_pipeline(self.cfg.fallback, global, true),
            SupervisorAction::RestorePrimary => self.swap_pipeline(self.cfg.task, global, false),
        }
    }

    /// Swaps the running pipeline through the ordinary reprogramming
    /// path, rebasing the pending fault schedule onto the new runtime.
    fn swap_pipeline(&mut self, task: Task, global: u64, entering: bool) {
        self.sync_pending();
        if let Err(e) = self.system.reconfigure(task) {
            self.dead = Some(format!("pipeline swap to {task:?} failed: {e}"));
            return;
        }
        self.system.set_block_dispatch(self.cfg.block_dispatch);
        self.frame_base = global;
        self.radio_offset = 0;
        self.legal_words = self.system.runtime().fabric().encoded_routes();
        self.attach_pending();
        if entering {
            self.supervisor.note_entered(global);
        } else {
            self.supervisor.note_restored(global);
        }
    }

    /// Recovers from a detected fault. The error fired before the
    /// damaged frame's samples were ingested, so `frames()` names the
    /// exact resume point in both recovery strategies.
    fn recover(&mut self, e: RuntimeError) {
        let fault_frame = self.global_frame();
        self.faults_detected += 1;
        match classify(&e) {
            FaultClass::Fabric(kind) => {
                // In-place repair: tear down whatever the rogue write
                // left behind and reprogram the captured legal words.
                let words = self.legal_words.clone();
                let fabric = self.system.runtime_mut().fabric_mut();
                let repaired = fabric
                    .program(Fabric::WORD_CLEAR)
                    .and_then(|()| words.iter().try_for_each(|&w| fabric.program(w)));
                match repaired {
                    Ok(()) => self.recoveries.push(RecoveryEvent {
                        frame: fault_frame,
                        kind,
                        strategy: "fabric_reprogram",
                        ttr_frames: 0,
                    }),
                    Err(fe) => self.dead = Some(format!("fabric repair failed: {fe}")),
                }
            }
            FaultClass::DataPlane(kind) => {
                self.sync_pending();
                let channels = self.halo_config.channels;
                let consumed = self.system.runtime().frames();
                let lo = self.frame_base as usize * channels;
                let hi = lo + consumed as usize * channels;
                let checkpoint =
                    Checkpoint::snapshot(&self.system, &self.recording.samples()[lo..hi]);
                match checkpoint.restore(self.halo_config.clone(), self.cfg.block_dispatch) {
                    Ok(fresh) => {
                        self.system = fresh;
                        self.system.attach_health(self.monitor.clone());
                        self.attach_pending();
                        self.recoveries.push(RecoveryEvent {
                            frame: fault_frame,
                            kind,
                            strategy: "checkpoint_restore",
                            ttr_frames: consumed,
                        });
                    }
                    Err(ce) => self.dead = Some(format!("checkpoint restore failed: {ce}")),
                }
            }
            FaultClass::Unknown => self.dead = Some(e.to_string()),
        }
    }

    /// Offers any new radio bytes to the ARQ link and advances it.
    fn pump_radio(&mut self, now: u64) {
        let stream = self.system.runtime().radio_stream();
        if stream.len() > self.radio_offset {
            let payload = stream[self.radio_offset..].to_vec();
            self.radio_offset = stream.len();
            self.offered.extend_from_slice(&payload);
            match self.link.offer(now, payload) {
                Ok(_) => {}
                Err(ArqError::QueueFull { .. }) => {
                    // The bounded queue is full: drain it, then this
                    // payload is unrecoverable — counted, never silent.
                    self.link.flush(now);
                    self.radio_lost = true;
                }
            }
        }
        self.link.tick(now);
        for (_seq, payload) in self.link.take_delivered() {
            self.delivered.extend_from_slice(&payload);
        }
    }

    /// End of stream: offer the tail, then retransmit until the queue
    /// drains or gives up.
    fn flush_radio(&mut self) {
        self.pump_radio(self.total_frames);
        self.link.flush(self.total_frames);
        for (_seq, payload) in self.link.take_delivered() {
            self.delivered.extend_from_slice(&payload);
        }
    }

    /// Finalizes the stream, recovering from faults that surface while
    /// draining (bounded attempts).
    fn finalize_with_recovery(&mut self) -> Option<halo_core::TaskMetrics> {
        for _ in 0..4 {
            if self.dead.is_some() {
                return None;
            }
            match self.system.finalize() {
                Ok(metrics) => return Some(metrics),
                Err(SystemError::Runtime(e)) => self.recover(e),
                Err(other) => self.dead = Some(other.to_string()),
            }
        }
        if self.dead.is_none() {
            self.dead = Some("finalize did not converge".to_string());
        }
        None
    }

    /// The strict verdict (see module docs).
    fn verdict(
        &mut self,
        metrics: Option<halo_core::TaskMetrics>,
        reference: &halo_core::TaskMetrics,
        plan_fingerprint: u64,
    ) -> ChaosReport {
        let arq = self.link.counters();
        let faults_injected = self.schedule_len
            - (self
                .pending
                .len()
                .saturating_sub(self.system.runtime().fault_cursor()));
        let (outcome, reason) = match (&self.dead, metrics.as_ref()) {
            (Some(reason), _) => (Outcome::Dead, Some(reason.clone())),
            (None, None) => (Outcome::Dead, Some("no final metrics".to_string())),
            (None, Some(m)) => {
                if self.supervisor.ever_degraded() {
                    (Outcome::Degraded, Some("brownout fallback".to_string()))
                } else if arq.giveups > 0 || self.radio_lost {
                    (
                        Outcome::Degraded,
                        Some("radio link exhausted retries".to_string()),
                    )
                } else if self.delivered != self.offered {
                    (
                        Outcome::Dead,
                        Some("ARQ delivery diverged without giveups".to_string()),
                    )
                } else if m.radio_stream == reference.radio_stream
                    && m.detections == reference.detections
                {
                    (Outcome::Recovered, None)
                } else {
                    (
                        Outcome::Dead,
                        Some("undetected corruption: outputs diverged from reference".to_string()),
                    )
                }
            }
        };
        ChaosReport {
            task: self.cfg.task,
            outcome,
            frames: self.total_frames,
            faults_injected,
            faults_detected: self.faults_detected,
            recoveries: std::mem::take(&mut self.recoveries),
            degraded_episodes: self.supervisor.episodes(),
            degraded_frames: self.supervisor.degraded_frames(),
            brownout_violations: self.supervisor.violations(),
            arq,
            radio_bytes: self.offered.len() as u64,
            plan_fingerprint,
            reason,
            postmortem: self.monitor.postmortem(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(task: Task) -> ChaosConfig {
        let mut cfg = ChaosConfig::new(task);
        cfg.block_bytes = 512;
        cfg.plan.data_faults = 4;
        cfg.plan.rogue_mmio = 2;
        cfg.plan.link_faults = 1;
        cfg.plan.radio_drop_permille = 250;
        cfg.plan.radio_corrupt_permille = 120;
        cfg
    }

    #[test]
    fn compression_pipeline_recovers_from_full_plan() {
        let report = ChaosSession::new(base_config(Task::CompressLzma))
            .run()
            .unwrap();
        assert_eq!(
            report.outcome,
            Outcome::Recovered,
            "reason: {:?}",
            report.reason
        );
        assert!(report.faults_injected >= 6);
        // The rogue MMIO words are always detected; some data-plane
        // faults land on live FIFOs and force checkpoint restores.
        assert!(report.faults_detected >= 2, "report: {report:?}");
        assert!(report
            .recoveries
            .iter()
            .any(|r| r.strategy == "fabric_reprogram"));
        assert!(report.arq.retries > 0, "lossy channel must retry");
        assert_eq!(report.arq.giveups, 0);
        assert!(report.postmortem.is_some(), "faults latch a post-mortem");
    }

    #[test]
    fn chaos_session_is_deterministic() {
        let cfg = base_config(Task::CompressLz4);
        let a = ChaosSession::new(cfg.clone()).run().unwrap();
        let b = ChaosSession::new(cfg).run().unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.plan_fingerprint, b.plan_fingerprint);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.arq, b.arq);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.faults_detected, b.faults_detected);
    }

    #[test]
    fn brownout_forces_fallback_and_marks_degraded() {
        let mut cfg = base_config(Task::SeizurePrediction);
        cfg.plan.data_faults = 0;
        cfg.plan.rogue_mmio = 0;
        cfg.plan.link_faults = 0;
        cfg.plan.radio_drop_permille = 0;
        cfg.plan.radio_corrupt_permille = 0;
        cfg.plan.brownouts = 1;
        cfg.plan.brownout_frames = 400;
        cfg.duration_ms = 60;
        let report = ChaosSession::new(cfg).run().unwrap();
        assert_eq!(
            report.outcome,
            Outcome::Degraded,
            "reason: {:?}",
            report.reason
        );
        assert!(report.degraded_episodes >= 1);
        assert!(report.degraded_frames > 0);
        assert!(report.brownout_violations >= 1);
    }

    #[test]
    fn faultless_plan_is_recovered_with_clean_counters() {
        let mut cfg = ChaosConfig::new(Task::EncryptRaw);
        cfg.plan.data_faults = 0;
        cfg.plan.rogue_mmio = 0;
        cfg.plan.link_faults = 0;
        cfg.plan.radio_drop_permille = 0;
        cfg.plan.radio_corrupt_permille = 0;
        let report = ChaosSession::new(cfg).run().unwrap();
        assert_eq!(report.outcome, Outcome::Recovered);
        assert!(report.recoveries.is_empty());
        assert_eq!(report.arq.retries, 0);
        assert_eq!(report.faults_injected, 0);
    }
}
