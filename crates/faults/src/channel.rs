//! Plan-driven lossy radio channel for the ARQ layer.

use halo_core::{ArqChannel, ChannelVerdict};
use halo_signal::SimRng;

use crate::plan::RadioPlan;

/// An [`ArqChannel`] whose losses are drawn from a seeded RNG stream:
/// every data or ack transmission independently rolls drop, then
/// corruption, then clean delivery one frame later. Deterministic — the
/// verdict sequence depends only on the plan seed and the order of
/// transmissions, so a replayed run sees the exact same losses.
#[derive(Debug, Clone)]
pub struct PlanChannel {
    rng: SimRng,
    drop_permille: u64,
    corrupt_permille: u64,
    /// One-way latency of the modeled link, frames.
    latency_frames: u64,
}

impl PlanChannel {
    /// A channel following `plan`.
    pub fn new(plan: &RadioPlan) -> Self {
        Self {
            rng: SimRng::new(plan.seed),
            drop_permille: plan.drop_permille as u64,
            corrupt_permille: plan.corrupt_permille as u64,
            latency_frames: 1,
        }
    }

    fn roll(&mut self, now: u64) -> ChannelVerdict {
        let roll = self.rng.range_u64(0, 1000);
        if roll < self.drop_permille {
            ChannelVerdict::Drop
        } else if roll < self.drop_permille + self.corrupt_permille {
            ChannelVerdict::DeliverCorrupted {
                at_frame: now + self.latency_frames,
            }
        } else {
            ChannelVerdict::Deliver {
                at_frame: now + self.latency_frames,
            }
        }
    }
}

impl ArqChannel for PlanChannel {
    fn data_verdict(&mut self, now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
        self.roll(now)
    }

    fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
        self.roll(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdicts(plan: &RadioPlan, n: usize) -> Vec<ChannelVerdict> {
        let mut ch = PlanChannel::new(plan);
        (0..n)
            .map(|i| ch.data_verdict(i as u64, i as u32, 0))
            .collect()
    }

    #[test]
    fn same_plan_same_verdicts() {
        let plan = RadioPlan {
            seed: 42,
            drop_permille: 200,
            corrupt_permille: 100,
        };
        assert_eq!(verdicts(&plan, 256), verdicts(&plan, 256));
    }

    #[test]
    fn loss_rates_roughly_match_plan() {
        let plan = RadioPlan {
            seed: 9,
            drop_permille: 250,
            corrupt_permille: 250,
        };
        let vs = verdicts(&plan, 4000);
        let drops = vs
            .iter()
            .filter(|v| matches!(v, ChannelVerdict::Drop))
            .count();
        let corrupt = vs
            .iter()
            .filter(|v| matches!(v, ChannelVerdict::DeliverCorrupted { .. }))
            .count();
        // 25% each, loose 4-sigma-ish bounds.
        assert!((800..1200).contains(&drops), "drops = {drops}");
        assert!((800..1200).contains(&corrupt), "corrupt = {corrupt}");
    }

    #[test]
    fn lossless_plan_always_delivers() {
        let plan = RadioPlan {
            seed: 1,
            drop_permille: 0,
            corrupt_permille: 0,
        };
        assert!(verdicts(&plan, 100)
            .iter()
            .all(|v| matches!(v, ChannelVerdict::Deliver { .. })));
    }
}
