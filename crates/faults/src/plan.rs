//! Seeded, declarative fault plans.
//!
//! A [`FaultPlan`] is everything a chaos run injects, generated
//! bit-for-bit reproducibly from one seed: a sorted schedule of
//! [`ScheduledFault`]s for the runtime hook, a set of
//! [`BrownoutWindow`]s that temporarily shrink the power budget, and a
//! [`RadioPlan`] parameterizing the lossy ARQ channel. The same
//! [`FaultPlanConfig`] always produces the same plan, so a campaign can
//! be replayed exactly from its seed alone; [`FaultPlan::fingerprint`]
//! hashes the whole plan so triage output can prove it.

use halo_core::runtime::{FaultAction, ScheduledFault};
use halo_noc::{Fabric, NodeId, Route};
use halo_signal::SimRng;

/// Parameters for [`FaultPlan::generate`]. Counts are totals over the
/// whole run; frames are sample-frame indices into the stream.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// Seed for the plan's private RNG stream.
    pub seed: u64,
    /// Stream length in frames; injected fault frames land in
    /// `1..frames` so every fault fires before the stream ends.
    pub frames: u64,
    /// Number of PE slots in the target pipeline (fault targets are
    /// drawn from `0..pe_slots`).
    pub pe_slots: u8,
    /// Data-plane faults: FIFO bit flips, FIFO overflow pressure, and
    /// transient PE output corruption, drawn uniformly.
    pub data_faults: u32,
    /// Rogue MMIO switch words (well-formed but routing off the array).
    pub rogue_mmio: u32,
    /// NoC link degradations (extra stall cycles on one link).
    pub link_faults: u32,
    /// Power brownouts (temporary budget shrink).
    pub brownouts: u32,
    /// Length of each brownout window, frames.
    pub brownout_frames: u64,
    /// Shrunken budget during a brownout, mW. `0.0` means "auto": the
    /// harness replaces it with the midpoint between the primary and
    /// fallback pipelines' steady draw, guaranteeing the brownout bites.
    pub brownout_budget_mw: f64,
    /// Per-transmission radio drop probability, in permille.
    pub radio_drop_permille: u32,
    /// Per-transmission radio corruption probability, in permille.
    pub radio_corrupt_permille: u32,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_FA17,
            frames: 1024,
            pe_slots: 3,
            data_faults: 3,
            rogue_mmio: 1,
            link_faults: 1,
            brownouts: 0,
            brownout_frames: 256,
            brownout_budget_mw: 0.0,
            radio_drop_permille: 80,
            radio_corrupt_permille: 40,
        }
    }
}

/// A temporary power-budget shrink: between `start_frame` (inclusive)
/// and `end_frame` (exclusive) the device must fit in `budget_mw`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutWindow {
    /// First frame of the brownout.
    pub start_frame: u64,
    /// First frame after the brownout.
    pub end_frame: u64,
    /// The shrunken whole-device budget, mW.
    pub budget_mw: f64,
}

impl BrownoutWindow {
    /// Whether `frame` falls inside this window.
    pub fn contains(&self, frame: u64) -> bool {
        frame >= self.start_frame && frame < self.end_frame
    }
}

/// Seeded loss model for the radio channel (see
/// [`PlanChannel`](crate::PlanChannel)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadioPlan {
    /// Seed for the channel's private RNG stream.
    pub seed: u64,
    /// Per-transmission drop probability, permille.
    pub drop_permille: u32,
    /// Per-transmission corruption probability, permille.
    pub corrupt_permille: u32,
}

/// A fully materialized chaos plan. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Runtime-hook faults, sorted by frame.
    pub schedule: Vec<ScheduledFault>,
    /// Brownout windows, sorted and non-overlapping.
    pub brownouts: Vec<BrownoutWindow>,
    /// The radio loss model.
    pub radio: RadioPlan,
}

impl FaultPlan {
    /// Generates the plan for `config`. Deterministic: the same config
    /// always yields the same plan, independent of host or build.
    pub fn generate(config: &FaultPlanConfig) -> Self {
        let mut rng = SimRng::new(config.seed);
        let horizon = config.frames.max(2);
        let mut schedule = Vec::new();
        for _ in 0..config.data_faults {
            let frame = rng.range_u64(1, horizon);
            let slot = rng.range_u64(0, config.pe_slots.max(1) as u64) as usize;
            let action = match rng.range_u64(0, 3) {
                0 => FaultAction::FifoBitFlip {
                    slot,
                    bit: rng.range_u64(0, 64) as u32,
                },
                1 => FaultAction::FifoOverflow { slot },
                _ => FaultAction::PeOutputCorrupt {
                    slot,
                    bit: rng.range_u64(0, 64) as u32,
                },
            };
            schedule.push(ScheduledFault { frame, action });
        }
        for _ in 0..config.rogue_mmio {
            let frame = rng.range_u64(1, horizon);
            schedule.push(ScheduledFault {
                frame,
                action: FaultAction::RogueMmio {
                    word: rogue_word(&mut rng),
                },
            });
        }
        for _ in 0..config.link_faults {
            let frame = rng.range_u64(1, horizon);
            let n = config.pe_slots.max(2) as u64;
            let to = rng.range_u64(0, n) as usize;
            let from = (to + 1) % n as usize;
            schedule.push(ScheduledFault {
                frame,
                action: FaultAction::LinkDegrade {
                    from: NodeId(from),
                    to: NodeId(to),
                    stall_cycles: rng.range_u64(100, 10_000),
                },
            });
        }
        schedule.sort_by_key(|f| f.frame);

        // Brownouts are spaced evenly and never overlap: window i is
        // centered in the i-th of `brownouts` equal segments.
        let mut brownouts = Vec::new();
        let n = config.brownouts as u64;
        for i in 0..n {
            let seg = horizon / n.max(1);
            let start = i * seg + seg / 4;
            let end = (start + config.brownout_frames).min((i + 1) * seg);
            if end > start {
                brownouts.push(BrownoutWindow {
                    start_frame: start,
                    end_frame: end,
                    budget_mw: config.brownout_budget_mw,
                });
            }
        }

        Self {
            schedule,
            brownouts,
            radio: RadioPlan {
                seed: rng.next_u64(),
                drop_permille: config.radio_drop_permille.min(1000),
                corrupt_permille: config.radio_corrupt_permille.min(1000),
            },
        }
    }

    /// FNV-1a hash of every scheduled fault, brownout window, and radio
    /// parameter. Two plans with equal fingerprints injected the exact
    /// same chaos — triage JSON records this so a replayed campaign can
    /// prove bit-identical scheduling.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for f in &self.schedule {
            h.write(f.frame);
            h.write(fault_code(&f.action));
            h.write(f.action.slot() as u64);
            h.write(f.action.detail());
        }
        for w in &self.brownouts {
            h.write(w.start_frame);
            h.write(w.end_frame);
            h.write(w.budget_mw.to_bits());
        }
        h.write(self.radio.seed);
        h.write(self.radio.drop_permille as u64);
        h.write(self.radio.corrupt_permille as u64);
        h.finish()
    }
}

/// A well-formed switch word routing node 0 to a node far beyond any
/// installed PE array: the fabric's MMIO path accepts it, and the
/// immediate re-validation against the PE array rejects it — exactly the
/// failure a corrupted controller write produces.
fn rogue_word(rng: &mut SimRng) -> u32 {
    let to = 0xE0 + rng.range_u64(0, 16) as usize;
    Fabric::encode_route(Route {
        from: NodeId(0),
        to: NodeId(to),
        to_port: 0,
    })
}

/// Stable per-class code for fingerprinting (labels are stable too, but
/// a fixed code keeps the hash independent of label spelling).
fn fault_code(action: &FaultAction) -> u64 {
    match action {
        FaultAction::FifoBitFlip { .. } => 1,
        FaultAction::FifoOverflow { .. } => 2,
        FaultAction::PeOutputCorrupt { .. } => 3,
        FaultAction::LinkDegrade { .. } => 4,
        FaultAction::RogueMmio { .. } => 5,
    }
}

/// Minimal FNV-1a accumulator over `u64` words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let config = FaultPlanConfig {
            brownouts: 2,
            ..FaultPlanConfig::default()
        };
        let a = FaultPlan::generate(&config);
        let b = FaultPlan::generate(&config);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.brownouts, b.brownouts);
        assert_eq!(a.radio, b.radio);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seed_different_plan() {
        let a = FaultPlan::generate(&FaultPlanConfig::default());
        let b = FaultPlan::generate(&FaultPlanConfig {
            seed: 99,
            ..FaultPlanConfig::default()
        });
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn schedule_is_sorted_and_in_horizon() {
        let config = FaultPlanConfig {
            data_faults: 16,
            rogue_mmio: 4,
            link_faults: 4,
            frames: 500,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&config);
        assert_eq!(plan.schedule.len(), 24);
        let frames: Vec<u64> = plan.schedule.iter().map(|f| f.frame).collect();
        let mut sorted = frames.clone();
        sorted.sort_unstable();
        assert_eq!(frames, sorted);
        assert!(frames.iter().all(|&f| (1..500).contains(&f)));
    }

    #[test]
    fn brownout_windows_do_not_overlap() {
        let config = FaultPlanConfig {
            brownouts: 3,
            brownout_frames: 100,
            frames: 900,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&config);
        assert_eq!(plan.brownouts.len(), 3);
        for pair in plan.brownouts.windows(2) {
            assert!(pair[0].end_frame <= pair[1].start_frame);
        }
    }

    #[test]
    fn rogue_words_are_well_formed_but_off_array() {
        let mut rng = SimRng::new(7);
        for _ in 0..32 {
            let word = rogue_word(&mut rng);
            let mut fabric = Fabric::new();
            fabric.program(word).expect("rogue word must program");
            let to = fabric.routes()[0].to;
            assert!(to.0 >= 0xE0, "rogue target {to} must be off-array");
        }
    }
}
