//! Deterministic fault injection and automated recovery for HALO.
//!
//! An implant that only works when nothing goes wrong is a prototype.
//! This crate chaos-tests the modeled device end to end, from radio
//! bit-flips to fleet-wide brownouts, with every injection seeded and
//! replayable bit-for-bit:
//!
//! * [`plan`] — [`FaultPlan`] generates a declarative, seeded schedule
//!   of runtime faults (FIFO bit flips and overflow pressure, transient
//!   PE output corruption, NoC link degradation, rogue MMIO switch
//!   words), brownout windows, and a radio loss model from one seed.
//! * [`channel`] — [`PlanChannel`] turns the radio loss model into an
//!   [`ArqChannel`](halo_core::ArqChannel) for the core ARQ link:
//!   sequence numbers, CRC-16, bounded retransmission with exponential
//!   backoff.
//! * [`checkpoint`] — [`Checkpoint`] snapshots a run mid-flight on the
//!   binary-stable trace-log format and restores it byte-identically.
//! * [`degraded`] — [`DegradedSupervisor`] swaps to a registered
//!   low-power fallback pipeline when a brownout shrinks the budget,
//!   and restores the primary when the envelope recovers.
//! * [`harness`] — [`ChaosSession`] drives one device through a plan,
//!   applies the matching recovery per fault class, and renders the
//!   strict verdict: recovered (byte-identical to a fault-free
//!   reference), degraded (marked), or dead (never acceptable).
//!
//! The runtime half of the machinery — the zero-cost-when-disabled
//! fault hook, typed integrity errors, and the `EventKind::Fault`
//! telemetry — lives in `halo-core`/`halo-telemetry`; this crate is the
//! chaos driver on top. Fleet-scale campaigns live in `halo-fleet`.

pub mod channel;
pub mod checkpoint;
pub mod degraded;
pub mod harness;
pub mod plan;

pub use channel::PlanChannel;
pub use checkpoint::{Checkpoint, CheckpointError};
pub use degraded::{DegradedSupervisor, SupervisorAction};
pub use harness::{ChaosConfig, ChaosReport, ChaosSession, Outcome, RecoveryEvent};
pub use plan::{BrownoutWindow, FaultPlan, FaultPlanConfig, RadioPlan};
