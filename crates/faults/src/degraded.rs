//! Degraded-mode supervision: automatic fallback under brownout.
//!
//! When a [`BrownoutWindow`] shrinks the power budget below what the
//! primary pipeline draws, the [`DegradedSupervisor`] asks the harness
//! to swap to a registered low-power fallback pipeline through the
//! ordinary runtime-reprogramming path, and to restore the primary once
//! the envelope recovers. Budget judgment is recorded through
//! [`BudgetTracker`], the same sliding-window machinery the health
//! monitor uses, so a campaign reports exactly which windows violated
//! the shrunken budget.

use halo_core::Task;
use halo_power::BudgetTracker;

use crate::plan::BrownoutWindow;

/// What the supervisor wants the harness to do at this frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorAction {
    /// Keep running as-is.
    Stay,
    /// Swap to the fallback pipeline (budget violated under brownout).
    EnterFallback,
    /// Restore the primary pipeline (the envelope recovered).
    RestorePrimary,
}

/// Tracks brownout windows and decides pipeline swaps. The supervisor
/// is advisory: it returns [`SupervisorAction`]s and the harness
/// performs the actual reprogramming, confirming transitions back via
/// [`DegradedSupervisor::note_entered`]/[`DegradedSupervisor::note_restored`].
#[derive(Debug)]
pub struct DegradedSupervisor {
    primary: Task,
    fallback: Task,
    active: bool,
    ever_degraded: bool,
    episodes: u64,
    entered_at: Option<u64>,
    degraded_frames: u64,
    tracker: Option<BudgetTracker>,
    violations: u64,
}

impl DegradedSupervisor {
    /// A supervisor swapping `primary` for `fallback` under pressure.
    pub fn new(primary: Task, fallback: Task) -> Self {
        Self {
            primary,
            fallback,
            active: false,
            ever_degraded: false,
            episodes: 0,
            entered_at: None,
            degraded_frames: 0,
            tracker: None,
            violations: 0,
        }
    }

    /// The low-power fallback pipeline.
    pub fn fallback(&self) -> Task {
        self.fallback
    }

    /// The primary pipeline.
    pub fn primary(&self) -> Task {
        self.primary
    }

    /// Evaluates the envelope at `frame`: `draw_mw` is the device's
    /// current steady draw, `window` the active brownout (if any).
    /// Samples are fed to a per-window [`BudgetTracker`]; a draw above
    /// the shrunken budget demands the fallback, and the end of the
    /// window demands restoration.
    pub fn evaluate(
        &mut self,
        frame: u64,
        draw_mw: f64,
        window: Option<&BrownoutWindow>,
    ) -> SupervisorAction {
        match window {
            Some(w) => {
                let tracker = self
                    .tracker
                    .get_or_insert_with(|| BudgetTracker::new(w.budget_mw));
                tracker.add_sample(frame, draw_mw);
                if draw_mw > w.budget_mw && !self.active {
                    SupervisorAction::EnterFallback
                } else {
                    SupervisorAction::Stay
                }
            }
            None => {
                if let Some(mut tracker) = self.tracker.take() {
                    self.violations += tracker.finish();
                }
                if self.active {
                    SupervisorAction::RestorePrimary
                } else {
                    SupervisorAction::Stay
                }
            }
        }
    }

    /// The harness confirms it swapped to the fallback at `frame`.
    pub fn note_entered(&mut self, frame: u64) {
        self.active = true;
        self.ever_degraded = true;
        self.episodes += 1;
        self.entered_at = Some(frame);
    }

    /// The harness confirms it restored the primary at `frame`.
    pub fn note_restored(&mut self, frame: u64) {
        self.active = false;
        if let Some(entered) = self.entered_at.take() {
            self.degraded_frames += frame.saturating_sub(entered);
        }
    }

    /// Closes the books at end of stream (`frame` = final frame).
    pub fn finish(&mut self, frame: u64) {
        if let Some(mut tracker) = self.tracker.take() {
            self.violations += tracker.finish();
        }
        if self.active {
            if let Some(entered) = self.entered_at.take() {
                self.degraded_frames += frame.saturating_sub(entered);
            }
        }
    }

    /// Whether the device is currently running the fallback.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Whether the run was ever degraded.
    pub fn ever_degraded(&self) -> bool {
        self.ever_degraded
    }

    /// Completed fallback episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Total frames spent in the fallback pipeline.
    pub fn degraded_frames(&self) -> u64 {
        self.degraded_frames
    }

    /// Brownout-budget windows that were violated (as judged by the
    /// per-window [`BudgetTracker`]s).
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u64, end: u64, budget: f64) -> BrownoutWindow {
        BrownoutWindow {
            start_frame: start,
            end_frame: end,
            budget_mw: budget,
        }
    }

    #[test]
    fn enters_fallback_when_draw_exceeds_shrunken_budget() {
        let mut sup = DegradedSupervisor::new(Task::SeizurePrediction, Task::SpikeDetectNeo);
        let w = window(100, 200, 8.0);
        assert_eq!(sup.evaluate(50, 12.0, None), SupervisorAction::Stay);
        assert_eq!(
            sup.evaluate(100, 12.0, Some(&w)),
            SupervisorAction::EnterFallback
        );
        sup.note_entered(100);
        // Fallback draws under the shrunken budget: stay degraded.
        assert_eq!(sup.evaluate(150, 5.0, Some(&w)), SupervisorAction::Stay);
        // Window over: restore.
        assert_eq!(
            sup.evaluate(200, 5.0, None),
            SupervisorAction::RestorePrimary
        );
        sup.note_restored(200);
        assert!(!sup.active());
        assert!(sup.ever_degraded());
        assert_eq!(sup.episodes(), 1);
        assert_eq!(sup.degraded_frames(), 100);
        sup.finish(300);
        assert!(sup.violations() >= 1);
    }

    #[test]
    fn fitting_draw_never_degrades() {
        let mut sup = DegradedSupervisor::new(Task::CompressLz4, Task::SpikeDetectNeo);
        let w = window(0, 100, 10.0);
        for frame in [0, 32, 64, 96] {
            assert_eq!(sup.evaluate(frame, 6.0, Some(&w)), SupervisorAction::Stay);
        }
        assert_eq!(sup.evaluate(128, 6.0, None), SupervisorAction::Stay);
        sup.finish(256);
        assert!(!sup.ever_degraded());
        assert_eq!(sup.violations(), 0);
        assert_eq!(sup.degraded_frames(), 0);
    }

    #[test]
    fn still_active_at_end_of_stream_counts_frames() {
        let mut sup = DegradedSupervisor::new(Task::MovementIntent, Task::SpikeDetectNeo);
        let w = window(0, 1000, 4.0);
        assert_eq!(
            sup.evaluate(10, 9.0, Some(&w)),
            SupervisorAction::EnterFallback
        );
        sup.note_entered(10);
        sup.finish(110);
        assert_eq!(sup.degraded_frames(), 100);
        assert!(sup.ever_degraded());
    }
}
