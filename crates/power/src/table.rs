//! Table IV anchors: per-PE frequency, power, and area from the paper's
//! 28nm synthesis, at the nominal 46 Mbps processing rate.

use halo_pe::PeKind;

/// One Table IV row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeAnchor {
    /// Operating frequency sustaining 46 Mbps, in MHz.
    pub freq_mhz: f64,
    /// Logic leakage power, mW.
    pub logic_leak_mw: f64,
    /// Logic dynamic power, mW.
    pub logic_dyn_mw: f64,
    /// Memory leakage power, mW.
    pub mem_leak_mw: f64,
    /// Memory dynamic power, mW.
    pub mem_dyn_mw: f64,
    /// Area in kilo-gate equivalents.
    pub area_kge: u32,
    /// Private memory capacity implied by the Table III configuration, in
    /// bytes (used to scale memory power across configurations).
    pub mem_bytes: usize,
}

impl PeAnchor {
    /// Total power at the anchor point, mW.
    pub fn total_mw(&self) -> f64 {
        self.logic_leak_mw + self.logic_dyn_mw + self.mem_leak_mw + self.mem_dyn_mw
    }
}

/// The Table IV anchor for a PE kind.
///
/// The interleaver has no dedicated row in Table IV (the paper folds it
/// into the "NoC+interleaver" overhead of Figure 5); its anchor here is the
/// memory-dominated estimate used by that overhead line.
pub fn pe_anchor(kind: PeKind) -> PeAnchor {
    match kind {
        PeKind::Lz => PeAnchor {
            freq_mhz: 129.0,
            logic_leak_mw: 0.055,
            logic_dyn_mw: 1.455,
            mem_leak_mw: 0.095,
            mem_dyn_mw: 1.466,
            area_kge: 55,
            mem_bytes: 24 * 1024,
        },
        PeKind::Lic => PeAnchor {
            freq_mhz: 22.5,
            logic_leak_mw: 0.057,
            logic_dyn_mw: 0.267,
            mem_leak_mw: 0.006,
            mem_dyn_mw: 0.046,
            area_kge: 25,
            mem_bytes: 256,
        },
        PeKind::Ma => PeAnchor {
            freq_mhz: 92.0,
            logic_leak_mw: 0.127,
            logic_dyn_mw: 2.148,
            mem_leak_mw: 0.067,
            mem_dyn_mw: 0.997,
            area_kge: 66,
            mem_bytes: 16_640, // 16.25 KB
        },
        PeKind::Rc => PeAnchor {
            freq_mhz: 90.0,
            logic_leak_mw: 0.029,
            logic_dyn_mw: 0.763,
            mem_leak_mw: 0.0,
            mem_dyn_mw: 0.0,
            area_kge: 12,
            mem_bytes: 0,
        },
        PeKind::Dwt => PeAnchor {
            freq_mhz: 3.0,
            logic_leak_mw: 0.004,
            logic_dyn_mw: 0.002,
            mem_leak_mw: 0.0,
            mem_dyn_mw: 0.0,
            area_kge: 2,
            mem_bytes: 0,
        },
        PeKind::Neo => PeAnchor {
            freq_mhz: 3.0,
            logic_leak_mw: 0.012,
            logic_dyn_mw: 0.003,
            mem_leak_mw: 0.0,
            mem_dyn_mw: 0.0,
            area_kge: 5,
            mem_bytes: 0,
        },
        PeKind::Fft => PeAnchor {
            freq_mhz: 15.7,
            logic_leak_mw: 0.057,
            logic_dyn_mw: 0.509,
            mem_leak_mw: 0.085,
            mem_dyn_mw: 0.356,
            area_kge: 22,
            mem_bytes: 12 * 1024,
        },
        PeKind::Xcor => PeAnchor {
            freq_mhz: 85.0,
            logic_leak_mw: 0.07,
            logic_dyn_mw: 4.182,
            mem_leak_mw: 0.307,
            mem_dyn_mw: 0.053,
            area_kge: 81,
            mem_bytes: 64 * 1024,
        },
        PeKind::Bbf => PeAnchor {
            freq_mhz: 6.0,
            logic_leak_mw: 0.066,
            logic_dyn_mw: 0.034,
            mem_leak_mw: 0.0,
            mem_dyn_mw: 0.0,
            area_kge: 23,
            mem_bytes: 0,
        },
        PeKind::Svm => PeAnchor {
            freq_mhz: 3.0,
            logic_leak_mw: 0.018,
            logic_dyn_mw: 0.018,
            mem_leak_mw: 0.081,
            mem_dyn_mw: 0.033,
            area_kge: 8,
            mem_bytes: 20_000, // 5000 x 32-bit weights
        },
        PeKind::Thr => PeAnchor {
            freq_mhz: 16.0,
            logic_leak_mw: 0.002,
            logic_dyn_mw: 0.011,
            mem_leak_mw: 0.0,
            mem_dyn_mw: 0.0,
            area_kge: 1,
            mem_bytes: 0,
        },
        PeKind::Gate => PeAnchor {
            freq_mhz: 5.0,
            logic_leak_mw: 0.003,
            logic_dyn_mw: 0.006,
            mem_leak_mw: 0.067,
            mem_dyn_mw: 0.054,
            area_kge: 17,
            mem_bytes: 16 * 1024,
        },
        PeKind::Aes => PeAnchor {
            freq_mhz: 5.0,
            logic_leak_mw: 0.053,
            logic_dyn_mw: 0.059,
            mem_leak_mw: 0.0,
            mem_dyn_mw: 0.0,
            area_kge: 34,
            mem_bytes: 0,
        },
        PeKind::Interleaver => PeAnchor {
            freq_mhz: 3.0,
            logic_leak_mw: 0.002,
            logic_dyn_mw: 0.01,
            mem_leak_mw: 0.09,
            mem_dyn_mw: 0.05,
            area_kge: 4,
            mem_bytes: 96 * 128 * 2,
        },
    }
}

/// The Table IV RISC-V controller row: Ibex at 25 MHz with 64 KB, 1.8 mW
/// total, 70 KGE.
pub fn controller_anchor() -> PeAnchor {
    PeAnchor {
        freq_mhz: 25.0,
        logic_leak_mw: 0.341,
        logic_dyn_mw: 0.137,
        mem_leak_mw: 0.248,
        mem_dyn_mw: 1.080,
        area_kge: 70,
        mem_bytes: 64 * 1024,
    }
}

/// The Table IV row for the *combined* MA+RC block in the DWTMA pipeline
/// (the paper reports DWTMA's pipeline total as 3.415 mW with a smaller MA
/// memory than the LZMA-mode MA).
pub fn dwtma_ma_anchor() -> PeAnchor {
    PeAnchor {
        freq_mhz: 92.0,
        logic_leak_mw: 0.127,
        logic_dyn_mw: 2.148,
        mem_leak_mw: 0.0083,
        mem_dyn_mw: 0.33,
        area_kge: 66,
        mem_bytes: 100, // two 25-class tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_sums_match_paper_task_rows() {
        // Table IV task rows that are exact sums of their PE rows.
        let sum =
            |kinds: &[PeKind]| -> f64 { kinds.iter().map(|&k| pe_anchor(k).total_mw()).sum() };
        let close = |a: f64, b: f64| (a - b).abs() < 0.005;
        assert!(close(sum(&[PeKind::Lz, PeKind::Lic]), 3.447), "LZ4");
        assert!(close(sum(&[PeKind::Neo, PeKind::Gate, PeKind::Thr]), 0.158));
        assert!(close(sum(&[PeKind::Dwt, PeKind::Gate, PeKind::Thr]), 0.149));
        assert!(close(
            sum(&[
                PeKind::Fft,
                PeKind::Xcor,
                PeKind::Bbf,
                PeKind::Svm,
                PeKind::Thr,
                PeKind::Gate
            ]),
            6.012
        ));
        assert!(close(sum(&[PeKind::Aes]), 0.112));
        assert!(close(sum(&[PeKind::Fft, PeKind::Thr, PeKind::Gate]), 1.15));
        // LZMA's paper row (7.162) is the PE sum within rounding slack.
        let lzma = sum(&[PeKind::Lz, PeKind::Ma, PeKind::Rc]);
        assert!((lzma - 7.162).abs() < 0.05, "LZMA {lzma}");
    }

    #[test]
    fn dwtma_row_matches_paper() {
        let total = pe_anchor(PeKind::Dwt).total_mw()
            + dwtma_ma_anchor().total_mw()
            + pe_anchor(PeKind::Rc).total_mw();
        assert!((total - 3.415).abs() < 0.01, "DWTMA {total}");
    }

    #[test]
    fn controller_matches_paper() {
        let c = controller_anchor();
        assert!((c.total_mw() - 1.806).abs() < 0.01);
        assert_eq!(c.area_kge, 70);
    }

    #[test]
    fn every_kind_has_an_anchor() {
        for kind in PeKind::all() {
            let a = pe_anchor(kind);
            assert!(a.freq_mhz > 0.0, "{kind}");
            assert!(a.total_mw() > 0.0, "{kind}");
        }
    }

    #[test]
    fn xcor_is_the_power_hog() {
        // §IV-A: XCOR's complex computation dominates seizure prediction.
        let xcor = pe_anchor(PeKind::Xcor).total_mw();
        for kind in PeKind::all() {
            assert!(pe_anchor(kind).total_mw() <= xcor, "{kind}");
        }
    }
}
