//! The Figure 4 comparison points: all-software RISC-V arrays and
//! monolithic per-task ASICs.

use crate::model::PePower;
use crate::table::{controller_anchor, pe_anchor};
use halo_pe::PeKind;
use halo_riscv::multicore::CORE_SWEEP;

/// A feasible software design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareConfig {
    /// Core count.
    pub cores: usize,
    /// Per-core clock, MHz.
    pub core_mhz: f64,
    /// Total processing power, mW.
    pub power_mw: f64,
}

/// The all-software baseline: the task runs on 1–64 Ibex cores with the 96
/// channel streams partitioned across them (§VI-A).
///
/// Cores are the taped-out 25 MHz design scaled with
/// voltage-and-frequency: dynamic power ∝ f·V², leakage ∝ V, with
/// V(f) = 0.7 + 0.3·(f/25 MHz) clamped to 1.2 (mild overdrive allowed,
/// at quadratic cost). This is why the paper's per-task best
/// configurations land at different core counts: more cores lower the
/// per-core frequency and voltage (cubic dynamic savings) but pay linear
/// leakage.
///
/// # Example
///
/// ```
/// use halo_power::SoftwareBaseline;
/// // NEO-style spike detection at ~25 cycles/byte over 5.76 MB/s.
/// let sw = SoftwareBaseline::new(25.0);
/// let best = sw.best(5_760_000.0).expect("feasible");
/// assert!(best.power_mw > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareBaseline {
    cycles_per_byte: f64,
}

/// Maximum per-core frequency the overdriven Ibex supports, MHz.
pub const MAX_CORE_MHZ: f64 = 50.0;

const ANCHOR_MHZ: f64 = 25.0;
const V_ANCHOR: f64 = 1.0;

fn voltage(f_mhz: f64) -> f64 {
    (0.7 + 0.3 * (f_mhz / ANCHOR_MHZ)).clamp(0.7, 1.2)
}

impl SoftwareBaseline {
    /// Creates a baseline for a kernel costing `cycles_per_byte` on Ibex.
    ///
    /// # Panics
    ///
    /// Panics unless `cycles_per_byte` is positive.
    pub fn new(cycles_per_byte: f64) -> Self {
        assert!(cycles_per_byte > 0.0, "cycle cost must be positive");
        Self { cycles_per_byte }
    }

    /// The configured cycle cost.
    pub fn cycles_per_byte(&self) -> f64 {
        self.cycles_per_byte
    }

    /// Power of an `n`-core partitioning at `bytes_per_second`, or `None`
    /// if the per-core frequency exceeds [`MAX_CORE_MHZ`].
    pub fn power_at(&self, cores: usize, bytes_per_second: f64) -> Option<SoftwareConfig> {
        assert!(cores > 0, "need at least one core");
        let total_mhz = self.cycles_per_byte * bytes_per_second / 1e6;
        let core_mhz = total_mhz / cores as f64;
        if core_mhz > MAX_CORE_MHZ {
            return None;
        }
        let a = controller_anchor();
        let v = voltage(core_mhz);
        let leak = (a.logic_leak_mw + a.mem_leak_mw) * (v / V_ANCHOR);
        let dyn_anchor = a.logic_dyn_mw + a.mem_dyn_mw;
        let dyn_mw = dyn_anchor * (core_mhz / ANCHOR_MHZ) * (v / V_ANCHOR).powi(2);
        let power_mw = cores as f64 * (leak + dyn_mw);
        Some(SoftwareConfig {
            cores,
            core_mhz,
            power_mw,
        })
    }

    /// The lowest-power feasible configuration over the paper's 1–64
    /// power-of-two sweep, or `None` if even 64 cores cannot sustain the
    /// rate.
    pub fn best(&self, bytes_per_second: f64) -> Option<SoftwareConfig> {
        CORE_SWEEP
            .iter()
            .filter_map(|&n| self.power_at(n, bytes_per_second))
            .min_by(|a, b| a.power_mw.total_cmp(&b.power_mw))
    }
}

/// The monolithic per-task ASIC baseline (§I, §VI-A): one fused accelerator
/// per task, in a single clock domain, *without* HALO's co-design
/// optimizations.
///
/// Two penalties relative to HALO's PE array:
///
/// * **Single clock domain** — every kernel's logic clocks at the fastest
///   constituent's frequency instead of its own minimum (§IV's central
///   claim), inflating dynamic power by `f_max / f_kernel`.
/// * **No co-design** — the Figure 6 ladders run in reverse: spatial
///   reprogramming (2.2× on XCOR, 1.5× on LZ), the MA/RC locality split
///   (2×), initialization circuits (1.8×), pipelining and precision
///   trimming (1.2–1.6×) are all absent.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonolithicAsic;

impl MonolithicAsic {
    /// The Figure 6-derived inflation factor for a kernel implemented
    /// without HALO's co-design techniques.
    pub fn unoptimized_factor(kind: PeKind) -> f64 {
        match kind {
            // Figure 6 left: 13 mW initial vs 4.6 mW final.
            PeKind::Xcor => 2.8,
            // §IV-B: spatial reprogramming alone buys 1.5x on LZ.
            PeKind::Lz => 1.5,
            // Figure 3 / Figure 6 right: unsplit MA + no counter
            // saturation + standalone init phase.
            PeKind::Ma => 2.0,
            // §IV-B: 32-bit instead of 16-bit integers in RC costs 1.6x.
            PeKind::Rc => 1.6,
            // Generic loss of pipelining/precision tuning elsewhere.
            _ => 1.2,
        }
    }

    /// Power of the fused ASIC implementing `kinds` as one block.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    pub fn power(kinds: &[PeKind]) -> PePower {
        assert!(!kinds.is_empty(), "a task needs at least one kernel");
        let f_max = kinds
            .iter()
            .map(|&k| pe_anchor(k).freq_mhz)
            .fold(0.0f64, f64::max);
        let mut total = PePower::default();
        for &kind in kinds {
            let a = pe_anchor(kind);
            let factor = Self::unoptimized_factor(kind) * (f_max / a.freq_mhz);
            let p = PePower {
                logic_leak_mw: a.logic_leak_mw,
                logic_dyn_mw: a.logic_dyn_mw * factor,
                mem_leak_mw: a.mem_leak_mw,
                mem_dyn_mw: a.mem_dyn_mw * factor,
            };
            total = total.add(&p);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RATE: f64 = 5_760_000.0; // 46 Mbps in bytes/s

    #[test]
    fn infeasible_rates_return_none() {
        let sw = SoftwareBaseline::new(10_000.0); // absurd kernel
        assert!(sw.best(RATE).is_none());
        assert!(sw.power_at(64, RATE).is_none());
    }

    #[test]
    fn best_balances_leakage_and_voltage() {
        let sw = SoftwareBaseline::new(100.0); // 576 MHz aggregate
        let best = sw.best(RATE).expect("feasible at >=16 cores");
        // All feasible configs cost at least the best.
        for n in CORE_SWEEP {
            if let Some(c) = sw.power_at(n, RATE) {
                assert!(c.power_mw >= best.power_mw - 1e-12, "n={n}");
            }
        }
        assert!(best.cores >= 16, "576 MHz needs at least 12 cores");
    }

    #[test]
    fn software_is_multiples_of_halo() {
        // LZMA-style: ~250 cycles/byte in software vs 7.2 mW on HALO PEs.
        let sw = SoftwareBaseline::new(250.0).best(RATE).expect("feasible");
        let ratio = sw.power_mw / 7.162;
        assert!(ratio > 4.0, "software/HALO ratio {ratio} (paper: 4-57x)");
    }

    #[test]
    fn monolithic_asic_is_about_twice_halo() {
        let halo: f64 = [PeKind::Lz, PeKind::Ma, PeKind::Rc]
            .iter()
            .map(|&k| pe_anchor(k).total_mw())
            .sum();
        let asic = MonolithicAsic::power(&[PeKind::Lz, PeKind::Ma, PeKind::Rc]).total_mw();
        let ratio = asic / halo;
        assert!(
            (1.7..=3.0).contains(&ratio),
            "ASIC/HALO ratio {ratio} (paper: ~2x)"
        );
        // And it breaks the processing budget once the radio is added
        // ("monolithic ASICs exceed the 15mW power budget in many cases").
        assert!(asic + 4.6 > crate::budget::PROCESSING_BUDGET_MW);
    }

    #[test]
    fn single_domain_penalizes_slow_kernels() {
        // BBF alone at 6 MHz vs fused with XCOR at 85 MHz.
        let alone = MonolithicAsic::power(&[PeKind::Bbf]).total_mw();
        let fused = MonolithicAsic::power(&[PeKind::Bbf, PeKind::Xcor]).total_mw()
            - MonolithicAsic::power(&[PeKind::Xcor]).total_mw();
        assert!(fused > 2.0 * alone, "fused {fused} vs alone {alone}");
    }

    #[test]
    fn voltage_model_clamps() {
        assert!((voltage(0.1) - 0.7012).abs() < 1e-9);
        assert_eq!(voltage(1000.0), 1.2);
        assert!((voltage(25.0) - 1.0).abs() < 1e-12);
    }
}
