//! Scaling rules around the Table IV anchors.

use crate::table::{pe_anchor, PeAnchor};
use halo_pe::PeKind;

/// SRAM leakage per KB at the modeled corner, derived from the LZ anchor
/// (0.095 mW for 24 KB).
pub const SRAM_LEAK_MW_PER_KB: f64 = 0.095 / 24.0;

/// A power breakdown in the Table IV format.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PePower {
    /// Logic leakage, mW.
    pub logic_leak_mw: f64,
    /// Logic dynamic, mW.
    pub logic_dyn_mw: f64,
    /// Memory leakage, mW.
    pub mem_leak_mw: f64,
    /// Memory dynamic, mW.
    pub mem_dyn_mw: f64,
}

impl PePower {
    /// Total power, mW.
    pub fn total_mw(&self) -> f64 {
        self.logic_leak_mw + self.logic_dyn_mw + self.mem_leak_mw + self.mem_dyn_mw
    }

    /// Component-wise sum.
    pub fn add(&self, other: &PePower) -> PePower {
        PePower {
            logic_leak_mw: self.logic_leak_mw + other.logic_leak_mw,
            logic_dyn_mw: self.logic_dyn_mw + other.logic_dyn_mw,
            mem_leak_mw: self.mem_leak_mw + other.mem_leak_mw,
            mem_dyn_mw: self.mem_dyn_mw + other.mem_dyn_mw,
        }
    }

    /// Scales every component (e.g. for N copies).
    pub fn scaled(&self, factor: f64) -> PePower {
        PePower {
            logic_leak_mw: self.logic_leak_mw * factor,
            logic_dyn_mw: self.logic_dyn_mw * factor,
            mem_leak_mw: self.mem_leak_mw * factor,
            mem_dyn_mw: self.mem_dyn_mw * factor,
        }
    }
}

impl From<PeAnchor> for PePower {
    fn from(a: PeAnchor) -> Self {
        PePower {
            logic_leak_mw: a.logic_leak_mw,
            logic_dyn_mw: a.logic_dyn_mw,
            mem_leak_mw: a.mem_leak_mw,
            mem_dyn_mw: a.mem_dyn_mw,
        }
    }
}

/// A PE's power at an operating point scaled from its anchor.
///
/// * Logic dynamic power scales with clock frequency and activity.
/// * Logic leakage is constant (the logic is not power-gated mid-task).
/// * Memory leakage scales with the configured capacity — §IV-C: "we
///   power-gate unused memory banks".
/// * Memory dynamic power scales with frequency/activity and capacity.
///
/// # Example
///
/// ```
/// use halo_power::PePowerModel;
/// use halo_pe::PeKind;
/// let at_anchor = PePowerModel::new(PeKind::Lz).power();
/// let half_rate = PePowerModel::new(PeKind::Lz).freq_scale(0.5).power();
/// assert!(half_rate.total_mw() < at_anchor.total_mw());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PePowerModel {
    anchor: PeAnchor,
    freq_scale: f64,
    mem_scale: f64,
    activity: f64,
}

impl PePowerModel {
    /// Starts from a kind's Table IV anchor.
    pub fn new(kind: PeKind) -> Self {
        Self::from_anchor(pe_anchor(kind))
    }

    /// Starts from an explicit anchor row.
    pub fn from_anchor(anchor: PeAnchor) -> Self {
        Self {
            anchor,
            freq_scale: 1.0,
            mem_scale: 1.0,
            activity: 1.0,
        }
    }

    /// Scales the clock frequency relative to the anchor.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn freq_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "bad frequency scale");
        self.freq_scale = scale;
        self
    }

    /// Sets the configured memory capacity; leakage and dynamic memory
    /// power scale as `bytes / anchor_bytes` (anchors with no memory are
    /// unaffected).
    pub fn mem_bytes(mut self, bytes: usize) -> Self {
        if self.anchor.mem_bytes > 0 {
            self.mem_scale = bytes as f64 / self.anchor.mem_bytes as f64;
        }
        self
    }

    /// Sets the switching-activity factor relative to the anchor.
    ///
    /// # Panics
    ///
    /// Panics unless `activity` is non-negative and finite.
    pub fn activity(mut self, activity: f64) -> Self {
        assert!(activity >= 0.0 && activity.is_finite(), "bad activity");
        self.activity = activity;
        self
    }

    /// The operating frequency at this point, MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.anchor.freq_mhz * self.freq_scale
    }

    /// Evaluates the model.
    pub fn power(&self) -> PePower {
        PePower {
            logic_leak_mw: self.anchor.logic_leak_mw,
            logic_dyn_mw: self.anchor.logic_dyn_mw * self.freq_scale * self.activity,
            mem_leak_mw: self.anchor.mem_leak_mw * self.mem_scale,
            mem_dyn_mw: self.anchor.mem_dyn_mw * self.freq_scale * self.activity * self.mem_scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_point_reproduces_table_iv() {
        for kind in PeKind::all() {
            let p = PePowerModel::new(kind).power();
            let a = pe_anchor(kind);
            assert!((p.total_mw() - a.total_mw()).abs() < 1e-12, "{kind}");
        }
    }

    #[test]
    fn dynamic_power_scales_with_frequency() {
        let p1 = PePowerModel::new(PeKind::Ma).power();
        let p2 = PePowerModel::new(PeKind::Ma).freq_scale(2.0).power();
        assert!((p2.logic_dyn_mw - 2.0 * p1.logic_dyn_mw).abs() < 1e-12);
        assert_eq!(p2.logic_leak_mw, p1.logic_leak_mw); // leakage constant
    }

    #[test]
    fn memory_power_scales_with_capacity() {
        let full = PePowerModel::new(PeKind::Lz).power();
        let quarter = PePowerModel::new(PeKind::Lz).mem_bytes(6 * 1024).power();
        assert!((quarter.mem_leak_mw - full.mem_leak_mw / 4.0).abs() < 1e-12);
    }

    #[test]
    fn memoryless_pes_ignore_capacity() {
        let p = PePowerModel::new(PeKind::Neo).mem_bytes(1 << 20).power();
        assert_eq!(p.mem_leak_mw, 0.0);
    }

    #[test]
    fn idle_pe_burns_only_leakage() {
        let p = PePowerModel::new(PeKind::Xcor).activity(0.0).power();
        assert_eq!(p.logic_dyn_mw, 0.0);
        assert_eq!(p.mem_dyn_mw, 0.0);
        assert!(p.logic_leak_mw > 0.0);
    }

    #[test]
    fn power_breakdown_arithmetic() {
        let a = PePower {
            logic_leak_mw: 1.0,
            logic_dyn_mw: 2.0,
            mem_leak_mw: 3.0,
            mem_dyn_mw: 4.0,
        };
        assert_eq!(a.total_mw(), 10.0);
        assert_eq!(a.add(&a).total_mw(), 20.0);
        assert_eq!(a.scaled(0.5).total_mw(), 5.0);
    }
}
