//! Interconnect power: the circuit-switched fabric vs the rejected
//! packet-switched mesh.

/// Leakage per kilo-gate-equivalent at the modeled corner, derived from the
/// THR anchor (1 KGE, 0.002 mW leakage).
const LEAK_MW_PER_KGE: f64 = 0.002;

/// Gate cost of one programmable switch point — §V-B cites prior GALS
/// interconnects at ~0.55 KGE.
const SWITCH_KGE: f64 = 0.55;

/// Wire/handshake energy per byte moved on the asynchronous 8-bit bus, in
/// picojoules (short on-chip hops at 28nm).
const BUS_PJ_PER_BYTE: f64 = 0.5;

/// Power of the configured circuit-switched fabric.
///
/// §V-B bounds the interconnect and switches at <300 µW for full
/// configurations (including the interleaver's buffer, which is accounted
/// separately as a PE); this model stays well inside that bound.
///
/// # Example
///
/// ```
/// use halo_power::circuit_switched_power_mw;
/// // A large configuration: 20 switches moving the full 5.76 MB/s stream.
/// let p = circuit_switched_power_mw(20, 5_760_000.0);
/// assert!(p < 0.3, "fabric must stay under the paper's 300 uW bound");
/// ```
pub fn circuit_switched_power_mw(switches: usize, bytes_per_second: f64) -> f64 {
    let leak = switches as f64 * SWITCH_KGE * LEAK_MW_PER_KGE;
    let dynamic = bytes_per_second * BUS_PJ_PER_BYTE * 1e-9;
    leak + dynamic
}

/// DSENT-calibrated estimate of the packet-switched mesh the paper
/// rejected: "a simple packet-switched mesh network consumes over 50 mW"
/// (§IV-D) for the PE-array geometry.
///
/// Routers dominate: a 28nm 5-port mesh router with buffers runs ~3 mW of
/// leakage-plus-clock each; flit traversal energy adds on top.
pub fn packet_mesh_power_mw(nodes: usize, bytes_per_second: f64) -> f64 {
    const ROUTER_MW: f64 = 3.2;
    const MESH_PJ_PER_BYTE_HOP: f64 = 8.0;
    let mean_hops = (nodes as f64).sqrt(); // mesh average
    nodes as f64 * ROUTER_MW + bytes_per_second * MESH_PJ_PER_BYTE_HOP * mean_hops * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_fabric_is_under_300_microwatts() {
        // Worst realistic case: every PE slot switched, full stream rate
        // passing through several hops.
        let p = circuit_switched_power_mw(32, 4.0 * 5_760_000.0);
        assert!(p < 0.3, "{p} mW");
    }

    #[test]
    fn packet_mesh_blows_the_budget() {
        // The 16-node mesh of the PE array at the full stream rate.
        let p = packet_mesh_power_mw(16, 5_760_000.0);
        assert!(p > 50.0, "{p} mW should exceed 50 mW (DSENT estimate)");
    }

    #[test]
    fn circuit_power_scales_with_traffic_and_switches() {
        let a = circuit_switched_power_mw(4, 1e6);
        let b = circuit_switched_power_mw(8, 1e6);
        let c = circuit_switched_power_mw(4, 2e6);
        assert!(b > a);
        assert!(c > a);
    }
}
