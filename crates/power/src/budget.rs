//! Power budgets and the safety comparator.

/// Whole-device budget: "implantable BCIs must not dissipate more than
/// 15-40 mW … we consider a strict power budget of 15 mW" (§I, §V-A).
pub const DEVICE_BUDGET_MW: f64 = 15.0;

/// Processing budget: 3 mW is reserved for amplifiers and ADCs, so "all of
/// HALO's processing pipelines, including the radio, must consume no more
/// than 12 mW" (§V-A).
pub const PROCESSING_BUDGET_MW: f64 = 12.0;

/// The ultra-low-power Vdd comparator of §IV-E: "on overshoot, this
/// circuit interrupts the micro-controller, allowing it to shut off PEs to
/// reduce overall power."
///
/// # Example
///
/// ```
/// use halo_power::{VddComparator, PROCESSING_BUDGET_MW};
/// let mut cmp = VddComparator::new(PROCESSING_BUDGET_MW);
/// assert!(!cmp.sample(11.0));
/// assert!(cmp.sample(12.5)); // overshoot raises the interrupt
/// assert!(cmp.interrupt_pending());
/// cmp.acknowledge();
/// assert!(!cmp.interrupt_pending());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VddComparator {
    threshold_mw: f64,
    pending: bool,
    trips: u64,
}

impl VddComparator {
    /// Creates a comparator with the given trip threshold.
    ///
    /// # Panics
    ///
    /// Panics unless the threshold is positive.
    pub fn new(threshold_mw: f64) -> Self {
        assert!(threshold_mw > 0.0, "threshold must be positive");
        Self {
            threshold_mw,
            pending: false,
            trips: 0,
        }
    }

    /// The trip threshold, mW.
    pub fn threshold_mw(&self) -> f64 {
        self.threshold_mw
    }

    /// Samples the supply; returns `true` (and latches the interrupt) on
    /// overshoot.
    pub fn sample(&mut self, power_mw: f64) -> bool {
        if power_mw > self.threshold_mw {
            self.pending = true;
            self.trips += 1;
            true
        } else {
            false
        }
    }

    /// Whether an interrupt is latched for the micro-controller.
    pub fn interrupt_pending(&self) -> bool {
        self.pending
    }

    /// Clears the latched interrupt (controller handled the overshoot).
    pub fn acknowledge(&mut self) {
        self.pending = false;
    }

    /// Total overshoot events observed.
    pub fn trip_count(&self) -> u64 {
        self.trips
    }
}

/// Sliding-window budget evaluation: sums per-domain samples into
/// fixed-duration windows and compares each completed window against a
/// budget. This is the software model of what the [`VddComparator`] does
/// in analog — instead of instantaneous supply overshoot it judges the
/// windowed average the telemetry layer actually observes.
///
/// # Example
///
/// ```
/// use halo_power::{BudgetTracker, DEVICE_BUDGET_MW};
/// let mut t = BudgetTracker::new(DEVICE_BUDGET_MW);
/// t.add_sample(0, 9.0);
/// t.add_sample(0, 5.0);   // window at frame 0 totals 14 mW: under
/// t.add_sample(300, 16.5); // window at frame 300: over budget
/// assert_eq!(t.finish(), 1); // violations
/// assert_eq!(t.worst_window(), Some((300, 16.5)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BudgetTracker {
    budget_mw: f64,
    window: Option<(u64, f64)>,
    worst: Option<(u64, f64)>,
    windows: u64,
    violations: u64,
}

impl BudgetTracker {
    /// A tracker judging windows against `budget_mw`.
    pub fn new(budget_mw: f64) -> Self {
        Self {
            budget_mw,
            ..Self::default()
        }
    }

    /// The budget windows are judged against, mW.
    pub fn budget_mw(&self) -> f64 {
        self.budget_mw
    }

    /// Adds one domain's power sample to the window at `frame`. Samples
    /// sharing a frame stamp belong to the same window; a new frame
    /// closes (and judges) the previous window.
    pub fn add_sample(&mut self, frame: u64, milliwatts: f64) {
        match &mut self.window {
            Some((f, mw)) if *f == frame => *mw += milliwatts,
            _ => {
                self.close_window();
                self.window = Some((frame, milliwatts));
            }
        }
    }

    fn close_window(&mut self) {
        if let Some(done) = self.window.take() {
            self.windows += 1;
            if done.1 > self.budget_mw {
                self.violations += 1;
            }
            if self.worst.is_none_or(|(_, w)| done.1 > w) {
                self.worst = Some(done);
            }
        }
    }

    /// Closes the in-flight window and returns the total violation count.
    pub fn finish(&mut self) -> u64 {
        self.close_window();
        self.violations
    }

    /// Completed windows evaluated so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Completed windows that exceeded the budget.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Worst completed window: `(frame, milliwatts)`.
    pub fn worst_window(&self) -> Option<(u64, f64)> {
        self.worst
    }

    /// Headroom of the worst completed window as a fraction of the budget
    /// (negative once the budget has been violated).
    pub fn headroom_fraction(&self) -> Option<f64> {
        let (_, worst) = self.worst?;
        Some((self.budget_mw - worst) / self.budget_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_paper() {
        assert_eq!(DEVICE_BUDGET_MW, 15.0);
        assert_eq!(PROCESSING_BUDGET_MW, 12.0);
    }

    #[test]
    fn tracker_judges_windows_by_frame_stamp() {
        let mut t = BudgetTracker::new(15.0);
        // Three windows: 14, 16, 10 mW.
        t.add_sample(0, 8.0);
        t.add_sample(0, 6.0);
        t.add_sample(300, 9.0);
        t.add_sample(300, 7.0);
        t.add_sample(600, 10.0);
        assert_eq!(t.finish(), 1);
        assert_eq!(t.windows(), 3);
        assert_eq!(t.worst_window(), Some((300, 16.0)));
        let headroom = t.headroom_fraction().unwrap();
        assert!(headroom < 0.0, "violation must show negative headroom");
        assert!((headroom - (15.0 - 16.0) / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_has_no_worst_window() {
        let mut t = BudgetTracker::new(15.0);
        assert_eq!(t.finish(), 0);
        assert_eq!(t.worst_window(), None);
        assert_eq!(t.headroom_fraction(), None);
    }

    #[test]
    fn interrupt_latches_until_acknowledged() {
        let mut cmp = VddComparator::new(10.0);
        assert!(!cmp.sample(10.0)); // boundary is not an overshoot
        assert!(cmp.sample(10.1));
        assert!(!cmp.sample(5.0)); // back under, but still latched
        assert!(cmp.interrupt_pending());
        cmp.acknowledge();
        assert!(!cmp.interrupt_pending());
        assert_eq!(cmp.trip_count(), 1);
    }
}
