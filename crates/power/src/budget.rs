//! Power budgets and the safety comparator.

/// Whole-device budget: "implantable BCIs must not dissipate more than
/// 15-40 mW … we consider a strict power budget of 15 mW" (§I, §V-A).
pub const DEVICE_BUDGET_MW: f64 = 15.0;

/// Processing budget: 3 mW is reserved for amplifiers and ADCs, so "all of
/// HALO's processing pipelines, including the radio, must consume no more
/// than 12 mW" (§V-A).
pub const PROCESSING_BUDGET_MW: f64 = 12.0;

/// The ultra-low-power Vdd comparator of §IV-E: "on overshoot, this
/// circuit interrupts the micro-controller, allowing it to shut off PEs to
/// reduce overall power."
///
/// # Example
///
/// ```
/// use halo_power::{VddComparator, PROCESSING_BUDGET_MW};
/// let mut cmp = VddComparator::new(PROCESSING_BUDGET_MW);
/// assert!(!cmp.sample(11.0));
/// assert!(cmp.sample(12.5)); // overshoot raises the interrupt
/// assert!(cmp.interrupt_pending());
/// cmp.acknowledge();
/// assert!(!cmp.interrupt_pending());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VddComparator {
    threshold_mw: f64,
    pending: bool,
    trips: u64,
}

impl VddComparator {
    /// Creates a comparator with the given trip threshold.
    ///
    /// # Panics
    ///
    /// Panics unless the threshold is positive.
    pub fn new(threshold_mw: f64) -> Self {
        assert!(threshold_mw > 0.0, "threshold must be positive");
        Self {
            threshold_mw,
            pending: false,
            trips: 0,
        }
    }

    /// The trip threshold, mW.
    pub fn threshold_mw(&self) -> f64 {
        self.threshold_mw
    }

    /// Samples the supply; returns `true` (and latches the interrupt) on
    /// overshoot.
    pub fn sample(&mut self, power_mw: f64) -> bool {
        if power_mw > self.threshold_mw {
            self.pending = true;
            self.trips += 1;
            true
        } else {
            false
        }
    }

    /// Whether an interrupt is latched for the micro-controller.
    pub fn interrupt_pending(&self) -> bool {
        self.pending
    }

    /// Clears the latched interrupt (controller handled the overshoot).
    pub fn acknowledge(&mut self) {
        self.pending = false;
    }

    /// Total overshoot events observed.
    pub fn trip_count(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_paper() {
        assert_eq!(DEVICE_BUDGET_MW, 15.0);
        assert_eq!(PROCESSING_BUDGET_MW, 12.0);
    }

    #[test]
    fn interrupt_latches_until_acknowledged() {
        let mut cmp = VddComparator::new(10.0);
        assert!(!cmp.sample(10.0)); // boundary is not an overshoot
        assert!(cmp.sample(10.1));
        assert!(!cmp.sample(5.0)); // back under, but still latched
        assert!(cmp.interrupt_pending());
        cmp.acknowledge();
        assert!(!cmp.interrupt_pending());
        assert_eq!(cmp.trip_count(), 1);
    }
}
