//! Radio power: 200 pJ/bit (§V-A, Liu et al. \[70\]).

/// The exfiltration radio.
///
/// Minimizing radio bandwidth is a first-class design goal: RF deposition
/// heats tissue (§II), and at 200 pJ/bit the *uncompressed* 46 Mbps stream
/// alone costs ~9.2 mW of the 12 mW processing budget — which is why every
/// transmission pipeline compresses, gates, or classifies before the
/// radio.
///
/// # Example
///
/// ```
/// use halo_power::RadioModel;
/// let radio = RadioModel::default();
/// let raw = radio.power_mw(46_080_000.0);
/// assert!((raw - 9.216).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    energy_pj_per_bit: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        Self {
            energy_pj_per_bit: 200.0,
        }
    }
}

impl RadioModel {
    /// Creates a radio with a custom energy cost.
    ///
    /// # Panics
    ///
    /// Panics if `energy_pj_per_bit` is not positive.
    pub fn new(energy_pj_per_bit: f64) -> Self {
        assert!(energy_pj_per_bit > 0.0, "energy must be positive");
        Self { energy_pj_per_bit }
    }

    /// Energy per bit in picojoules.
    pub fn energy_pj_per_bit(&self) -> f64 {
        self.energy_pj_per_bit
    }

    /// Transmit power for a sustained bit rate.
    pub fn power_mw(&self, bits_per_second: f64) -> f64 {
        // pJ/bit × bit/s = pW; convert to mW.
        self.energy_pj_per_bit * bits_per_second * 1e-9
    }

    /// Transmit power for the nominal stream compressed by `ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    pub fn power_with_compression_mw(&self, raw_bits_per_second: f64, ratio: f64) -> f64 {
        assert!(ratio > 0.0, "compression ratio must be positive");
        self.power_mw(raw_bits_per_second / ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_stream_costs_most_of_the_budget() {
        let p = RadioModel::default().power_mw(46_080_000.0);
        assert!(p > 9.0 && p < 10.0, "{p}");
    }

    #[test]
    fn compression_divides_radio_power() {
        let radio = RadioModel::default();
        let raw = radio.power_mw(46_080_000.0);
        let compressed = radio.power_with_compression_mw(46_080_000.0, 3.0);
        assert!((compressed - raw / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_is_free() {
        assert_eq!(RadioModel::default().power_mw(0.0), 0.0);
    }
}
