//! Windowed power timelines for telemetry.
//!
//! The Table IV model in [`crate::model`] evaluates *steady-state* power at
//! an operating point. Telemetry wants power over *time*: how hot each
//! clock domain ran during each sampling window of a task. This module
//! bridges the two: a [`DomainPowerModel`] converts a window's observed
//! busy-cycle rate into an activity factor against the domain's anchor
//! frequency and evaluates the anchor model there.
//!
//! The resulting milliwatt samples feed `PowerSample` telemetry events and
//! become per-domain counter tracks in the Chrome trace.

use crate::model::PePowerModel;
use crate::table::pe_anchor;
use halo_pe::PeKind;

/// Per-clock-domain window power evaluator.
///
/// # Example
///
/// ```
/// use halo_power::DomainPowerModel;
/// use halo_pe::PeKind;
///
/// let dom = DomainPowerModel::new(PeKind::Lz);
/// let idle = dom.window_mw(0, 0.001);
/// let busy = dom.window_mw(129_000, 0.001); // anchor rate for 1 ms
/// assert!(idle < busy);
/// // Idle still pays leakage.
/// assert!(idle > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DomainPowerModel {
    kind: PeKind,
    anchor_hz: f64,
}

impl DomainPowerModel {
    /// A domain model for `kind`, anchored at its Table IV frequency.
    pub fn new(kind: PeKind) -> Self {
        Self {
            kind,
            anchor_hz: pe_anchor(kind).freq_mhz * 1e6,
        }
    }

    /// The PE kind this domain hosts.
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// The domain's anchor frequency in Hz.
    pub fn anchor_hz(&self) -> f64 {
        self.anchor_hz
    }

    /// Power over a window in which the domain retired `busy_cycles` of
    /// work in `window_s` seconds of biological time, in milliwatts.
    ///
    /// Activity is the observed cycle rate over the anchor rate, clamped
    /// to [0, 1] — a pausable clock (§IV-D) cannot exceed its generator
    /// frequency, and leakage is paid regardless.
    pub fn window_mw(&self, busy_cycles: u64, window_s: f64) -> f64 {
        let activity = if window_s > 0.0 && self.anchor_hz > 0.0 {
            (busy_cycles as f64 / window_s / self.anchor_hz).min(1.0)
        } else {
            0.0
        };
        PePowerModel::new(self.kind)
            .activity(activity)
            .power()
            .total_mw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::pe_anchor;

    #[test]
    fn idle_window_pays_leakage_only() {
        let dom = DomainPowerModel::new(PeKind::Lz);
        let a = pe_anchor(PeKind::Lz);
        let idle = dom.window_mw(0, 0.001);
        assert!((idle - (a.logic_leak_mw + a.mem_leak_mw)).abs() < 1e-12);
    }

    #[test]
    fn anchor_rate_window_reproduces_table_iv() {
        let dom = DomainPowerModel::new(PeKind::Ma);
        let a = pe_anchor(PeKind::Ma);
        let cycles = (a.freq_mhz * 1e6 * 0.01) as u64; // 10 ms at anchor rate
        let p = dom.window_mw(cycles, 0.01);
        assert!((p - a.total_mw()).abs() < 1e-6, "{p} vs {}", a.total_mw());
    }

    #[test]
    fn activity_saturates_at_the_anchor_frequency() {
        let dom = DomainPowerModel::new(PeKind::Neo);
        let at_anchor = dom.window_mw(3_000_000, 1.0);
        let overdriven = dom.window_mw(30_000_000, 1.0);
        assert!((at_anchor - overdriven).abs() < 1e-12);
    }

    #[test]
    fn zero_length_window_is_idle() {
        let dom = DomainPowerModel::new(PeKind::Xcor);
        assert_eq!(dom.window_mw(1000, 0.0), dom.window_mw(0, 1.0));
    }

    #[test]
    fn power_scales_monotonically_with_load() {
        let dom = DomainPowerModel::new(PeKind::Fft);
        let mut last = -1.0;
        for cycles in [0u64, 1000, 100_000, 10_000_000] {
            let p = dom.window_mw(cycles, 1.0);
            assert!(p >= last);
            last = p;
        }
    }
}
