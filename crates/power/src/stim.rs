//! Neurostimulation power (§V-A).

/// Maximum simultaneous stimulation channels HALO supports — "2× more …
/// than commercial designs" (§V-A), within the power budget (§IV-E).
pub const MAX_STIM_CHANNELS: usize = 16;

/// Chronic-stimulation power bound for 16 channels (§V-A: "a 0.48 mW upper
/// bound for chronic stimulation").
pub const FULL_STIM_MW: f64 = 0.48;

/// Stimulation power for `channels` active channels, scaled linearly from
/// the 16-channel bound.
///
/// # Panics
///
/// Panics if `channels` exceeds [`MAX_STIM_CHANNELS`].
///
/// # Example
///
/// ```
/// use halo_power::stimulation_power_mw;
/// assert_eq!(stimulation_power_mw(16), 0.48);
/// assert_eq!(stimulation_power_mw(8), 0.24);
/// ```
pub fn stimulation_power_mw(channels: usize) -> f64 {
    assert!(
        channels <= MAX_STIM_CHANNELS,
        "{channels} exceeds the {MAX_STIM_CHANNELS}-channel stimulation limit"
    );
    FULL_STIM_MW * channels as f64 / MAX_STIM_CHANNELS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_array_matches_paper_bound() {
        assert_eq!(stimulation_power_mw(MAX_STIM_CHANNELS), FULL_STIM_MW);
        assert_eq!(stimulation_power_mw(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn over_limit_rejected() {
        let _ = stimulation_power_mw(17);
    }
}
