//! Analog front-end power: commercial ADCs at 1 mW per Msps (§V-A, Shen
//! et al. \[97\]).

/// Power of the amplifier/ADC bank for `channels` sampled at
/// `sample_rate_hz`.
///
/// The paper budgets 3 mW for the 96-channel, 30 kHz array and excludes it
/// from the 12 mW processing budget; experiments report it separately the
/// same way.
///
/// # Example
///
/// ```
/// use halo_power::adc_power_mw;
/// let p = adc_power_mw(96, 30_000);
/// assert!((p - 2.88).abs() < 1e-9);
/// ```
pub fn adc_power_mw(channels: usize, sample_rate_hz: u32) -> f64 {
    let msps = channels as f64 * sample_rate_hz as f64 / 1e6;
    msps * 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_is_about_three_mw() {
        let p = adc_power_mw(96, 30_000);
        assert!(p <= 3.0, "paper dedicates 3 mW; model gives {p}");
        assert!(p > 2.5);
    }

    #[test]
    fn scales_linearly() {
        assert_eq!(adc_power_mw(48, 30_000) * 2.0, adc_power_mw(96, 30_000));
        assert_eq!(adc_power_mw(0, 30_000), 0.0);
    }
}
