//! Power and area model for HALO, calibrated to the paper's Table IV.
//!
//! The paper's power numbers come from multi-corner physically-aware
//! synthesis in a commercial 28nm FD-SOI flow (§V-B). That flow is not
//! reproducible here, so this crate anchors an analytic model at the
//! *published* numbers and scales from them:
//!
//! * [`table`] — the Table IV anchors verbatim: per-PE frequency,
//!   leakage/dynamic power split across logic and memory, and area in
//!   kilo-gate equivalents, plus the RISC-V controller row.
//! * [`model`] — scaling rules: dynamic power ∝ clock frequency ×
//!   activity; leakage constant for logic and ∝ capacity for memory
//!   (power-gated banks, §IV-C); per-PE frequency derived from the offered
//!   data rate.
//! * [`radio`] / [`adc`] / [`stim`] — the §V-A peripherals: a 200 pJ/bit
//!   radio, 1 mW/Msps ADCs, and 0.48 mW chronic stimulation for 16
//!   channels.
//! * [`baseline`] — the Figure 4 comparison points: the 1–64-core
//!   all-software RISC-V design and the monolithic-ASIC design (kernels
//!   fused in one clock domain, without HALO's co-design optimizations).
//! * [`noc`] — interconnect power: the circuit-switched fabric's <300 µW
//!   upper bound and the rejected >50 mW DSENT packet-mesh estimate.
//! * [`budget`] — the 15 mW device / 12 mW processing budgets and the Vdd
//!   comparator that interrupts the micro-controller on overshoot (§IV-E).
//!
//! What this model preserves from the paper is *relative structure* — who
//! fits the budget, how co-design steps ladder power down, where
//! design-space sweeps peak — with absolute numbers identical to the
//! paper's at the anchor points.

pub mod adc;
pub mod baseline;
pub mod budget;
pub mod model;
pub mod noc;
pub mod radio;
pub mod stim;
pub mod table;
pub mod timeline;

pub use adc::adc_power_mw;
pub use baseline::{MonolithicAsic, SoftwareBaseline};
pub use budget::{BudgetTracker, VddComparator, DEVICE_BUDGET_MW, PROCESSING_BUDGET_MW};
pub use model::{PePower, PePowerModel};
pub use noc::{circuit_switched_power_mw, packet_mesh_power_mw};
pub use radio::RadioModel;
pub use stim::stimulation_power_mw;
pub use table::{controller_anchor, pe_anchor, PeAnchor};
pub use timeline::DomainPowerModel;
