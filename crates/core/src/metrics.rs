//! Task execution metrics.

use crate::controller::StimCommand;
use crate::task::Task;

/// A closed-loop stimulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StimEvent {
    /// Frame index at which the detector fired.
    pub frame: u64,
    /// Commands the controller issued.
    pub commands: Vec<StimCommand>,
    /// Detection-to-stimulation latency in sample frames: the firmware
    /// cycles the stimulation routine took, converted through the 25 MHz
    /// controller clock to the 30 kHz sample timeline (rounded up).
    pub latency_frames: u64,
}

/// Telemetry-derived activity of one PE slot over a whole run.
///
/// These totals are accumulated by the runtime itself (not by a telemetry
/// sink), so they are present — and identical — whether or not a recorder
/// is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeActivity {
    /// Runtime slot index.
    pub slot: usize,
    /// PE name (Table III).
    pub name: &'static str,
    /// Modeled busy cycles ([`halo_pe::PeKind::cycles_per_token`] per
    /// input token).
    pub busy_cycles: u64,
    /// Pushes that found the PE's output FIFO still occupied
    /// (back-pressure indicator).
    pub stall_cycles: u64,
    /// Payload bytes pushed into the PE.
    pub bytes_in: u64,
    /// Payload bytes pulled out of the PE.
    pub bytes_out: u64,
    /// High-water mark of the output FIFO, in tokens.
    pub fifo_high_water: u64,
}

/// What happened while streaming a recording through a task.
#[derive(Debug, Clone)]
pub struct TaskMetrics {
    /// The executed task.
    pub task: Task,
    /// Frames streamed.
    pub frames: u64,
    /// Wall-clock duration represented by the stream, in seconds.
    pub duration_s: f64,
    /// Raw input bytes (frames × channels × 2).
    pub input_bytes: u64,
    /// Bytes handed to the radio (after compression/gating/encryption).
    pub radio_bytes: u64,
    /// The framed radio stream (decompressible for compression tasks).
    pub radio_stream: Vec<u8>,
    /// Detector flags delivered to the micro-controller `(frame, flag)`.
    pub detections: Vec<(u64, bool)>,
    /// Closed-loop stimulation events.
    pub stim_events: Vec<StimEvent>,
    /// SEND-ACK bus traffic in bytes.
    pub bus_bytes: u64,
    /// Programmed switch points.
    pub switches: usize,
    /// Micro-controller cycles spent on configuration and stimulation.
    pub controller_cycles: u64,
    /// Per-PE activity totals, ordered by slot.
    pub pe_activity: Vec<PeActivity>,
}

impl TaskMetrics {
    /// Compression ratio (raw/transmitted), when the task transmits data.
    pub fn compression_ratio(&self) -> Option<f64> {
        if self.radio_bytes == 0 {
            return None;
        }
        Some(self.input_bytes as f64 / self.radio_bytes as f64)
    }

    /// Radio bit rate in bits per second.
    pub fn radio_bits_per_second(&self) -> f64 {
        if self.duration_s == 0.0 {
            return 0.0;
        }
        self.radio_bytes as f64 * 8.0 / self.duration_s
    }

    /// Frames of detector windows that fired.
    pub fn positive_detections(&self) -> Vec<u64> {
        self.detections
            .iter()
            .filter(|(_, f)| *f)
            .map(|(frame, _)| *frame)
            .collect()
    }

    /// Fraction of the raw stream the radio actually transmitted.
    pub fn bandwidth_fraction(&self) -> f64 {
        if self.input_bytes == 0 {
            return 0.0;
        }
        self.radio_bytes as f64 / self.input_bytes as f64
    }

    /// Total modeled busy cycles across every PE slot.
    pub fn total_busy_cycles(&self) -> u64 {
        self.pe_activity.iter().map(|a| a.busy_cycles).sum()
    }

    /// Mean utilization of the NoC's configured links: observed bus bytes
    /// over what the programmed switches could have carried for the run's
    /// duration at [`halo_noc::Fabric::LINK_CAPACITY_BYTES_PER_S`].
    /// Returns 0.0 for zero-duration runs or unswitched configurations.
    pub fn noc_bus_utilization(&self) -> f64 {
        if self.duration_s <= 0.0 || self.switches == 0 {
            return 0.0;
        }
        let capacity = self.duration_s
            * self.switches as f64
            * halo_noc::Fabric::LINK_CAPACITY_BYTES_PER_S as f64;
        self.bus_bytes as f64 / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> TaskMetrics {
        TaskMetrics {
            task: Task::CompressLz4,
            frames: 3000,
            duration_s: 0.1,
            input_bytes: 600_000,
            radio_bytes: 200_000,
            radio_stream: vec![],
            detections: vec![(10, false), (20, true), (30, true)],
            stim_events: vec![],
            bus_bytes: 1_000,
            switches: 3,
            controller_cycles: 500,
            pe_activity: vec![
                PeActivity {
                    slot: 0,
                    name: "LZ",
                    busy_cycles: 4_000,
                    stall_cycles: 10,
                    bytes_in: 600_000,
                    bytes_out: 200_000,
                    fifo_high_water: 4,
                },
                PeActivity {
                    slot: 1,
                    name: "LIC",
                    busy_cycles: 1_000,
                    stall_cycles: 0,
                    bytes_in: 200_000,
                    bytes_out: 200_000,
                    fifo_high_water: 2,
                },
            ],
        }
    }

    #[test]
    fn derived_quantities() {
        let m = metrics();
        assert_eq!(m.compression_ratio(), Some(3.0));
        assert!((m.radio_bits_per_second() - 16_000_000.0).abs() < 1.0);
        assert_eq!(m.positive_detections(), vec![20, 30]);
        assert!((m.bandwidth_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_radio_means_no_ratio() {
        let mut m = metrics();
        m.radio_bytes = 0;
        assert_eq!(m.compression_ratio(), None);
    }

    #[test]
    fn busy_cycles_sum_over_slots() {
        assert_eq!(metrics().total_busy_cycles(), 5_000);
    }

    #[test]
    fn noc_utilization_is_a_small_fraction_here() {
        let m = metrics();
        // 1000 bytes over 0.1 s across 3 links of 46.08 MB/s capacity.
        let expected = 1_000.0 / (0.1 * 3.0 * 46_080_000.0);
        assert!((m.noc_bus_utilization() - expected).abs() < 1e-15);
        assert!(m.noc_bus_utilization() > 0.0);
        assert!(m.noc_bus_utilization() < 1.0);
    }

    #[test]
    fn zero_duration_run_has_zero_utilization_and_rate() {
        let mut m = metrics();
        m.duration_s = 0.0;
        assert_eq!(m.noc_bus_utilization(), 0.0);
        assert_eq!(m.radio_bits_per_second(), 0.0);
    }

    #[test]
    fn unswitched_configuration_has_zero_utilization() {
        let mut m = metrics();
        m.switches = 0;
        assert_eq!(m.noc_bus_utilization(), 0.0);
    }

    #[test]
    fn zero_input_bytes_edge_cases() {
        let mut m = metrics();
        m.input_bytes = 0;
        assert_eq!(m.bandwidth_fraction(), 0.0);
        // compression_ratio still defined by radio_bytes, not input.
        assert_eq!(m.compression_ratio(), Some(0.0));
    }

    #[test]
    fn empty_activity_totals_are_zero() {
        let mut m = metrics();
        m.pe_activity.clear();
        assert_eq!(m.total_busy_cycles(), 0);
    }
}
