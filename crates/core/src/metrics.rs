//! Task execution metrics.

use crate::controller::StimCommand;
use crate::task::Task;

/// A closed-loop stimulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StimEvent {
    /// Frame index at which the detector fired.
    pub frame: u64,
    /// Commands the controller issued.
    pub commands: Vec<StimCommand>,
}

/// What happened while streaming a recording through a task.
#[derive(Debug, Clone)]
pub struct TaskMetrics {
    /// The executed task.
    pub task: Task,
    /// Frames streamed.
    pub frames: u64,
    /// Wall-clock duration represented by the stream, in seconds.
    pub duration_s: f64,
    /// Raw input bytes (frames × channels × 2).
    pub input_bytes: u64,
    /// Bytes handed to the radio (after compression/gating/encryption).
    pub radio_bytes: u64,
    /// The framed radio stream (decompressible for compression tasks).
    pub radio_stream: Vec<u8>,
    /// Detector flags delivered to the micro-controller `(frame, flag)`.
    pub detections: Vec<(u64, bool)>,
    /// Closed-loop stimulation events.
    pub stim_events: Vec<StimEvent>,
    /// SEND-ACK bus traffic in bytes.
    pub bus_bytes: u64,
    /// Programmed switch points.
    pub switches: usize,
    /// Micro-controller cycles spent on configuration and stimulation.
    pub controller_cycles: u64,
}

impl TaskMetrics {
    /// Compression ratio (raw/transmitted), when the task transmits data.
    pub fn compression_ratio(&self) -> Option<f64> {
        if self.radio_bytes == 0 {
            return None;
        }
        Some(self.input_bytes as f64 / self.radio_bytes as f64)
    }

    /// Radio bit rate in bits per second.
    pub fn radio_bits_per_second(&self) -> f64 {
        if self.duration_s == 0.0 {
            return 0.0;
        }
        self.radio_bytes as f64 * 8.0 / self.duration_s
    }

    /// Frames of detector windows that fired.
    pub fn positive_detections(&self) -> Vec<u64> {
        self.detections
            .iter()
            .filter(|(_, f)| *f)
            .map(|(frame, _)| *frame)
            .collect()
    }

    /// Fraction of the raw stream the radio actually transmitted.
    pub fn bandwidth_fraction(&self) -> f64 {
        if self.input_bytes == 0 {
            return 0.0;
        }
        self.radio_bytes as f64 / self.input_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> TaskMetrics {
        TaskMetrics {
            task: Task::CompressLz4,
            frames: 3000,
            duration_s: 0.1,
            input_bytes: 600_000,
            radio_bytes: 200_000,
            radio_stream: vec![],
            detections: vec![(10, false), (20, true), (30, true)],
            stim_events: vec![],
            bus_bytes: 1_000,
            switches: 3,
            controller_cycles: 500,
        }
    }

    #[test]
    fn derived_quantities() {
        let m = metrics();
        assert_eq!(m.compression_ratio(), Some(3.0));
        assert!((m.radio_bits_per_second() - 16_000_000.0).abs() < 1.0);
        assert_eq!(m.positive_detections(), vec![20, 30]);
        assert!((m.bandwidth_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_radio_means_no_ratio() {
        let mut m = metrics();
        m.radio_bytes = 0;
        assert_eq!(m.compression_ratio(), None);
    }
}
