//! The streaming runtime: pushes ADC frames through a PE graph on the
//! circuit-switched fabric.

use std::sync::Arc;

use halo_noc::{Fabric, FabricError, NodeId};
use halo_pe::{PeError, ProcessingElement, Token};
use halo_power::DomainPowerModel;
use halo_telemetry::{Counter, Event, EventKind, NullSink, Scope, TelemetrySink};

/// Input-adapter applied where the ADC stream enters a PE.
///
/// §IV-D: "an interconnect wrapper provides a FIFO interface for the input
/// and output of each PE; the adapter also modifies the output … to match
/// the fixed width interface of the interconnect." Byte-oriented PEs (LZ,
/// AES) receive the 16-bit samples serialized little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adapter {
    /// Deliver samples unchanged.
    Direct,
    /// Serialize each sample into two little-endian bytes.
    SamplesToBytes,
}

/// A route from the ADC stream into the PE array.
#[derive(Debug, Clone, Copy)]
pub struct SourceRoute {
    /// Destination PE slot.
    pub to: NodeId,
    /// Destination input port.
    pub port: usize,
    /// Input adapter.
    pub adapter: Adapter,
}

/// Errors raised while streaming.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A PE rejected a token.
    Pe(PeError),
    /// The fabric configuration is invalid.
    Fabric(FabricError),
}

impl From<PeError> for RuntimeError {
    fn from(e: PeError) -> Self {
        Self::Pe(e)
    }
}

impl From<FabricError> for RuntimeError {
    fn from(e: FabricError) -> Self {
        Self::Fabric(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pe(e) => write!(f, "{e}"),
            Self::Fabric(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Collects the byte stream headed for the radio, applying the same block
/// framing the monolithic codecs use so compression outputs can be
/// verified by decompression.
#[derive(Debug, Default)]
struct RadioCollector {
    pending: Vec<u8>,
    framed: Vec<u8>,
}

impl RadioCollector {
    fn consume(&mut self, token: &Token) {
        match token {
            Token::Byte(b) => self.pending.push(*b),
            Token::Sample(s) => self.pending.extend_from_slice(&s.to_le_bytes()),
            Token::Flag(f) => self.pending.push(*f as u8),
            Token::Value(v) => self.pending.extend_from_slice(&v.to_le_bytes()),
            Token::Coeff(c) => self.pending.extend_from_slice(&c.to_le_bytes()),
            Token::BlockEnd { raw_len } => {
                self.framed.extend_from_slice(&raw_len.to_le_bytes());
                self.framed
                    .extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
                self.framed.append(&mut self.pending);
            }
            Token::Op(_) | Token::Prob { .. } | Token::Bits { .. } | Token::Vector(_) => {}
        }
    }

    fn finish(&mut self) {
        self.framed.append(&mut self.pending);
    }
}

/// Always-on per-slot activity totals.
///
/// The runtime maintains these plain counters on every run — they cost a
/// handful of integer adds per token and never observe the sink — so
/// [`crate::metrics::TaskMetrics::pe_activity`] is identical whether a
/// recorder, a [`NullSink`], or nothing at all is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotTotals {
    /// Modeled busy cycles (tokens in × the kind's cycles-per-token).
    pub busy_cycles: u64,
    /// Pushes that found the slot's output FIFO still occupied.
    pub stall_cycles: u64,
    /// Payload bytes pushed into the slot.
    pub bytes_in: u64,
    /// Payload bytes pulled out of the slot.
    pub bytes_out: u64,
    /// Tokens pushed into the slot.
    pub tokens_in: u64,
    /// Tokens pulled out of the slot.
    pub tokens_out: u64,
}

/// The per-task streaming engine.
///
/// One [`Runtime::push_frame`] call delivers one multi-channel ADC frame;
/// tokens propagate along the configured routes until quiescent. Nodes
/// designated as the radio or micro-controller sink have their outputs
/// collected instead of (or in addition to) being routed.
pub struct Runtime {
    pes: Vec<Box<dyn ProcessingElement>>,
    fabric: Fabric,
    sources: Vec<SourceRoute>,
    radio_from: Option<NodeId>,
    mcu_from: Option<NodeId>,
    probe_into: Option<NodeId>,
    radio: RadioCollector,
    mcu_flags: Vec<(u64, bool)>,
    probed: Vec<(usize, i64)>,
    frame_idx: u64,
    finished: bool,
    /// Cached `kind().cycles_per_token()` per slot (hot path).
    cycles_per_token: Vec<u64>,
    totals: Vec<SlotTotals>,
    sink: Arc<dyn TelemetrySink>,
    /// Totals at the start of the current telemetry window.
    window_base: Vec<SlotTotals>,
    /// Fabric (bus_bytes, transfers) at the start of the window.
    noc_base: (u64, u64),
    window_frames: u64,
    window_start: u64,
    sample_rate_hz: u32,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("pes", &self.pes.len())
            .field("routes", &self.fabric.routes().len())
            .field("frames", &self.frame_idx)
            .finish()
    }
}

impl Runtime {
    /// Builds a runtime over a PE array and configured fabric.
    ///
    /// # Errors
    ///
    /// Returns a fabric validation error if any route is ill-typed.
    pub fn new(
        pes: Vec<Box<dyn ProcessingElement>>,
        fabric: Fabric,
        sources: Vec<SourceRoute>,
        radio_from: Option<NodeId>,
        mcu_from: Option<NodeId>,
    ) -> Result<Self, RuntimeError> {
        let refs: Vec<&dyn ProcessingElement> = pes.iter().map(|b| b.as_ref()).collect();
        fabric.validate(&refs)?;
        let cycles_per_token = pes.iter().map(|p| p.kind().cycles_per_token()).collect();
        let totals = vec![SlotTotals::default(); pes.len()];
        Ok(Self {
            window_base: totals.clone(),
            cycles_per_token,
            totals,
            pes,
            fabric,
            sources,
            radio_from,
            mcu_from,
            probe_into: None,
            radio: RadioCollector::default(),
            mcu_flags: Vec::new(),
            probed: Vec::new(),
            frame_idx: 0,
            finished: false,
            sink: Arc::new(NullSink),
            noc_base: (0, 0),
            window_frames: 0,
            window_start: 0,
            sample_rate_hz: 30_000,
        })
    }

    /// Attaches a telemetry sink. The sink immediately learns every PE
    /// slot's name; thereafter it receives windowed `PeWindow`,
    /// `NocWindow`, and `PowerSample` events every `window_frames` frames
    /// (plus a final partial window at [`Runtime::finish`]), and counter
    /// updates batched at the same cadence. `sample_rate_hz` converts
    /// frame counts to the wall time used by the power timeline.
    pub fn attach_telemetry(
        &mut self,
        sink: Arc<dyn TelemetrySink>,
        sample_rate_hz: u32,
        window_frames: u64,
    ) {
        for (slot, pe) in self.pes.iter().enumerate() {
            sink.declare_pe(slot as u8, pe.kind().name());
        }
        self.sample_rate_hz = sample_rate_hz.max(1);
        self.window_frames = window_frames.max(1);
        self.window_base = self.totals.clone();
        self.noc_base = (self.fabric.bus_bytes(), self.fabric.transfers());
        self.window_start = self.frame_idx;
        self.sink = sink;
    }

    /// The per-slot activity totals accumulated so far.
    pub fn slot_totals(&self) -> &[SlotTotals] {
        &self.totals
    }

    /// Taps every [`Token::Value`] pushed *into* `node` (feature capture
    /// for offline SVM training / threshold calibration).
    pub fn probe_into(&mut self, node: NodeId) {
        self.probe_into = Some(node);
    }

    /// The installed PEs (power/memory introspection).
    pub fn pes(&self) -> &[Box<dyn ProcessingElement>] {
        &self.pes
    }

    /// The fabric (traffic statistics).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Frames processed so far.
    pub fn frames(&self) -> u64 {
        self.frame_idx
    }

    /// Pushes one ADC frame (one sample per channel).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if a PE rejects a token.
    pub fn push_frame(&mut self, frame: &[i16]) -> Result<(), RuntimeError> {
        assert!(!self.finished, "runtime already finished");
        for s in frame {
            for k in 0..self.sources.len() {
                let src = self.sources[k];
                match src.adapter {
                    Adapter::Direct => {
                        self.push_to(src.to, src.port, Token::Sample(*s))?;
                    }
                    Adapter::SamplesToBytes => {
                        for b in s.to_le_bytes() {
                            self.push_to(src.to, src.port, Token::Byte(b))?;
                        }
                    }
                }
            }
        }
        self.frame_idx += 1;
        self.propagate()?;
        if self.sink.enabled() {
            self.sink.add(Scope::System, Counter::Frames, 1);
            if self.frame_idx - self.window_start >= self.window_frames.max(1) {
                self.emit_window();
            }
        }
        Ok(())
    }

    /// Ends the stream: flushes every PE and drains remaining tokens.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if a PE rejects a token during draining.
    pub fn finish(&mut self) -> Result<(), RuntimeError> {
        if self.finished {
            return Ok(());
        }
        for i in 0..self.pes.len() {
            self.pes[i].flush();
            self.propagate()?;
        }
        self.radio.finish();
        self.finished = true;
        if self.sink.enabled() {
            self.emit_window();
            self.sink.add(
                Scope::System,
                Counter::RadioBytes,
                self.radio.framed.len() as u64,
            );
        }
        Ok(())
    }

    /// Flushes the current telemetry window to the sink: per-slot deltas
    /// as events and batched counter updates, a NoC window, and one power
    /// sample per clock domain.
    fn emit_window(&mut self) {
        let end = self.frame_idx;
        let frames = (end - self.window_start) as u32;
        if frames == 0 {
            return;
        }
        let window_s = frames as f64 / self.sample_rate_hz as f64;
        for slot in 0..self.pes.len() {
            let now = self.totals[slot];
            let base = self.window_base[slot];
            let busy = now.busy_cycles - base.busy_cycles;
            let stall = now.stall_cycles - base.stall_cycles;
            let bytes_in = now.bytes_in - base.bytes_in;
            let bytes_out = now.bytes_out - base.bytes_out;
            let name = self.pes[slot].kind().name();
            let scope = Scope::Pe(slot as u8);
            if busy | stall | bytes_in | bytes_out != 0 {
                self.sink.add(scope, Counter::BusyCycles, busy);
                self.sink.add(scope, Counter::StallCycles, stall);
                self.sink.add(scope, Counter::BytesIn, bytes_in);
                self.sink.add(scope, Counter::BytesOut, bytes_out);
                self.sink
                    .add(scope, Counter::TokensIn, now.tokens_in - base.tokens_in);
                self.sink
                    .add(scope, Counter::TokensOut, now.tokens_out - base.tokens_out);
                self.sink.event(Event {
                    frame: self.window_start,
                    kind: EventKind::PeWindow {
                        slot: slot as u8,
                        name,
                        frames,
                        busy_cycles: busy,
                        stall_cycles: stall,
                        bytes_in,
                        bytes_out,
                    },
                });
            }
            if let Some(fifo) = self.pes[slot].output_fifo() {
                self.sink
                    .hwm(scope, Counter::FifoHighWater, fifo.high_water() as u64);
            }
            // Power is sampled for every domain: idle domains still leak.
            let mw = DomainPowerModel::new(self.pes[slot].kind()).window_mw(busy, window_s);
            self.sink.event(Event {
                frame: end,
                kind: EventKind::PowerSample {
                    slot: slot as u8,
                    name,
                    milliwatts: mw,
                },
            });
        }
        let noc_bytes = self.fabric.bus_bytes() - self.noc_base.0;
        let noc_transfers = self.fabric.transfers() - self.noc_base.1;
        self.sink.event(Event {
            frame: self.window_start,
            kind: EventKind::NocWindow {
                frames,
                bytes: noc_bytes,
                transfers: noc_transfers,
            },
        });
        self.window_base = self.totals.clone();
        self.noc_base = (self.fabric.bus_bytes(), self.fabric.transfers());
        self.window_start = end;
    }

    fn push_to(&mut self, to: NodeId, port: usize, token: Token) -> Result<(), RuntimeError> {
        if self.probe_into == Some(to) {
            if let Token::Value(v) = token {
                self.probed.push((port, v));
            }
        }
        if let Some(t) = self.totals.get_mut(to.0) {
            t.tokens_in += 1;
            t.bytes_in += token.wire_bytes() as u64;
            t.busy_cycles += self.cycles_per_token[to.0];
            // A push that finds the output FIFO still occupied means the
            // consumer has not kept up — count it as back-pressure.
            if self.pes[to.0].output_fifo().is_some_and(|f| !f.is_empty()) {
                t.stall_cycles += 1;
            }
        }
        self.pes[to.0].push(port, token)?;
        Ok(())
    }

    fn propagate(&mut self) -> Result<(), RuntimeError> {
        loop {
            let mut moved = false;
            for i in 0..self.pes.len() {
                while let Some(token) = self.pes[i].pull() {
                    moved = true;
                    let node = NodeId(i);
                    self.totals[i].tokens_out += 1;
                    self.totals[i].bytes_out += token.wire_bytes() as u64;
                    if self.radio_from == Some(node) {
                        self.radio.consume(&token);
                    }
                    if self.mcu_from == Some(node) {
                        if let Token::Flag(f) = token {
                            self.mcu_flags.push((self.frame_idx, f));
                        }
                    }
                    let routes: Vec<_> = self.fabric.routes_from(node).copied().collect();
                    for route in routes {
                        self.fabric.record_transfer(route.from, route.to, &token);
                        if self.sink.enabled() {
                            let link = Scope::Link {
                                from: route.from.0 as u8,
                                to: route.to.0 as u8,
                            };
                            self.sink
                                .add(link, Counter::BytesOut, token.wire_bytes() as u64);
                            self.sink.add(link, Counter::TokensOut, 1);
                        }
                        self.push_to(route.to, route.to_port, token.clone())?;
                    }
                }
            }
            if !moved {
                return Ok(());
            }
        }
    }

    /// The framed radio stream (compressed blocks or raw payload).
    pub fn radio_stream(&self) -> &[u8] {
        &self.radio.framed
    }

    /// Flags delivered to the micro-controller, with the frame index at
    /// which each arrived.
    pub fn mcu_flags(&self) -> &[(u64, bool)] {
        &self.mcu_flags
    }

    /// `(port, value)` pairs captured by [`Runtime::probe_into`], in
    /// arrival order.
    pub fn probed(&self) -> &[(usize, i64)] {
        &self.probed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::Threshold;
    use halo_noc::Route;
    use halo_pe::pes::{GatePe, NeoPe, ThrPe};

    /// Builds the NEO spike-detection graph by hand and checks end-to-end
    /// token flow: ADC -> NEO -> THR -> GATE(ctrl), ADC -> GATE(data).
    fn spike_runtime(threshold: i64) -> Runtime {
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(NeoPe::with_channels(1)),
            Box::new(ThrPe::new(Threshold::above(threshold))),
            Box::new(GatePe::with_channels(2, 1, 1)),
        ];
        let mut fabric = Fabric::new();
        fabric
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            })
            .unwrap();
        fabric
            .connect(Route {
                from: NodeId(1),
                to: NodeId(2),
                to_port: 1,
            })
            .unwrap();
        let sources = vec![
            SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            },
            SourceRoute {
                to: NodeId(2),
                port: 0,
                adapter: Adapter::Direct,
            },
        ];
        Runtime::new(pes, fabric, sources, Some(NodeId(2)), Some(NodeId(1))).unwrap()
    }

    #[test]
    fn spike_graph_gates_quiet_samples() {
        let mut rt = spike_runtime(100_000);
        // Quiet stream: nothing passes.
        for _ in 0..50 {
            rt.push_frame(&[3]).unwrap();
        }
        rt.finish().unwrap();
        assert!(rt.radio_stream().is_empty(), "quiet stream leaked");
    }

    #[test]
    fn spike_graph_passes_spikes() {
        let mut rt = spike_runtime(100_000);
        for t in 0..50i16 {
            let s = if t == 25 { 2_000 } else { 0 };
            rt.push_frame(&[s]).unwrap();
        }
        rt.finish().unwrap();
        // The spike sample (and the hold window) reached the radio.
        assert!(!rt.radio_stream().is_empty());
        assert!(rt.radio_stream().len() <= 2 * 4, "gate passed too much");
        // THR flags reached the MCU sink.
        assert!(rt.mcu_flags().iter().any(|&(_, f)| f));
    }

    #[test]
    fn fabric_traffic_is_accounted() {
        let mut rt = spike_runtime(1);
        for _ in 0..10 {
            rt.push_frame(&[500]).unwrap();
        }
        rt.finish().unwrap();
        assert!(rt.fabric().transfers() > 0);
        assert!(rt.fabric().bus_bytes() > 0);
    }

    #[test]
    fn probe_captures_values_into_node() {
        let mut rt = spike_runtime(i64::MAX);
        rt.probe_into(NodeId(1)); // values entering THR
        for t in 0..10i16 {
            rt.push_frame(&[t * 100]).unwrap();
        }
        rt.finish().unwrap();
        assert_eq!(rt.probed().len(), 10);
    }
}
