//! The streaming runtime: pushes ADC frames through a PE graph on the
//! circuit-switched fabric.

use std::collections::VecDeque;
use std::sync::Arc;

use halo_noc::{Fabric, FabricError, NodeId, Route};
use halo_pe::{PeError, ProcessingElement, Token};
use halo_power::DomainPowerModel;
use halo_telemetry::health::RADIO_CEILING_BPS;
use halo_telemetry::{
    Counter, CycleProfile, DeliveryCosts, Event, EventKind, NullSink, Phase, ProfileRow, Scope,
    TelemetrySink, TraceEvent, Tracer,
};

/// Input-adapter applied where the ADC stream enters a PE.
///
/// §IV-D: "an interconnect wrapper provides a FIFO interface for the input
/// and output of each PE; the adapter also modifies the output … to match
/// the fixed width interface of the interconnect." Byte-oriented PEs (LZ,
/// AES) receive the 16-bit samples serialized little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adapter {
    /// Deliver samples unchanged.
    Direct,
    /// Serialize each sample into two little-endian bytes.
    SamplesToBytes,
}

/// A route from the ADC stream into the PE array.
#[derive(Debug, Clone, Copy)]
pub struct SourceRoute {
    /// Destination PE slot.
    pub to: NodeId,
    /// Destination input port.
    pub port: usize,
    /// Input adapter.
    pub adapter: Adapter,
}

/// Errors raised while streaming.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A PE rejected a token.
    Pe(PeError),
    /// The fabric configuration is invalid.
    Fabric(FabricError),
    /// A route or source targets a node beyond the installed PE array
    /// (e.g. an MMIO-programmed switch word routing off the edge).
    NoSuchNode(NodeId),
    /// A block handed to [`Runtime::push_block`] is not a whole number of
    /// frames.
    BadBlock {
        /// Samples in the block.
        len: usize,
        /// Samples per frame.
        frame_len: usize,
    },
    /// The modeled per-FIFO parity check caught a flipped bit in a PE's
    /// output FIFO. The queued data is poisoned; recover by restoring the
    /// stream from a checkpoint.
    FifoParity {
        /// Slot whose output FIFO tripped parity.
        slot: usize,
        /// Bit index the injected upset targeted.
        bit: u32,
    },
    /// The modeled FIFO overflow flag tripped under injected occupancy
    /// pressure — tokens would have been dropped in hardware.
    FifoOverflow {
        /// Slot whose adapter FIFO overflowed.
        slot: usize,
        /// Occupancy observed when the flag tripped.
        occupancy: usize,
    },
    /// The modeled per-PE output residue code caught transiently corrupted
    /// compute output before it left the slot.
    PeResidue {
        /// Slot whose residue check failed.
        slot: usize,
    },
}

impl From<PeError> for RuntimeError {
    fn from(e: PeError) -> Self {
        Self::Pe(e)
    }
}

impl From<FabricError> for RuntimeError {
    fn from(e: FabricError) -> Self {
        Self::Fabric(e)
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pe(e) => write!(f, "{e}"),
            Self::Fabric(e) => write!(f, "{e}"),
            Self::NoSuchNode(n) => write!(f, "stream routed to missing {n}"),
            Self::BadBlock { len, frame_len } => {
                write!(
                    f,
                    "block of {len} samples is not a multiple of the {frame_len}-sample frame"
                )
            }
            Self::FifoParity { slot, bit } => {
                write!(
                    f,
                    "parity check caught flipped bit {bit} in slot {slot}'s FIFO"
                )
            }
            Self::FifoOverflow { slot, occupancy } => {
                write!(
                    f,
                    "FIFO overflow flag tripped at slot {slot} (occupancy {occupancy})"
                )
            }
            Self::PeResidue { slot } => {
                write!(f, "residue code caught corrupted output at slot {slot}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// One deterministic hardware fault the harness can inject mid-stream.
///
/// Data-plane corruptions ([`FaultAction::FifoBitFlip`],
/// [`FaultAction::FifoOverflow`], [`FaultAction::PeOutputCorrupt`]) model
/// the integrity checks real silicon carries — FIFO parity, overflow
/// flags, residue codes — so injection *detects at the point of damage*
/// and surfaces a typed [`RuntimeError`] before anything corrupt reaches
/// the radio. [`FaultAction::RogueMmio`] is caught by the fabric's
/// validation pass; [`FaultAction::LinkDegrade`] is non-corrupting on a
/// circuit-switched fabric and only charges stall cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Flip one bit of the oldest token queued in `slot`'s output FIFO
    /// (single-event upset). Detected by the modeled parity check.
    FifoBitFlip {
        /// Target PE slot.
        slot: usize,
        /// Bit index (reduced modulo the token's payload width).
        bit: u32,
    },
    /// Assert overflow pressure on `slot`'s output FIFO. Detected by the
    /// modeled overflow flag whenever the FIFO holds data.
    FifoOverflow {
        /// Target PE slot.
        slot: usize,
    },
    /// Transiently corrupt `slot`'s most recent compute output. Detected
    /// by the modeled per-PE residue code.
    PeOutputCorrupt {
        /// Target PE slot.
        slot: usize,
        /// Bit index (reduced modulo the token's payload width).
        bit: u32,
    },
    /// Degrade one fabric link: the SEND-ACK handshake retries for
    /// `stall_cycles` consumer cycles. Circuit-switched links never
    /// corrupt in this model, so outputs are unchanged — the cost shows
    /// up in stall telemetry only.
    LinkDegrade {
        /// Producer end of the link.
        from: NodeId,
        /// Consumer end of the link.
        to: NodeId,
        /// Stall cycles charged to the consumer.
        stall_cycles: u64,
    },
    /// Write a rogue word into the switch MMIO space. An illegal word is
    /// caught by the fabric re-validation the write triggers; recovery is
    /// reprogramming the captured legal words in place.
    RogueMmio {
        /// The raw switch word to program.
        word: u32,
    },
}

impl FaultAction {
    /// Short stable label for telemetry and triage JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Self::FifoBitFlip { .. } => "fifo_bit_flip",
            Self::FifoOverflow { .. } => "fifo_overflow",
            Self::PeOutputCorrupt { .. } => "pe_output_corrupt",
            Self::LinkDegrade { .. } => "link_degrade",
            Self::RogueMmio { .. } => "rogue_mmio",
        }
    }

    /// Primary slot the fault targets, or `u8::MAX` for fabric-wide ones.
    pub fn slot(&self) -> u8 {
        match self {
            Self::FifoBitFlip { slot, .. }
            | Self::FifoOverflow { slot }
            | Self::PeOutputCorrupt { slot, .. } => (*slot).min(u8::MAX as usize) as u8,
            Self::LinkDegrade { to, .. } => to.0.min(u8::MAX as usize) as u8,
            Self::RogueMmio { .. } => u8::MAX,
        }
    }

    /// Scalar detail for telemetry (bit index / stall cycles / raw word).
    pub fn detail(&self) -> u64 {
        match self {
            Self::FifoBitFlip { bit, .. } | Self::PeOutputCorrupt { bit, .. } => *bit as u64,
            Self::FifoOverflow { .. } => 0,
            Self::LinkDegrade { stall_cycles, .. } => *stall_cycles,
            Self::RogueMmio { word } => *word as u64,
        }
    }
}

/// A fault pinned to the frame index at which it fires (applied before
/// that frame's samples are ingested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Frame index at which the fault is applied.
    pub frame: u64,
    /// The fault itself.
    pub action: FaultAction,
}

/// Attached fault schedule: sorted by frame, consumed through a cursor so
/// a harness that catches an error can read how far injection progressed
/// and re-attach only the remainder after a restore.
#[derive(Debug, Default)]
struct FaultState {
    schedule: Vec<ScheduledFault>,
    cursor: usize,
}

impl FaultState {
    fn next_due_frame(&self) -> Option<u64> {
        self.schedule.get(self.cursor).map(|f| f.frame)
    }
}

/// Attached cycle-profiler state: per-slot phase accumulators keyed off
/// the always-on [`SlotTotals`], so the armed hot-path cost is a few
/// integer adds per source per frame (and one batched add per quiet
/// chunk). Compute cycles are *derived* at snapshot time as
/// `busy − ingest − quiet − drain`, so the four phases tile each slot's
/// busy cycles exactly and the hot path never touches a fourth array.
#[derive(Debug)]
struct ProfileState {
    /// Stable pipeline label the profile attributes cycles under.
    pipeline: &'static str,
    /// Sample rate used to convert busy cycles to window power/energy.
    sample_rate_hz: u32,
    /// Source-ingest cycles per slot (scalar-path frames).
    ingest: Vec<u64>,
    /// Batched quiet-chunk cycles per slot (`push_block` fast path).
    quiet: Vec<u64>,
    /// End-of-stream flush cycles per slot.
    drain: Vec<u64>,
}

/// Sentinel slot index for "no node designated" (radio/MCU/probe taps).
const NO_SLOT: usize = usize::MAX;

/// Collects the byte stream headed for the radio, applying the same block
/// framing the monolithic codecs use so compression outputs can be
/// verified by decompression.
#[derive(Debug, Default)]
struct RadioCollector {
    pending: Vec<u8>,
    framed: Vec<u8>,
    /// Whether a [`Token::BlockEnd`] has ever arrived — i.e. the stream is
    /// block-framed (compression output) rather than raw payload.
    saw_block_end: bool,
}

impl RadioCollector {
    fn consume(&mut self, token: &Token) {
        match token {
            Token::Byte(b) => self.pending.push(*b),
            Token::Sample(s) => self.pending.extend_from_slice(&s.to_le_bytes()),
            // In a framed stream, flags are control traffic (detector
            // alerts), not block payload: a flag byte spliced between
            // compressed bytes would shift every later byte of the block
            // and break decoding. Raw streams keep them as payload.
            Token::Flag(f) => {
                if !self.saw_block_end {
                    self.pending.push(*f as u8);
                }
            }
            Token::Value(v) => self.pending.extend_from_slice(&v.to_le_bytes()),
            Token::Coeff(c) => self.pending.extend_from_slice(&c.to_le_bytes()),
            Token::BlockEnd { raw_len } => {
                self.saw_block_end = true;
                self.framed.extend_from_slice(&raw_len.to_le_bytes());
                self.framed
                    .extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
                self.framed.append(&mut self.pending);
            }
            Token::Op(_) | Token::Prob { .. } | Token::Bits { .. } | Token::Vector(_) => {}
        }
    }

    fn finish(&mut self) {
        if self.saw_block_end && !self.pending.is_empty() {
            // A framed stream ended mid-block (the producer never emitted
            // the closing marker, so the block cannot be decoded). Frame
            // the tail with a zero raw length so block parsers skip it
            // instead of misreading bare bytes as a header.
            self.framed.extend_from_slice(&0u32.to_le_bytes());
            self.framed
                .extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        }
        self.framed.append(&mut self.pending);
    }
}

/// Always-on per-slot activity totals.
///
/// The runtime maintains these plain counters on every run — they cost a
/// handful of integer adds per token and never observe the sink — so
/// [`crate::metrics::TaskMetrics::pe_activity`] is identical whether a
/// recorder, a [`NullSink`], or nothing at all is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotTotals {
    /// Modeled busy cycles (tokens in × the kind's cycles-per-token).
    pub busy_cycles: u64,
    /// Pushes that found the slot's output FIFO still occupied.
    pub stall_cycles: u64,
    /// Payload bytes pushed into the slot.
    pub bytes_in: u64,
    /// Payload bytes pulled out of the slot.
    pub bytes_out: u64,
    /// Tokens pushed into the slot.
    pub tokens_in: u64,
    /// Tokens pulled out of the slot.
    pub tokens_out: u64,
}

/// The per-task streaming engine.
///
/// One [`Runtime::push_frame`] call delivers one multi-channel ADC frame;
/// tokens propagate along the configured routes until quiescent. Nodes
/// designated as the radio or micro-controller sink have their outputs
/// collected instead of (or in addition to) being routed.
pub struct Runtime {
    pes: Vec<Box<dyn ProcessingElement>>,
    fabric: Fabric,
    sources: Vec<SourceRoute>,
    /// Slot index of the radio / MCU / probe tap, or [`NO_SLOT`] — plain
    /// integer compares on the per-token paths.
    radio_slot: usize,
    mcu_slot: usize,
    probe_slot: usize,
    radio: RadioCollector,
    mcu_flags: Vec<(u64, bool)>,
    probed: Vec<(usize, i64)>,
    frame_idx: u64,
    finished: bool,
    /// Cached `kind().cycles_per_token()` per slot (hot path).
    cycles_per_token: Vec<u64>,
    /// Per-node fan-out table (`route_table[from]` = routes leaving
    /// `from`, in programming order), so [`Runtime::propagate`] never
    /// scans or allocates per token. Rebuilt — and the fabric re-validated
    /// — whenever `fabric.generation()` moves off `route_gen`.
    route_table: Vec<Vec<Route>>,
    route_gen: u64,
    /// Reusable scratch buffer for [`Runtime::propagate`]'s bulk FIFO
    /// drain; its capacity ping-pongs with the PE FIFOs, so steady state
    /// allocates nothing.
    burst: VecDeque<Token>,
    totals: Vec<SlotTotals>,
    sink: Arc<dyn TelemetrySink>,
    /// Totals at the start of the current telemetry window.
    window_base: Vec<SlotTotals>,
    /// Fabric (bus_bytes, transfers) at the start of the window.
    noc_base: (u64, u64),
    /// Framed radio bytes already reported to the sink.
    radio_base: u64,
    window_frames: u64,
    window_start: u64,
    sample_rate_hz: u32,
    /// Wall nanoseconds per busy cycle per slot at each domain's anchor
    /// frequency — converts busy-cycle deltas to latency samples. Filled
    /// by [`Runtime::attach_telemetry`]; empty (and unread) otherwise.
    ns_per_cycle: Vec<f64>,
    /// Per-slot busy cycles at the start of the in-flight frame — scratch
    /// for the end-to-end frame-latency sample (telemetry only).
    frame_base: Vec<u64>,
    /// Frame-latency samples accumulated since the last window flush.
    /// Batched into one [`TelemetrySink::latency_batch`] call per window so
    /// a locking sink synchronizes once per window, not once per frame.
    latency_pending: Vec<u64>,
    /// Causal-trace collector, when [`Runtime::attach_tracing`] wired one.
    /// Untraced frames cost one sampler check; traced frames take the
    /// generic propagation path and record per-delivery spans.
    tracer: Option<Arc<Tracer>>,
    /// Modeled NoC serialization cost (interconnect links clock at the
    /// radio ceiling's byte rate). Filled by [`Runtime::attach_tracing`].
    ns_per_link_byte: f64,
    /// Modeled radio serialization cost at the 46 Mbps paper ceiling.
    ns_per_radio_byte: f64,
    /// Batched quiet-frame dispatch toggle (on by default). Quiet
    /// stretches — upcoming whole frames guaranteed to produce zero
    /// output tokens at every source PE — are delivered through one
    /// [`ProcessingElement::push_samples`] call per source instead of
    /// per-token pushes, and propagation is skipped entirely. Outputs,
    /// counters, telemetry, and traces are bit-identical either way.
    block_dispatch: bool,
    /// Span events buffered during a traced frame and recorded under one
    /// tracer lock per frame instead of one per delivery burst.
    trace_buf: Vec<TraceEvent>,
    /// Cached ids of the tracer's open traces, refreshed at every frame
    /// boundary — span acceptance (sticky-tag keep/clear) is decided by
    /// membership here without taking the tracer lock per burst.
    open_tags: Vec<u64>,
    /// Reusable per-consumer stall baseline for traced bursts.
    trace_stall_scratch: Vec<u64>,
    /// Attached fault schedule, or `None` (the overwhelmingly common
    /// case) — disabled costs one `is_some()` branch per frame, proven
    /// ≤2% the same way as tracing (`fault_overhead` in
    /// `BENCH_runtime.json`).
    faults: Option<Box<FaultState>>,
    /// Attached cycle profiler, or `None` — disabled costs one
    /// `is_some()` branch per frame; armed cost is ≤2% via the
    /// `profile_overhead` interleaved A/B in `BENCH_runtime.json`.
    profile: Option<Box<ProfileState>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("pes", &self.pes.len())
            .field("routes", &self.fabric.routes().len())
            .field("frames", &self.frame_idx)
            .finish()
    }
}

impl Runtime {
    /// Builds a runtime over a PE array and configured fabric.
    ///
    /// # Errors
    ///
    /// Returns a fabric validation error if any route is ill-typed.
    pub fn new(
        pes: Vec<Box<dyn ProcessingElement>>,
        fabric: Fabric,
        sources: Vec<SourceRoute>,
        radio_from: Option<NodeId>,
        mcu_from: Option<NodeId>,
    ) -> Result<Self, RuntimeError> {
        let refs: Vec<&dyn ProcessingElement> = pes.iter().map(|b| b.as_ref()).collect();
        fabric.validate(&refs)?;
        let cycles_per_token = pes.iter().map(|p| p.kind().cycles_per_token()).collect();
        let totals = vec![SlotTotals::default(); pes.len()];
        let mut runtime = Self {
            window_base: totals.clone(),
            cycles_per_token,
            totals,
            route_table: Vec::new(),
            route_gen: 0,
            burst: VecDeque::new(),
            pes,
            fabric,
            sources,
            radio_slot: radio_from.map_or(NO_SLOT, |n| n.0),
            mcu_slot: mcu_from.map_or(NO_SLOT, |n| n.0),
            probe_slot: NO_SLOT,
            radio: RadioCollector::default(),
            mcu_flags: Vec::new(),
            probed: Vec::new(),
            frame_idx: 0,
            finished: false,
            sink: Arc::new(NullSink),
            noc_base: (0, 0),
            radio_base: 0,
            window_frames: 0,
            window_start: 0,
            sample_rate_hz: 30_000,
            ns_per_cycle: Vec::new(),
            frame_base: Vec::new(),
            latency_pending: Vec::new(),
            tracer: None,
            ns_per_link_byte: 0.0,
            ns_per_radio_byte: 0.0,
            block_dispatch: true,
            trace_buf: Vec::new(),
            open_tags: Vec::new(),
            trace_stall_scratch: Vec::new(),
            faults: None,
            profile: None,
        };
        runtime.rebuild_route_table();
        Ok(runtime)
    }

    /// Rebuilds the per-node fan-out table from the fabric's route list.
    /// Inner vectors are reused, so steady-state reprogramming does not
    /// allocate either.
    fn rebuild_route_table(&mut self) {
        for fan_out in &mut self.route_table {
            fan_out.clear();
        }
        self.route_table.resize_with(self.pes.len(), Vec::new);
        for route in self.fabric.routes() {
            // Routes from a missing node can never fire (there is no PE to
            // pull from); they are caught by `sync_fabric`'s validation
            // when programmed mid-run.
            if let Some(fan_out) = self.route_table.get_mut(route.from.0) {
                fan_out.push(*route);
            }
        }
        self.route_gen = self.fabric.generation();
    }

    /// Re-validates the fabric against the PE array and rebuilds the route
    /// table — the slow path taken once after mid-run reprogramming.
    ///
    /// # Errors
    ///
    /// Returns the fabric's validation error; the stream stays unusable
    /// (every subsequent push re-reports it) until the fabric is
    /// reprogrammed with legal routes.
    fn sync_fabric(&mut self) -> Result<(), RuntimeError> {
        let refs: Vec<&dyn ProcessingElement> = self.pes.iter().map(|b| b.as_ref()).collect();
        self.fabric.validate(&refs)?;
        self.rebuild_route_table();
        Ok(())
    }

    /// Attaches a telemetry sink. The sink immediately learns every PE
    /// slot's name; thereafter it receives windowed `PeWindow`,
    /// `NocWindow`, and `PowerSample` events every `window_frames` frames
    /// (plus a final partial window at [`Runtime::finish`]), and counter
    /// updates batched at the same cadence. `sample_rate_hz` converts
    /// frame counts to the wall time used by the power timeline.
    pub fn attach_telemetry(
        &mut self,
        sink: Arc<dyn TelemetrySink>,
        sample_rate_hz: u32,
        window_frames: u64,
    ) {
        // Re-attachment mid-stream: flush the partial window (batched
        // counters, pending latency samples) to the outgoing sink first so
        // each sink's totals cover exactly the frames it was attached for.
        if self.sink.enabled() {
            self.emit_window();
        }
        for (slot, pe) in self.pes.iter().enumerate() {
            sink.declare_pe(slot as u8, pe.kind().name());
        }
        self.sample_rate_hz = sample_rate_hz.max(1);
        self.window_frames = window_frames.max(1);
        self.window_base = self.totals.clone();
        self.noc_base = (self.fabric.bus_bytes(), self.fabric.transfers());
        self.radio_base = self.radio.framed.len() as u64;
        self.window_start = self.frame_idx;
        self.ns_per_cycle = self
            .pes
            .iter()
            .map(|p| 1.0e9 / DomainPowerModel::new(p.kind()).anchor_hz())
            .collect();
        self.sink = sink;
    }

    /// Attaches a causal tracer. Each pushed frame asks the tracer's
    /// sampler whether to open a trace; sampled frames have a compact
    /// trace tag propagated along their token flow (sticky on each PE's
    /// output FIFO), and every delivery burst, radio frame, and domain
    /// crossing is recorded as a span. Unsampled frames pay one relaxed
    /// atomic load per frame and one tag read per burst.
    pub fn attach_tracing(&mut self, tracer: Arc<Tracer>) {
        if self.ns_per_cycle.is_empty() {
            self.ns_per_cycle = self
                .pes
                .iter()
                .map(|p| 1.0e9 / DomainPowerModel::new(p.kind()).anchor_hz())
                .collect();
        }
        self.ns_per_link_byte = 1.0e9 / Fabric::LINK_CAPACITY_BYTES_PER_S as f64;
        self.ns_per_radio_byte = 8.0e9 / RADIO_CEILING_BPS;
        tracer.open_tags_into(&mut self.open_tags);
        self.tracer = Some(tracer);
    }

    /// Enables or disables batched quiet-frame dispatch (on by default).
    /// Off forces the per-frame scalar path for every pushed block — the
    /// A/B knob the equivalence tests and benchmarks flip.
    pub fn set_block_dispatch(&mut self, on: bool) {
        self.block_dispatch = on;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Attaches a fault schedule. Faults fire at their exact frame index,
    /// *before* that frame's samples are ingested — with block dispatch on,
    /// quiet chunks are clamped at the next scheduled fault so injection
    /// timing is identical either way. The schedule is stably sorted by
    /// frame; attaching replaces any previous schedule.
    pub fn attach_faults(&mut self, mut schedule: Vec<ScheduledFault>) {
        schedule.sort_by_key(|f| f.frame);
        self.faults = Some(Box::new(FaultState {
            schedule,
            cursor: 0,
        }));
    }

    /// Detaches the fault schedule (the hook returns to its zero-cost
    /// disabled state).
    pub fn detach_faults(&mut self) {
        self.faults = None;
    }

    /// How many scheduled faults have been applied so far. A harness that
    /// catches an injected error reads this from the poisoned system to
    /// learn which suffix of its master schedule is still pending.
    pub fn fault_cursor(&self) -> usize {
        self.faults.as_ref().map_or(0, |s| s.cursor)
    }

    /// Whether a fault schedule is attached.
    pub fn faults_attached(&self) -> bool {
        self.faults.is_some()
    }

    /// Arms the cycle profiler: subsequent frames accrue hierarchical
    /// phase attribution (ingest / compute / drain / quiet-skip) under
    /// `pipeline`. Attaching resets any previous attribution; the
    /// disabled hook costs one branch per frame.
    pub fn attach_profile(&mut self, pipeline: &'static str, sample_rate_hz: u32) {
        self.profile = Some(Box::new(ProfileState {
            pipeline,
            sample_rate_hz,
            ingest: vec![0; self.pes.len()],
            quiet: vec![0; self.pes.len()],
            drain: vec![0; self.pes.len()],
        }));
    }

    /// Detaches the profiler (the hook returns to its zero-cost disabled
    /// state); accumulated attribution is discarded.
    pub fn detach_profile(&mut self) {
        self.profile = None;
    }

    /// Whether the cycle profiler is armed.
    pub fn profile_attached(&self) -> bool {
        self.profile.is_some()
    }

    /// Snapshots the armed profiler into a [`CycleProfile`] rooted at
    /// `device`. Deterministic: derived entirely from the always-on
    /// [`SlotTotals`] and the profiler's phase accumulators, never a wall
    /// clock. Returns `None` when no profiler is attached. Callable
    /// mid-stream (drain cycles appear once [`Runtime::finish`] ran);
    /// per-slot energy comes from the slot's [`DomainPowerModel`] window
    /// draw over the profiled stream, apportioned across phases by cycle
    /// share.
    pub fn profile_snapshot(&self, device: &str) -> Option<CycleProfile> {
        let state = self.profile.as_ref()?;
        let mut out = CycleProfile::new(device);
        out.frames = self.frame_idx;
        let stream_s = self.frame_idx as f64 / state.sample_rate_hz as f64;
        for slot in 0..self.pes.len() {
            let busy = self.totals[slot].busy_cycles;
            let ingest = state.ingest[slot].min(busy);
            let quiet = state.quiet[slot].min(busy - ingest);
            let drain = state.drain[slot].min(busy - ingest - quiet);
            let compute = busy - ingest - quiet - drain;
            if busy == 0 {
                continue;
            }
            let energy_uj = if stream_s > 0.0 {
                // window_mw over the whole stream × stream seconds: mW·s
                // = µJ... (1 mW × 1 s = 1 mJ = 1000 µJ).
                DomainPowerModel::new(self.pes[slot].kind()).window_mw(busy, stream_s)
                    * stream_s
                    * 1000.0
            } else {
                0.0
            };
            let name = self.pes[slot].kind().name();
            for (phase, cycles) in [
                (Phase::Ingest, ingest),
                (Phase::Compute, compute),
                (Phase::Drain, drain),
                (Phase::QuietSkip, quiet),
            ] {
                if cycles == 0 {
                    continue;
                }
                out.add(ProfileRow {
                    pipeline: state.pipeline.to_string(),
                    slot: slot as u8,
                    pe: name.to_string(),
                    phase,
                    cycles,
                    energy_uj: energy_uj * cycles as f64 / busy as f64,
                });
            }
        }
        Some(out)
    }

    /// The per-slot activity totals accumulated so far.
    pub fn slot_totals(&self) -> &[SlotTotals] {
        &self.totals
    }

    /// Taps every [`Token::Value`] pushed *into* `node` (feature capture
    /// for offline SVM training / threshold calibration).
    pub fn probe_into(&mut self, node: NodeId) {
        self.probe_slot = node.0;
    }

    /// The installed PEs (power/memory introspection).
    pub fn pes(&self) -> &[Box<dyn ProcessingElement>] {
        &self.pes
    }

    /// The fabric (traffic statistics).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable access to the fabric — the mid-run reprogramming path (a
    /// micro-controller poking switch words while the stream is live).
    /// Any reconfiguration bumps the fabric's generation counter; the next
    /// push re-validates the result against the PE array and surfaces an
    /// `Err` (rather than a panic) if a switch word routed off the
    /// installed array.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// Frames processed so far.
    pub fn frames(&self) -> u64 {
        self.frame_idx
    }

    /// Pushes one ADC frame (one sample per channel).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if a PE rejects a token.
    pub fn push_frame(&mut self, frame: &[i16]) -> Result<(), RuntimeError> {
        assert!(!self.finished, "runtime already finished");
        self.push_frame_inner(frame)
    }

    /// Pushes a contiguous block of frame-major samples (`frame_len`
    /// samples per frame, e.g. [`halo_signal::Recording::samples`] with
    /// `frame_len` = channels), amortizing per-frame dispatch across the
    /// whole block. Token order, telemetry counters, window emission, and
    /// the radio stream are identical to pushing each frame through
    /// [`Runtime::push_frame`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadBlock`] if `block` is not a whole number
    /// of frames, or any streaming error a per-frame push would raise.
    pub fn push_block(&mut self, block: &[i16], frame_len: usize) -> Result<(), RuntimeError> {
        assert!(!self.finished, "runtime already finished");
        if frame_len == 0 || !block.len().is_multiple_of(frame_len) {
            return Err(RuntimeError::BadBlock {
                len: block.len(),
                frame_len,
            });
        }
        // Byte-adapted sources deliver two tokens per sample with
        // per-byte accounting the batch path does not reproduce; routes
        // off the installed array must surface the scalar path's error.
        let batchable = self.block_dispatch
            && self
                .sources
                .iter()
                .all(|s| s.adapter == Adapter::Direct && s.to.0 < self.pes.len());
        if !batchable {
            for frame in block.chunks_exact(frame_len) {
                self.push_frame_inner(frame)?;
            }
            return Ok(());
        }
        let frames = block.len() / frame_len;
        let mut f = 0usize;
        while f < frames {
            // How many upcoming whole frames are *quiet* — guaranteed to
            // produce zero output tokens at every source PE? Quiet frames
            // cause no propagation, stalls, MCU flags, radio bytes, or
            // probe captures, so their entire effect is source-side
            // ingest, which `push_quiet_chunk` batches.
            let mut quiet = u64::MAX;
            for src in &self.sources {
                quiet = quiet.min(self.pes[src.to.0].quiet_frames(frame_len));
                if quiet == 0 {
                    break;
                }
            }
            if quiet > 0 {
                if let Some(t) = &self.tracer {
                    // Batched frames never open traces or record spans —
                    // only correct while the sampler has no hit in the
                    // stretch and no open trace reaches its linger
                    // boundary (expiry must run on the scalar path).
                    quiet = quiet.min(t.quiet_frames(self.frame_idx));
                }
            }
            let sink_on = self.sink.enabled();
            if sink_on {
                // Stop at the telemetry window boundary so `emit_window`
                // fires at exactly the scalar cadence.
                quiet = quiet.min(self.window_frames - (self.frame_idx - self.window_start));
            }
            if let Some(state) = &self.faults {
                // Stop at the next scheduled fault so it lands on the
                // scalar path at its exact frame index — a fault due
                // inside a would-be quiet chunk forces `chunk == 0` and a
                // per-frame push that applies it.
                if let Some(due) = state.next_due_frame() {
                    quiet = quiet.min(due.saturating_sub(self.frame_idx));
                }
            }
            let chunk = quiet.min((frames - f) as u64) as usize;
            if chunk == 0 {
                self.push_frame_inner(&block[f * frame_len..(f + 1) * frame_len])?;
                f += 1;
                continue;
            }
            let samples = &block[f * frame_len..(f + chunk) * frame_len];
            self.push_quiet_chunk(samples, frame_len, chunk, sink_on)?;
            f += chunk;
        }
        Ok(())
    }

    /// Delivers `chunk` quiet frames (`frame_len` samples each) to every
    /// source PE in one batched call per source, replicating the scalar
    /// path's accounting without per-token dispatch or propagation. The
    /// caller guarantees quietness: no source PE emits a token for any of
    /// these frames, so output FIFOs stay empty (no stalls or bursts) and
    /// the tracer neither samples a frame nor expires a trace here.
    fn push_quiet_chunk(
        &mut self,
        samples: &[i16],
        frame_len: usize,
        chunk: usize,
        sink_on: bool,
    ) -> Result<(), RuntimeError> {
        for k in 0..self.sources.len() {
            let src = self.sources[k];
            let slot = src.to.0;
            let tokens = (chunk * frame_len) as u64;
            let t = &mut self.totals[slot];
            t.tokens_in += tokens;
            t.bytes_in += 2 * tokens;
            t.busy_cycles += self.cycles_per_token[slot] * tokens;
            // Sources carry Token::Sample only, so the probe tap (which
            // records Token::Value) can never fire on this path.
            self.pes[slot].push_samples(src.port, samples)?;
        }
        if let Some(p) = &mut self.profile {
            // Quiet-skip attribution, batched: one add per source for the
            // whole chunk (the batchable precondition already proved every
            // source slot is on the installed array).
            for src in &self.sources {
                let slot = src.to.0;
                p.quiet[slot] += self.cycles_per_token[slot] * (chunk * frame_len) as u64;
            }
        }
        self.frame_idx += chunk as u64;
        if sink_on {
            // The scalar per-frame latency sample for a quiet frame is the
            // source-ingest service time alone (nothing else runs that
            // frame); reproduce its slot-ordered f64 summation exactly.
            let mut nanos = 0.0f64;
            for slot in 0..self.pes.len() {
                let mut cycles = 0u64;
                for src in &self.sources {
                    if src.to.0 == slot {
                        cycles += frame_len as u64 * self.cycles_per_token[slot];
                    }
                }
                if cycles != 0 {
                    nanos += cycles as f64 * self.ns_per_cycle[slot];
                }
            }
            let sample = nanos as u64;
            self.latency_pending
                .extend(std::iter::repeat_n(sample, chunk));
            if self.frame_idx - self.window_start >= self.window_frames {
                self.emit_window();
            }
        }
        Ok(())
    }

    fn push_frame_inner(&mut self, frame: &[i16]) -> Result<(), RuntimeError> {
        // Fault hook: one branch when disabled. Due faults are applied
        // before this frame's samples are ingested, so an injected error
        // leaves the frame un-consumed and `frames()` names the exact
        // resume point for checkpoint/restore.
        if self.faults.is_some() {
            self.apply_due_faults()?;
        }
        let sink_on = self.sink.enabled();
        if sink_on {
            // Busy-cycle baseline for this frame's end-to-end latency
            // sample (reused scratch — no steady-state allocation).
            self.frame_base.clear();
            self.frame_base
                .extend(self.totals.iter().map(|t| t.busy_cycles));
        }
        // Ask the sampler whether this frame is traced. Unsampled frames
        // (the overwhelming majority) fall straight through to the same
        // source loop with `tag == 0`.
        // The frame boundary also refreshes the cached open-trace set used
        // by the buffered span recorders — one tracer lock covers both.
        let tag = match &self.tracer {
            Some(t) => t.begin_frame_into(self.frame_idx, &mut self.open_tags),
            None => 0,
        };
        let stall_base: Vec<u64> = if tag != 0 {
            self.totals.iter().map(|t| t.stall_cycles).collect()
        } else {
            Vec::new()
        };
        for s in frame {
            for k in 0..self.sources.len() {
                let src = self.sources[k];
                match src.adapter {
                    Adapter::Direct => {
                        self.push_to(src.to, src.port, Token::Sample(*s), 2)?;
                    }
                    Adapter::SamplesToBytes => {
                        for b in s.to_le_bytes() {
                            self.push_to(src.to, src.port, Token::Byte(b), 1)?;
                        }
                    }
                }
            }
        }
        if tag != 0 {
            self.trace_sources(tag, frame.len(), &stall_base);
        }
        if let Some(p) = &mut self.profile {
            // Source-ingest attribution: exactly the cycles the loop
            // above charged via `push_to` (one token per sample for
            // Direct, two per sample byte-adapted).
            for src in &self.sources {
                let slot = src.to.0;
                if slot < p.ingest.len() {
                    let tokens = match src.adapter {
                        Adapter::Direct => frame.len() as u64,
                        Adapter::SamplesToBytes => 2 * frame.len() as u64,
                    };
                    p.ingest[slot] += tokens * self.cycles_per_token[slot];
                }
            }
        }
        self.frame_idx += 1;
        self.propagate()?;
        self.flush_trace_buf();
        if sink_on {
            // End-to-end frame latency: every domain's busy-cycle delta,
            // converted at its own anchor frequency. The modeled fabric
            // pipelines PEs, but summing serialized service time is the
            // conservative upper bound a deadline check wants. Samples are
            // buffered here and flushed in one batch per window — the
            // histogram contents are identical, only the sink
            // synchronization is amortized.
            let mut nanos = 0.0f64;
            for (slot, t) in self.totals.iter().enumerate() {
                let delta = t.busy_cycles - self.frame_base[slot];
                if delta != 0 {
                    nanos += delta as f64 * self.ns_per_cycle[slot];
                }
            }
            self.latency_pending.push(nanos as u64);
            if self.frame_idx - self.window_start >= self.window_frames {
                self.emit_window();
            }
        }
        Ok(())
    }

    /// Applies every scheduled fault due at the current frame. All due
    /// faults are applied (and reported to telemetry) even when an early
    /// one errors, so the cursor always reflects exactly what was
    /// injected; the first error is returned.
    fn apply_due_faults(&mut self) -> Result<(), RuntimeError> {
        let Some(mut state) = self.faults.take() else {
            return Ok(());
        };
        let mut result = Ok(());
        while state
            .schedule
            .get(state.cursor)
            .is_some_and(|f| f.frame <= self.frame_idx)
        {
            let fault = state.schedule[state.cursor];
            state.cursor += 1;
            let applied = self.apply_fault(&fault.action);
            self.sink.event(Event {
                frame: self.frame_idx,
                kind: EventKind::Fault {
                    kind: fault.action.name(),
                    slot: fault.action.slot(),
                    detail: fault.action.detail(),
                    detected: applied.is_err(),
                },
            });
            if result.is_ok() {
                result = applied;
            }
        }
        self.faults = Some(state);
        result
    }

    /// Injects one fault. Data-plane corruptions return the typed error
    /// the modeled integrity check raises at the point of damage; a fault
    /// landing on empty state (e.g. a bit flip in an empty FIFO) is
    /// physically harmless and returns `Ok`.
    fn apply_fault(&mut self, action: &FaultAction) -> Result<(), RuntimeError> {
        match *action {
            FaultAction::FifoBitFlip { slot, bit } => {
                let Some(pe) = self.pes.get_mut(slot) else {
                    return Err(RuntimeError::NoSuchNode(NodeId(slot)));
                };
                match pe.output_fifo_mut().and_then(|f| f.front_mut()) {
                    Some(token) => {
                        token.flip_bit(bit);
                        Err(RuntimeError::FifoParity { slot, bit })
                    }
                    None => Ok(()),
                }
            }
            FaultAction::FifoOverflow { slot } => {
                let Some(pe) = self.pes.get(slot) else {
                    return Err(RuntimeError::NoSuchNode(NodeId(slot)));
                };
                let occupancy = pe.output_fifo().map_or(0, |f| f.len());
                if occupancy > 0 {
                    Err(RuntimeError::FifoOverflow { slot, occupancy })
                } else {
                    Ok(())
                }
            }
            FaultAction::PeOutputCorrupt { slot, bit } => {
                let Some(pe) = self.pes.get_mut(slot) else {
                    return Err(RuntimeError::NoSuchNode(NodeId(slot)));
                };
                match pe.output_fifo_mut().and_then(|f| f.front_mut()) {
                    Some(token) => {
                        token.flip_bit(bit);
                        Err(RuntimeError::PeResidue { slot })
                    }
                    None => Ok(()),
                }
            }
            FaultAction::LinkDegrade {
                from: _,
                to,
                stall_cycles,
            } => {
                let Some(t) = self.totals.get_mut(to.0) else {
                    return Err(RuntimeError::NoSuchNode(to));
                };
                t.stall_cycles += stall_cycles;
                Ok(())
            }
            FaultAction::RogueMmio { word } => {
                self.fabric.program(word)?;
                // The MMIO write triggers re-validation immediately — an
                // illegal word surfaces here, before any sample of this
                // frame is ingested, and keeps surfacing until the fabric
                // is reprogrammed with legal words.
                self.sync_fabric()
            }
        }
    }

    /// Ends the stream: flushes every PE and drains remaining tokens.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if a PE rejects a token during draining.
    pub fn finish(&mut self) -> Result<(), RuntimeError> {
        if self.finished {
            return Ok(());
        }
        // Drain attribution baseline: everything the flush loop adds to
        // the busy counters below belongs to the drain phase.
        let drain_base: Vec<u64> = if self.profile.is_some() {
            self.totals.iter().map(|t| t.busy_cycles).collect()
        } else {
            Vec::new()
        };
        for i in 0..self.pes.len() {
            self.pes[i].flush();
            self.propagate()?;
        }
        if let Some(p) = &mut self.profile {
            for (slot, base) in drain_base.iter().enumerate() {
                p.drain[slot] += self.totals[slot].busy_cycles - base;
            }
        }
        self.flush_trace_buf();
        self.radio.finish();
        self.finished = true;
        if self.sink.enabled() {
            self.emit_window();
            // `emit_window` skips zero-frame windows, but the drain above
            // may still have produced radio bytes past the last boundary —
            // report the remainder so windowed deltas sum to the stream.
            let radio_now = self.radio.framed.len() as u64;
            let bytes = radio_now - self.radio_base;
            if bytes > 0 {
                self.sink.add(Scope::System, Counter::RadioBytes, bytes);
                self.sink.event(Event {
                    frame: self.frame_idx,
                    kind: EventKind::RadioWindow { frames: 0, bytes },
                });
                self.radio_base = radio_now;
            }
        }
        Ok(())
    }

    /// Flushes the current telemetry window to the sink: per-slot deltas
    /// as events and batched counter updates, a NoC window, and one power
    /// sample per clock domain.
    fn emit_window(&mut self) {
        let end = self.frame_idx;
        let frames = (end - self.window_start) as u32;
        if frames == 0 {
            return;
        }
        // Per-frame System bookkeeping, batched to one call per window:
        // the frame count and the buffered end-to-end latency samples.
        self.sink
            .add(Scope::System, Counter::Frames, u64::from(frames));
        if !self.latency_pending.is_empty() {
            self.sink
                .latency_batch(Scope::System, &self.latency_pending);
            self.latency_pending.clear();
        }
        let window_s = frames as f64 / self.sample_rate_hz as f64;
        for slot in 0..self.pes.len() {
            let now = self.totals[slot];
            let base = self.window_base[slot];
            let busy = now.busy_cycles - base.busy_cycles;
            let stall = now.stall_cycles - base.stall_cycles;
            let bytes_in = now.bytes_in - base.bytes_in;
            let bytes_out = now.bytes_out - base.bytes_out;
            let name = self.pes[slot].kind().name();
            let scope = Scope::Pe(slot as u8);
            if busy != 0 || stall != 0 || bytes_in != 0 || bytes_out != 0 {
                self.sink.add(scope, Counter::BusyCycles, busy);
                self.sink.add(scope, Counter::StallCycles, stall);
                self.sink.add(scope, Counter::BytesIn, bytes_in);
                self.sink.add(scope, Counter::BytesOut, bytes_out);
                self.sink
                    .add(scope, Counter::TokensIn, now.tokens_in - base.tokens_in);
                self.sink
                    .add(scope, Counter::TokensOut, now.tokens_out - base.tokens_out);
                self.sink.event(Event {
                    frame: self.window_start,
                    kind: EventKind::PeWindow {
                        slot: slot as u8,
                        name,
                        frames,
                        busy_cycles: busy,
                        stall_cycles: stall,
                        bytes_in,
                        bytes_out,
                    },
                });
                if busy != 0 {
                    // Window service time at this domain's anchor clock.
                    let service = busy as f64 * self.ns_per_cycle[slot];
                    self.sink.latency(scope, service as u64);
                }
            }
            if let Some(fifo) = self.pes[slot].output_fifo() {
                let peak = fifo.max_occupancy() as u64;
                let depth = fifo.len() as u64;
                self.sink.hwm(scope, Counter::FifoHighWater, peak);
                self.sink.hwm(scope, Counter::FifoPeakDepth, depth);
                if peak != 0 {
                    self.sink.event(Event {
                        frame: end,
                        kind: EventKind::FifoWindow {
                            slot: slot as u8,
                            name,
                            depth: depth as u32,
                            peak: peak as u32,
                        },
                    });
                }
            }
            // Power is sampled for every domain: idle domains still leak.
            let mw = DomainPowerModel::new(self.pes[slot].kind()).window_mw(busy, window_s);
            self.sink.event(Event {
                frame: end,
                kind: EventKind::PowerSample {
                    slot: slot as u8,
                    name,
                    milliwatts: mw,
                },
            });
        }
        let noc_bytes = self.fabric.bus_bytes() - self.noc_base.0;
        let noc_transfers = self.fabric.transfers() - self.noc_base.1;
        self.sink.event(Event {
            frame: self.window_start,
            kind: EventKind::NocWindow {
                frames,
                bytes: noc_bytes,
                transfers: noc_transfers,
            },
        });
        // Radio throughput this window: counters move in windowed deltas
        // (summing to the final stream length), and the event gives the
        // health monitor a bits-per-second sample to judge.
        let radio_now = self.radio.framed.len() as u64;
        let radio_bytes = radio_now - self.radio_base;
        if radio_bytes > 0 {
            self.sink
                .add(Scope::System, Counter::RadioBytes, radio_bytes);
        }
        self.sink.event(Event {
            frame: self.window_start,
            kind: EventKind::RadioWindow {
                frames,
                bytes: radio_bytes,
            },
        });
        self.radio_base = radio_now;
        self.window_base = self.totals.clone();
        self.noc_base = (self.fabric.bus_bytes(), self.fabric.transfers());
        self.window_start = end;
    }

    /// Delivers `token` (whose wire size is `bytes`, computed once by the
    /// caller) into a PE's input port, accounting the slot's totals.
    fn push_to(
        &mut self,
        to: NodeId,
        port: usize,
        token: Token,
        bytes: u64,
    ) -> Result<(), RuntimeError> {
        if self.probe_slot == to.0 {
            if let Token::Value(v) = token {
                self.probed.push((port, v));
            }
        }
        let Some(t) = self.totals.get_mut(to.0) else {
            return Err(RuntimeError::NoSuchNode(to));
        };
        t.tokens_in += 1;
        t.bytes_in += bytes;
        t.busy_cycles += self.cycles_per_token[to.0];
        // A push that finds the output FIFO still occupied means the
        // consumer has not kept up — count it as back-pressure.
        if self.pes[to.0].output_fifo().is_some_and(|f| !f.is_empty()) {
            t.stall_cycles += 1;
        }
        self.pes[to.0].push(port, token)?;
        Ok(())
    }

    /// Flushes the frame's buffered span events into the tracer under a
    /// single lock. Called once per scalar frame (after propagation runs
    /// to quiescence) and once at [`Runtime::finish`] — span trees come
    /// out identical to the old eager per-burst recording because events
    /// replay in emission order.
    fn flush_trace_buf(&mut self) {
        if self.trace_buf.is_empty() {
            return;
        }
        if let Some(tracer) = &self.tracer {
            tracer.record_batch(&self.trace_buf);
        }
        self.trace_buf.clear();
    }

    /// Buffers one source-delivery span per ADC route for a traced frame:
    /// the ingest cost of this frame's samples at each entry PE, with the
    /// back-pressure observed during the source loop attributed to the
    /// first route that feeds each destination. Traced frames only — the
    /// per-frame Vec snapshots are off the untraced hot path.
    fn trace_sources(&mut self, tag: u64, channels: usize, stall_base: &[u64]) {
        if self.tracer.is_none() {
            return;
        }
        // `tag` was handed out by this frame's `begin_frame_into`, so the
        // trace is open by construction; the membership check mirrors the
        // eager recorder's acceptance test anyway.
        let accepted = self.open_tags.contains(&tag);
        let mut seen: Vec<usize> = Vec::new();
        for k in 0..self.sources.len() {
            let src = self.sources[k];
            let to = src.to.0;
            if to >= self.pes.len() {
                continue;
            }
            let (tokens, bytes) = match src.adapter {
                Adapter::Direct => (channels as u64, 2 * channels as u64),
                Adapter::SamplesToBytes => (2 * channels as u64, 2 * channels as u64),
            };
            let wait = if seen.contains(&to) {
                0
            } else {
                seen.push(to);
                self.totals[to].stall_cycles - stall_base[to]
            };
            let costs = DeliveryCosts {
                noc_ns: 0,
                wait_ns: (wait as f64 * self.ns_per_cycle[to]) as u64,
                cross_ns: 0,
                service_ns: ((tokens * self.cycles_per_token[to]) as f64 * self.ns_per_cycle[to])
                    as u64,
            };
            if accepted {
                self.trace_buf.push(TraceEvent::Delivery {
                    tag,
                    from: None,
                    to: to as u8,
                    to_name: self.pes[to].kind().name(),
                    tokens: tokens as u32,
                    bytes,
                    costs,
                });
                if let Some(fifo) = self.pes[to].output_fifo_mut() {
                    fifo.set_trace_tag(tag);
                }
            }
        }
    }

    /// Records one routed transfer of `bytes` payload bytes on the fabric
    /// and in the telemetry sink's per-link counters.
    fn account_transfer(&mut self, route: Route, bytes: u64, sink_on: bool) {
        self.fabric
            .record_transfer_bytes(route.from, route.to, bytes);
        if sink_on {
            let link = Scope::Link {
                from: route.from.0 as u8,
                to: route.to.0 as u8,
            };
            self.sink.add(link, Counter::BytesOut, bytes);
            self.sink.add(link, Counter::TokensOut, 1);
        }
    }

    /// Drains every PE output until the array is quiescent.
    ///
    /// This is the streaming hot path: it performs zero heap allocations
    /// per token in steady state. Fan-out is looked up in the precomputed
    /// per-node route table, and the token itself is *moved* to its
    /// consumer — cloned only for the first `fan_out - 1` consumers of a
    /// multi-route node.
    fn propagate(&mut self) -> Result<(), RuntimeError> {
        if self.route_gen != self.fabric.generation() {
            self.sync_fabric()?;
        }
        let sink_on = self.sink.enabled();
        // The scratch buffer leaves `self` for the duration of the sweep so
        // PEs can be drained into it while routes are consulted. On an
        // error mid-burst the undelivered remainder is discarded — the
        // stream is dead once a push fails.
        let mut burst = std::mem::take(&mut self.burst);
        let result = self.propagate_burst(&mut burst, sink_on);
        burst.clear();
        self.burst = burst;
        result
    }

    fn propagate_burst(
        &mut self,
        burst: &mut VecDeque<Token>,
        sink_on: bool,
    ) -> Result<(), RuntimeError> {
        loop {
            let mut moved = false;
            for i in 0..self.pes.len() {
                // Idle PEs (the common case between block boundaries) cost
                // one occupancy read, as the old pull-loop did.
                if self.pes[i].output_fifo().is_some_and(|f| f.is_empty()) {
                    continue;
                }
                burst.clear();
                self.pes[i].drain_output(burst);
                if burst.is_empty() {
                    continue;
                }
                moved = true;
                let is_radio = self.radio_slot == i;
                let is_mcu = self.mcu_slot == i;
                let fan_out = self.route_table[i].len();
                // Sticky causal context: a traced frame tags its producers'
                // output FIFOs, so every downstream burst inherits the tag.
                // With no tracer attached this is a single branch per burst.
                let tag = if self.tracer.is_some() {
                    self.pes[i].output_fifo().map_or(0, |f| f.trace_tag())
                } else {
                    0
                };
                // Fast path for the dominant shape — one consumer, no
                // radio/MCU/probe tap on either end: every counter the
                // generic path updates per token is batched into one
                // update per burst, including the sink's per-link counters
                // when telemetry is attached (the adds are additive, so
                // totals are identical). The per-push stall probe stays,
                // as the consumer's output occupancy evolves during the
                // burst. A sticky trace tag does NOT force the slow path:
                // the one delivery span a tagged single-consumer burst
                // produces is priced from exactly the aggregates computed
                // here (token count, wire bytes, stall delta), so
                // `trace_fast_burst` emits it bit-identically.
                if fan_out == 1 && !is_radio && !is_mcu {
                    let route = self.route_table[i][0];
                    let to = route.to.0;
                    if to < self.totals.len() && self.probe_slot != to {
                        let mut n = 0u64;
                        let mut total_bytes = 0u64;
                        let mut stalls = 0u64;
                        let mut res = Ok(());
                        // The consumer's output only grows during the
                        // burst (nothing drains it until its own sweep),
                        // so once a push observes back-pressure every
                        // later push stalls too — probe until then.
                        let mut stalled = false;
                        while let Some(token) = burst.pop_front() {
                            n += 1;
                            total_bytes += token.wire_bytes() as u64;
                            if !stalled {
                                stalled = self.pes[to].output_fifo().is_some_and(|f| !f.is_empty());
                            }
                            if stalled {
                                stalls += 1;
                            }
                            if let Err(e) = self.pes[to].push(route.to_port, token) {
                                res = Err(RuntimeError::Pe(e));
                                break;
                            }
                        }
                        let t = &mut self.totals[i];
                        t.tokens_out += n;
                        t.bytes_out += total_bytes;
                        let d = &mut self.totals[to];
                        d.tokens_in += n;
                        d.bytes_in += total_bytes;
                        d.busy_cycles += self.cycles_per_token[to] * n;
                        d.stall_cycles += stalls;
                        self.fabric
                            .record_transfers(route.from, route.to, n, total_bytes);
                        if sink_on && n != 0 {
                            let link = Scope::Link {
                                from: route.from.0 as u8,
                                to: route.to.0 as u8,
                            };
                            self.sink.add(link, Counter::BytesOut, total_bytes);
                            self.sink.add(link, Counter::TokensOut, n);
                        }
                        if tag != 0 && res.is_ok() {
                            self.trace_fast_burst(tag, i, route, n, total_bytes, stalls);
                        }
                        res?;
                        continue;
                    }
                }
                // Pre-burst snapshot for span costing — traced bursts only.
                // The stall baseline reuses a scratch vector so traced
                // bursts allocate nothing in steady state.
                let trace_pre = if tag != 0 {
                    let mut stall_base = std::mem::take(&mut self.trace_stall_scratch);
                    stall_base.clear();
                    stall_base.extend(
                        self.route_table[i]
                            .iter()
                            .map(|r| self.totals.get(r.to.0).map_or(0, |t| t.stall_cycles)),
                    );
                    Some((
                        burst.len() as u64,
                        burst.iter().map(|t| t.wire_bytes() as u64).sum::<u64>(),
                        stall_base,
                    ))
                } else {
                    None
                };
                while let Some(token) = burst.pop_front() {
                    let bytes = token.wire_bytes() as u64;
                    let t = &mut self.totals[i];
                    t.tokens_out += 1;
                    t.bytes_out += bytes;
                    if is_radio {
                        self.radio.consume(&token);
                    }
                    if is_mcu {
                        if let Token::Flag(f) = token {
                            self.mcu_flags.push((self.frame_idx, f));
                        }
                    }
                    if fan_out == 0 {
                        continue;
                    }
                    for k in 0..fan_out - 1 {
                        let route = self.route_table[i][k];
                        self.account_transfer(route, bytes, sink_on);
                        self.push_to(route.to, route.to_port, token.clone(), bytes)?;
                    }
                    let route = self.route_table[i][fan_out - 1];
                    self.account_transfer(route, bytes, sink_on);
                    self.push_to(route.to, route.to_port, token, bytes)?;
                }
                if let Some((n, total_bytes, stall_base)) = trace_pre {
                    self.trace_burst(tag, i, n, total_bytes, &stall_base, is_radio);
                    self.trace_stall_scratch = stall_base;
                }
            }
            if !moved {
                return Ok(());
            }
        }
    }

    /// Fast-path twin of [`Runtime::trace_burst`] for the single-consumer,
    /// non-radio/MCU/probe burst shape: one delivery span priced from the
    /// burst aggregates the fast path already computed (`stall_delta` is
    /// the burst's observed back-pressure, identical to the generic
    /// path's pre/post stall snapshot), with the same sticky-tag
    /// keep/clear rules.
    fn trace_fast_burst(
        &mut self,
        tag: u64,
        from: usize,
        route: Route,
        n: u64,
        total_bytes: u64,
        stall_delta: u64,
    ) {
        if self.tracer.is_none() {
            return;
        }
        let to = route.to.0;
        if self.open_tags.contains(&tag) {
            let costs = DeliveryCosts {
                noc_ns: (total_bytes as f64 * self.ns_per_link_byte) as u64,
                wait_ns: (stall_delta as f64 * self.ns_per_cycle[to]) as u64,
                cross_ns: if self.ns_per_cycle[from] != self.ns_per_cycle[to] {
                    self.ns_per_cycle[to] as u64
                } else {
                    0
                },
                service_ns: ((n * self.cycles_per_token[to]) as f64 * self.ns_per_cycle[to]) as u64,
            };
            self.trace_buf.push(TraceEvent::Delivery {
                tag,
                from: Some((from as u8, self.pes[from].kind().name())),
                to: to as u8,
                to_name: self.pes[to].kind().name(),
                tokens: n as u32,
                bytes: total_bytes,
                costs,
            });
            if let Some(fifo) = self.pes[to].output_fifo_mut() {
                fifo.set_trace_tag(tag);
            }
        } else if let Some(fifo) = self.pes[from].output_fifo_mut() {
            // The delivery was refused (trace closed or expired): stop the
            // stale context from propagating, as the generic path would.
            fifo.clear_trace_tag();
        }
    }

    /// Buffers the spans for one traced delivery burst out of slot `from`:
    /// a PeService span per consumer (with NocHop / FifoWait / DomainCross
    /// children priced from the burst's size and observed back-pressure),
    /// plus a RadioFrame span if this slot feeds the radio. Consumers that
    /// accept the delivery inherit the trace tag on their output FIFOs;
    /// once every delivery is refused (trace closed or expired) the
    /// producer's tag is cleared so the context stops propagating.
    /// Acceptance is the cached open-set membership — openness only moves
    /// at frame boundaries, so it matches what the eager recorder's lock
    /// would have answered mid-frame.
    fn trace_burst(
        &mut self,
        tag: u64,
        from: usize,
        n: u64,
        total_bytes: u64,
        stall_base: &[u64],
        is_radio: bool,
    ) {
        if self.tracer.is_none() {
            return;
        }
        let accepted = self.open_tags.contains(&tag);
        let from_name = self.pes[from].kind().name();
        let mut keep = false;
        for (k, &base) in stall_base
            .iter()
            .enumerate()
            .take(self.route_table[from].len())
        {
            let route = self.route_table[from][k];
            let to = route.to.0;
            if to >= self.pes.len() {
                continue;
            }
            let stall_delta = self.totals[to].stall_cycles - base;
            let costs = DeliveryCosts {
                noc_ns: (total_bytes as f64 * self.ns_per_link_byte) as u64,
                wait_ns: (stall_delta as f64 * self.ns_per_cycle[to]) as u64,
                // Clock-domain crossing: one consumer-domain cycle of
                // synchronizer latency when producer and consumer run at
                // different anchor frequencies (§IV-D dual-clock FIFOs).
                cross_ns: if self.ns_per_cycle[from] != self.ns_per_cycle[to] {
                    self.ns_per_cycle[to] as u64
                } else {
                    0
                },
                service_ns: ((n * self.cycles_per_token[to]) as f64 * self.ns_per_cycle[to]) as u64,
            };
            if accepted {
                self.trace_buf.push(TraceEvent::Delivery {
                    tag,
                    from: Some((from as u8, from_name)),
                    to: to as u8,
                    to_name: self.pes[to].kind().name(),
                    tokens: n as u32,
                    bytes: total_bytes,
                    costs,
                });
                keep = true;
                if let Some(fifo) = self.pes[to].output_fifo_mut() {
                    fifo.set_trace_tag(tag);
                }
            }
        }
        if is_radio && accepted {
            let ns = (total_bytes as f64 * self.ns_per_radio_byte) as u64;
            self.trace_buf.push(TraceEvent::Radio {
                tag,
                node: from as u8,
                tokens: n as u32,
                bytes: total_bytes,
                ns,
            });
            keep = true;
        }
        if !keep {
            if let Some(fifo) = self.pes[from].output_fifo_mut() {
                fifo.clear_trace_tag();
            }
        }
    }

    /// The framed radio stream (compressed blocks or raw payload).
    pub fn radio_stream(&self) -> &[u8] {
        &self.radio.framed
    }

    /// Flags delivered to the micro-controller, with the frame index at
    /// which each arrived.
    pub fn mcu_flags(&self) -> &[(u64, bool)] {
        &self.mcu_flags
    }

    /// `(port, value)` pairs captured by [`Runtime::probe_into`], in
    /// arrival order.
    pub fn probed(&self) -> &[(usize, i64)] {
        &self.probed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::Threshold;
    use halo_noc::Route;
    use halo_pe::pes::{GatePe, NeoPe, ThrPe};

    /// Builds the NEO spike-detection graph by hand and checks end-to-end
    /// token flow: ADC -> NEO -> THR -> GATE(ctrl), ADC -> GATE(data).
    fn spike_runtime(threshold: i64) -> Runtime {
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(NeoPe::with_channels(1)),
            Box::new(ThrPe::new(Threshold::above(threshold))),
            Box::new(GatePe::with_channels(2, 1, 1)),
        ];
        let mut fabric = Fabric::new();
        fabric
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            })
            .unwrap();
        fabric
            .connect(Route {
                from: NodeId(1),
                to: NodeId(2),
                to_port: 1,
            })
            .unwrap();
        let sources = vec![
            SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            },
            SourceRoute {
                to: NodeId(2),
                port: 0,
                adapter: Adapter::Direct,
            },
        ];
        Runtime::new(pes, fabric, sources, Some(NodeId(2)), Some(NodeId(1))).unwrap()
    }

    #[test]
    fn spike_graph_gates_quiet_samples() {
        let mut rt = spike_runtime(100_000);
        // Quiet stream: nothing passes.
        for _ in 0..50 {
            rt.push_frame(&[3]).unwrap();
        }
        rt.finish().unwrap();
        assert!(rt.radio_stream().is_empty(), "quiet stream leaked");
    }

    #[test]
    fn spike_graph_passes_spikes() {
        let mut rt = spike_runtime(100_000);
        for t in 0..50i16 {
            let s = if t == 25 { 2_000 } else { 0 };
            rt.push_frame(&[s]).unwrap();
        }
        rt.finish().unwrap();
        // The spike sample (and the hold window) reached the radio.
        assert!(!rt.radio_stream().is_empty());
        assert!(rt.radio_stream().len() <= 2 * 4, "gate passed too much");
        // THR flags reached the MCU sink.
        assert!(rt.mcu_flags().iter().any(|&(_, f)| f));
    }

    #[test]
    fn fabric_traffic_is_accounted() {
        let mut rt = spike_runtime(1);
        for _ in 0..10 {
            rt.push_frame(&[500]).unwrap();
        }
        rt.finish().unwrap();
        assert!(rt.fabric().transfers() > 0);
        assert!(rt.fabric().bus_bytes() > 0);
    }

    #[test]
    fn probe_captures_values_into_node() {
        let mut rt = spike_runtime(i64::MAX);
        rt.probe_into(NodeId(1)); // values entering THR
        for t in 0..10i16 {
            rt.push_frame(&[t * 100]).unwrap();
        }
        rt.finish().unwrap();
        assert_eq!(rt.probed().len(), 10);
    }

    /// Regression: a switch word naming a node the PE array does not have
    /// used to crash the stream with an out-of-bounds panic on the next
    /// token. It must surface as a validation error instead — and keep
    /// surfacing until the fabric is reprogrammed with legal routes.
    #[test]
    fn bad_switch_word_mid_run_errors_not_panics() {
        let mut rt = spike_runtime(1);
        rt.push_frame(&[500]).unwrap();
        // MMIO write path: raw word, no validation at program time.
        let rogue = Fabric::encode_route(Route {
            from: NodeId(1),
            to: NodeId(9),
            to_port: 0,
        });
        rt.fabric_mut().program(rogue).unwrap();
        assert!(rt.push_frame(&[500]).is_err(), "rogue route accepted");
        assert!(rt.push_frame(&[500]).is_err(), "error did not persist");
    }

    /// A teardown-and-reprogram with legal routes recovers the stream
    /// after a rogue word poisoned it.
    #[test]
    fn reprogramming_after_bad_word_recovers() {
        let mut rt = spike_runtime(1);
        let rogue = Fabric::encode_route(Route {
            from: NodeId(1),
            to: NodeId(9),
            to_port: 0,
        });
        rt.fabric_mut().program(rogue).unwrap();
        assert!(rt.push_frame(&[500]).is_err());
        rt.fabric_mut().program(Fabric::WORD_CLEAR).unwrap();
        for route in [
            Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            },
            Route {
                from: NodeId(1),
                to: NodeId(2),
                to_port: 1,
            },
        ] {
            rt.fabric_mut()
                .program(Fabric::encode_route(route))
                .unwrap();
        }
        rt.push_frame(&[500])
            .expect("legal reprogram did not recover");
    }

    /// Block pushes are an accounting-identical batching of frame pushes:
    /// every per-slot counter and the radio stream must match exactly.
    #[test]
    fn push_block_matches_push_frame() {
        let samples: Vec<i16> = (0..64).map(|t| if t % 7 == 0 { 900 } else { t }).collect();
        let mut by_frame = spike_runtime(1);
        for s in &samples {
            by_frame.push_frame(&[*s]).unwrap();
        }
        by_frame.finish().unwrap();
        let mut by_block = spike_runtime(1);
        by_block.push_block(&samples, 1).unwrap();
        by_block.finish().unwrap();
        assert_eq!(by_frame.slot_totals(), by_block.slot_totals());
        assert_eq!(by_frame.radio_stream(), by_block.radio_stream());
        assert_eq!(by_frame.mcu_flags(), by_block.mcu_flags());
        assert_eq!(by_frame.fabric().bus_bytes(), by_block.fabric().bus_bytes());
    }

    /// Telemetry attachment must not perturb the simulation, and the
    /// batched fast-path counter updates must equal the fabric's own
    /// accounting: slot totals, radio stream, and fabric counters are
    /// identical with and without a recorder, and the recorder's link,
    /// frame, and latency totals reconcile with the runtime's.
    #[test]
    fn recorder_attachment_is_accounting_neutral() {
        let samples: Vec<i16> = (0..64).map(|t| if t % 7 == 0 { 900 } else { t }).collect();
        let mut bare = spike_runtime(1);
        bare.push_block(&samples, 1).unwrap();
        bare.finish().unwrap();

        let recorder = Arc::new(halo_telemetry::Recorder::new(4096));
        let mut observed = spike_runtime(1);
        observed.attach_telemetry(recorder.clone(), 30_000, 16);
        observed.push_block(&samples, 1).unwrap();
        observed.finish().unwrap();

        assert_eq!(bare.slot_totals(), observed.slot_totals());
        assert_eq!(bare.radio_stream(), observed.radio_stream());
        assert_eq!(bare.fabric().bus_bytes(), observed.fabric().bus_bytes());

        let snap = recorder.snapshot();
        assert_eq!(snap.frames, observed.frames());
        assert_eq!(snap.noc_bytes(), observed.fabric().bus_bytes());
        assert_eq!(snap.noc_transfers(), observed.fabric().transfers());
        // One end-to-end latency sample per frame survives the batching.
        let sampled: u64 = recorder
            .pipeline_histograms()
            .iter()
            .map(|(_, h)| h.count())
            .sum();
        assert_eq!(sampled, observed.frames());
    }

    #[test]
    fn push_block_rejects_ragged_blocks() {
        let mut rt = spike_runtime(1);
        assert!(matches!(
            rt.push_block(&[1, 2, 3], 2),
            Err(RuntimeError::BadBlock {
                len: 3,
                frame_len: 2
            })
        ));
        assert!(matches!(
            rt.push_block(&[1, 2, 3], 0),
            Err(RuntimeError::BadBlock { .. })
        ));
    }

    /// Regression: a framed (compressed) stream that ends mid-block used
    /// to drop bare tail bytes after the last complete frame, which a
    /// block parser would misread as a header. The tail must be framed
    /// with a zero raw-length marker.
    #[test]
    fn radio_finish_frames_partial_tail_block() {
        let mut rc = RadioCollector::default();
        rc.consume(&Token::Byte(0xAA));
        rc.consume(&Token::BlockEnd { raw_len: 4 });
        rc.consume(&Token::Byte(7));
        rc.consume(&Token::Byte(8));
        rc.finish();
        let mut expected = Vec::new();
        expected.extend_from_slice(&4u32.to_le_bytes()); // raw len
        expected.extend_from_slice(&1u32.to_le_bytes()); // comp len
        expected.push(0xAA);
        expected.extend_from_slice(&0u32.to_le_bytes()); // tail marker
        expected.extend_from_slice(&2u32.to_le_bytes()); // tail comp len
        expected.extend_from_slice(&[7, 8]);
        assert_eq!(rc.framed, expected);
    }

    /// Regression: detector flags arriving on a framed stream are control
    /// traffic and must not be spliced into compressed payload.
    #[test]
    fn radio_flags_not_spliced_into_framed_payload() {
        let mut rc = RadioCollector::default();
        rc.consume(&Token::Byte(1));
        rc.consume(&Token::BlockEnd { raw_len: 1 });
        rc.consume(&Token::Flag(true));
        rc.consume(&Token::Byte(2));
        rc.consume(&Token::BlockEnd { raw_len: 1 });
        let mut expected = Vec::new();
        expected.extend_from_slice(&1u32.to_le_bytes());
        expected.extend_from_slice(&1u32.to_le_bytes());
        expected.push(1);
        expected.extend_from_slice(&1u32.to_le_bytes());
        expected.extend_from_slice(&1u32.to_le_bytes());
        expected.push(2);
        assert_eq!(rc.framed, expected, "flag byte leaked into a block");
    }
}
