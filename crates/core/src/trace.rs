//! Capture and deterministic replay of device runs.
//!
//! A [`capture`] packages everything a finished run consumed and produced
//! into a binary-stable [`TraceLog`]: the task, a fingerprint of the
//! configuration, the programmed switch words, the raw input samples, and
//! the outputs (radio stream, MCU flags, stimulation events). [`replay`]
//! rebuilds a fresh [`HaloSystem`] from the log, refuses to run if the
//! configuration or fabric differs from capture time, re-drives the exact
//! input, and reports whether every output is bit-identical — the
//! simulator is deterministic, so any divergence is a regression.

use halo_signal::Recording;
use halo_telemetry::{ReplayReport, Replayer, StimRecord, TraceLog};

use crate::config::HaloConfig;
use crate::metrics::TaskMetrics;
use crate::system::{HaloSystem, SystemError};
use crate::task::Task;

/// Errors raised while replaying a captured trace log.
#[derive(Debug)]
pub enum ReplayError {
    /// The log names a task this build does not know.
    UnknownTask(String),
    /// The supplied configuration does not fingerprint-match the capture.
    ConfigMismatch {
        /// Fingerprint recorded in the log.
        expected: u64,
        /// Fingerprint of the configuration supplied for replay.
        got: u64,
    },
    /// The rebuilt fabric programmed different switch words than the
    /// capture recorded — the pipeline topology changed.
    FabricMismatch {
        /// Switch words recorded in the log.
        expected: Vec<u32>,
        /// Switch words the rebuilt system programmed.
        got: Vec<u32>,
    },
    /// The rebuilt system failed to configure or stream.
    System(SystemError),
}

impl From<SystemError> for ReplayError {
    fn from(e: SystemError) -> Self {
        Self::System(e)
    }
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownTask(label) => write!(f, "trace log names unknown task {label:?}"),
            Self::ConfigMismatch { expected, got } => write!(
                f,
                "config fingerprint {got:#018x} does not match captured {expected:#018x}"
            ),
            Self::FabricMismatch { expected, got } => write!(
                f,
                "rebuilt fabric programmed {} switch words, capture recorded {}",
                got.len(),
                expected.len()
            ),
            Self::System(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Projects the closed-loop stimulation events of a finished run into the
/// compact records a [`TraceLog`] stores.
fn stim_records(metrics: &TaskMetrics) -> Vec<StimRecord> {
    metrics
        .stim_events
        .iter()
        .map(|e| StimRecord {
            frame: e.frame,
            latency_frames: e.latency_frames,
            commands: e.commands.len() as u32,
        })
        .collect()
}

/// Captures a finished run as a replayable [`TraceLog`].
///
/// Call after [`HaloSystem::process`] returned `metrics` for `recording`
/// on `system`; the log records the exact inputs (samples, fabric
/// programming, configuration fingerprint) and outputs (radio bytes, MCU
/// flags, stimulation events) so [`replay`] can verify bit-identity.
pub fn capture(system: &HaloSystem, recording: &Recording, metrics: &TaskMetrics) -> TraceLog {
    TraceLog {
        task: system.task().label().to_string(),
        config_fingerprint: system.config().fingerprint(),
        channels: system.config().channels as u32,
        sample_rate_hz: system.config().sample_rate_hz,
        switch_words: system.runtime().fabric().encoded_routes(),
        samples: recording.samples().to_vec(),
        radio: metrics.radio_stream.clone(),
        mcu_flags: metrics.detections.clone(),
        stim: stim_records(metrics),
    }
}

/// Replays a captured log through a freshly built system and verifies the
/// outputs byte-for-byte.
///
/// `config` must be equivalent to the capture-time configuration (same
/// fingerprint) — replay is only meaningful against the same device
/// setup. Returns the fresh run's metrics alongside the comparison
/// report; [`ReplayReport::identical`] is the determinism verdict.
///
/// # Errors
///
/// Returns [`ReplayError`] if the log names an unknown task, the
/// configuration or fabric differs from capture time, or the rebuilt
/// system fails to stream.
pub fn replay(
    log: &TraceLog,
    config: HaloConfig,
) -> Result<(TaskMetrics, ReplayReport), ReplayError> {
    let task =
        Task::from_label(&log.task).ok_or_else(|| ReplayError::UnknownTask(log.task.clone()))?;
    let fingerprint = config.fingerprint();
    if fingerprint != log.config_fingerprint {
        return Err(ReplayError::ConfigMismatch {
            expected: log.config_fingerprint,
            got: fingerprint,
        });
    }
    let mut system = HaloSystem::new(task, config)?;
    let programmed = system.runtime().fabric().encoded_routes();
    if programmed != log.switch_words {
        return Err(ReplayError::FabricMismatch {
            expected: log.switch_words.clone(),
            got: programmed,
        });
    }
    let recording = Recording::from_samples(
        log.samples.clone(),
        log.channels as usize,
        log.sample_rate_hz,
    );
    let metrics = system.process(&recording)?;
    let stim = stim_records(&metrics);
    let report =
        Replayer::new(log.clone()).verify(&metrics.radio_stream, &metrics.detections, &stim);
    Ok((metrics, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_signal::{RecordingConfig, RegionProfile};

    fn run_once(task: Task, config: &HaloConfig, seed: u64) -> (TraceLog, TaskMetrics) {
        let rec = RecordingConfig::new(RegionProfile::arm())
            .channels(config.channels)
            .duration_ms(30)
            .generate(seed);
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        let metrics = sys.process(&rec).unwrap();
        (capture(&sys, &rec, &metrics), metrics)
    }

    #[test]
    fn capture_then_replay_is_bit_identical() {
        let config = HaloConfig::small_test(4);
        let (log, metrics) = run_once(Task::CompressLz4, &config, 11);
        assert!(!metrics.radio_stream.is_empty());
        let (replayed, report) = replay(&log, config).unwrap();
        assert!(report.identical(), "{report}");
        assert_eq!(replayed.radio_stream, metrics.radio_stream);
    }

    #[test]
    fn replay_round_trips_through_serialized_log() {
        let config = HaloConfig::small_test(4);
        let (log, _) = run_once(Task::SpikeDetectNeo, &config, 5);
        let text = log.write();
        let reread = TraceLog::read(&text).unwrap();
        let (_, report) = replay(&reread, config).unwrap();
        assert!(report.identical(), "{report}");
    }

    #[test]
    fn replay_rejects_mismatched_config() {
        let config = HaloConfig::small_test(4);
        let (log, _) = run_once(Task::EncryptRaw, &config, 3);
        let other = HaloConfig::small_test(4).channels(2);
        assert!(matches!(
            replay(&log, other),
            Err(ReplayError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn replay_detects_tampered_radio_bytes() {
        let config = HaloConfig::small_test(2);
        let (mut log, _) = run_once(Task::EncryptRaw, &config, 8);
        assert!(!log.radio.is_empty());
        log.radio[0] ^= 0xFF;
        let (_, report) = replay(&log, config).unwrap();
        assert!(!report.identical());
        assert_eq!(report.first_radio_divergence, Some(0));
    }
}
