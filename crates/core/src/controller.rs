//! The RISC-V micro-controller: switch programming and closed-loop
//! stimulation, run as real RV32 firmware on the [`halo_riscv`] simulator.

use std::sync::Arc;

use halo_noc::{Fabric, FabricError, Route};
use halo_riscv::asm::{Asm, AsmError};
use halo_riscv::bus::Mailbox;
use halo_riscv::{Cpu, CpuError, Memory, SystemBus};
use halo_telemetry::{Counter, Event, EventKind, NullSink, Scope, TelemetrySink};

/// MMIO address of the interconnect switch-programming register (§IV-E:
/// "we use instructions to write to general purpose IO pins that set the
/// switches dynamically").
pub const SWITCH_MMIO: u32 = 0x4000_0000;

/// MMIO address of the stimulation command register.
pub const STIM_MMIO: u32 = 0x4000_0010;

/// RAM address where the host stages the route-word table.
const TABLE_BASE: u32 = 0x800;

/// One stimulation pulse command decoded from a stim-register write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StimCommand {
    /// Electrode channel (0–15).
    pub channel: u8,
    /// Pulse amplitude in µA.
    pub amplitude_ua: u16,
}

impl StimCommand {
    /// Encodes the command as the 32-bit MMIO word the firmware writes.
    pub fn encode(&self) -> u32 {
        ((self.channel as u32) << 16) | self.amplitude_ua as u32
    }

    /// Decodes a stim-register write.
    pub fn decode(word: u32) -> Self {
        Self {
            channel: ((word >> 16) & 0xff) as u8,
            amplitude_ua: (word & 0xffff) as u16,
        }
    }
}

/// Errors raised by controller firmware.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// Firmware failed to assemble.
    Asm(AsmError),
    /// Firmware faulted.
    Cpu(CpuError),
    /// A programmed switch word was rejected by the fabric.
    Fabric(FabricError),
}

impl From<AsmError> for ControllerError {
    fn from(e: AsmError) -> Self {
        Self::Asm(e)
    }
}

impl From<CpuError> for ControllerError {
    fn from(e: CpuError) -> Self {
        Self::Cpu(e)
    }
}

impl From<FabricError> for ControllerError {
    fn from(e: FabricError) -> Self {
        Self::Fabric(e)
    }
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Asm(e) => write!(f, "controller firmware: {e}"),
            Self::Cpu(e) => write!(f, "controller fault: {e}"),
            Self::Fabric(e) => write!(f, "switch programming: {e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

/// The on-board micro-controller.
///
/// Each service routine is a small RV32 program assembled with
/// [`halo_riscv::asm::Asm`] and executed on a fresh [`Cpu`] over a 64 KB
/// [`Memory`] (the §IV-E/§V-A configuration). MMIO writes land in
/// mailboxes that the host (the hardware around the core) drains — into
/// the switch fabric or the stimulation engine.
pub struct Controller {
    cycles: u64,
    instructions: u64,
    sink: Arc<dyn TelemetrySink>,
    /// Frame index the surrounding system says we are at (timestamps for
    /// telemetry events; the controller itself has no frame clock).
    frame_hint: u64,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("cycles", &self.cycles)
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl Default for Controller {
    fn default() -> Self {
        Self {
            cycles: 0,
            instructions: 0,
            sink: Arc::new(NullSink),
            frame_hint: 0,
        }
    }
}

impl Controller {
    /// Creates a controller with zeroed activity counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry sink; service routines report retired
    /// cycles/instructions, switch words, and stimulation pulses to it.
    pub fn attach_telemetry(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink = sink;
    }

    /// Tells the controller what sample-frame index the device is at, so
    /// telemetry events it emits are placed on the timeline.
    pub fn note_frame(&mut self, frame: u64) {
        self.frame_hint = frame;
    }

    /// Cycles consumed by all service routines so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired by all service routines so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Tears down and programs the interconnect switches for `routes`,
    /// running the switch-programming firmware and applying every MMIO
    /// write to `fabric`.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError`] if firmware fails or the fabric rejects
    /// a word.
    pub fn program_switches(
        &mut self,
        fabric: &mut Fabric,
        routes: &[Route],
    ) -> Result<(), ControllerError> {
        // Firmware: write CLEAR, then copy `count` words from the staged
        // table to the switch register.
        let mut a = Asm::new();
        a.li(5, SWITCH_MMIO as i32);
        a.sw(5, 0, 0); // x0 = WORD_CLEAR
        a.li(6, TABLE_BASE as i32);
        a.li(7, routes.len() as i32);
        a.label("loop");
        a.beq(7, 0, "done");
        a.lw(8, 6, 0);
        a.sw(5, 8, 0);
        a.addi(6, 6, 4);
        a.addi(7, 7, -1);
        a.j("loop");
        a.label("done");
        a.ecall();
        let program = a.assemble(0)?;
        let table: Vec<u32> = routes.iter().map(|r| Fabric::encode_route(*r)).collect();

        let mut bus = SystemBus::new(Memory::halo_default());
        bus.attach(Box::new(Mailbox::new(SWITCH_MMIO)));
        bus.load_program(0, &program);
        for (i, &w) in table.iter().enumerate() {
            bus.store32(TABLE_BASE + 4 * i as u32, w);
        }
        let mut cpu = Cpu::new();
        let result = cpu.run(&mut bus, 1_000_000)?;
        self.cycles += result.cycles;
        self.instructions += result.instructions;

        let words = drain_mailbox(&mut bus);
        let word_count = words.len() as u64;
        for w in words {
            fabric.program(w)?;
        }
        if self.sink.enabled() {
            let scope = Scope::Controller;
            self.sink.add(scope, Counter::BusyCycles, result.cycles);
            self.sink
                .add(scope, Counter::Instructions, result.instructions);
            self.sink.add(scope, Counter::SwitchPrograms, 1);
            self.sink.add(scope, Counter::SwitchWords, word_count);
            self.sink.event(Event {
                frame: self.frame_hint,
                kind: EventKind::SwitchProgram {
                    words: word_count as u32,
                    generation: fabric.generation(),
                },
            });
        }
        Ok(())
    }

    /// Issues stimulation pulses on channels `0..channels` at
    /// `amplitude_ua`, as the closed-loop handler does when a detector
    /// fires (§IV-E: stimulation "occurs rarely and requires more complex
    /// decision-making … appropriate for software").
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError`] if firmware fails.
    ///
    /// # Panics
    ///
    /// Panics if `channels` exceeds 16 (§V-A limit).
    pub fn stimulate(
        &mut self,
        channels: usize,
        amplitude_ua: u16,
    ) -> Result<Vec<StimCommand>, ControllerError> {
        assert!(channels <= 16, "at most 16 stimulation channels");
        // Firmware: for ch in 0..channels: write (ch << 16) | amplitude.
        let mut a = Asm::new();
        a.li(5, STIM_MMIO as i32);
        a.li(6, 0); // ch
        a.li(7, channels as i32);
        a.li(9, amplitude_ua as i32);
        a.label("loop");
        a.beq(6, 7, "done");
        a.slli(8, 6, 16);
        a.or(8, 8, 9);
        a.sw(5, 8, 0);
        a.addi(6, 6, 1);
        a.j("loop");
        a.label("done");
        a.ecall();
        let program = a.assemble(0)?;

        let mut bus = SystemBus::new(Memory::halo_default());
        bus.attach(Box::new(Mailbox::new(STIM_MMIO)));
        bus.load_program(0, &program);
        let mut cpu = Cpu::new();
        let result = cpu.run(&mut bus, 1_000_000)?;
        self.cycles += result.cycles;
        self.instructions += result.instructions;

        let commands: Vec<StimCommand> = drain_mailbox(&mut bus)
            .into_iter()
            .map(StimCommand::decode)
            .collect();
        if self.sink.enabled() {
            let scope = Scope::Controller;
            self.sink.add(scope, Counter::BusyCycles, result.cycles);
            self.sink
                .add(scope, Counter::Instructions, result.instructions);
            self.sink
                .add(scope, Counter::StimPulses, commands.len() as u64);
            for c in &commands {
                self.sink.event(Event {
                    frame: self.frame_hint,
                    kind: EventKind::Stim {
                        channel: c.channel,
                        amplitude_ua: c.amplitude_ua as u32,
                    },
                });
            }
        }
        Ok(commands)
    }
}

/// Drains the mailbox attached at device index 0.
fn drain_mailbox(bus: &mut SystemBus) -> Vec<u32> {
    bus.device(0)
        .and_then(|d| d.as_any_mut().downcast_mut::<Mailbox>())
        .map(Mailbox::drain)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_noc::NodeId;

    #[test]
    fn firmware_programs_routes_through_mmio() {
        let routes = vec![
            Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            },
            Route {
                from: NodeId(1),
                to: NodeId(2),
                to_port: 1,
            },
        ];
        let mut fabric = Fabric::new();
        let mut mcu = Controller::new();
        mcu.program_switches(&mut fabric, &routes).unwrap();
        assert_eq!(fabric.routes(), &routes[..]);
        assert!(mcu.cycles() > 0);
    }

    #[test]
    fn reprogramming_clears_previous_configuration() {
        let mut fabric = Fabric::new();
        let mut mcu = Controller::new();
        let first = vec![Route {
            from: NodeId(0),
            to: NodeId(1),
            to_port: 0,
        }];
        let second = vec![Route {
            from: NodeId(2),
            to: NodeId(3),
            to_port: 0,
        }];
        mcu.program_switches(&mut fabric, &first).unwrap();
        mcu.program_switches(&mut fabric, &second).unwrap();
        assert_eq!(fabric.routes(), &second[..]);
    }

    #[test]
    fn stimulation_firmware_emits_commands() {
        let mut mcu = Controller::new();
        let commands = mcu.stimulate(4, 500).unwrap();
        assert_eq!(commands.len(), 4);
        for (ch, c) in commands.iter().enumerate() {
            assert_eq!(c.channel as usize, ch);
            assert_eq!(c.amplitude_ua, 500);
        }
    }

    #[test]
    #[should_panic(expected = "at most 16")]
    fn stim_channel_limit_enforced() {
        let mut mcu = Controller::new();
        let _ = mcu.stimulate(17, 100);
    }

    #[test]
    fn stim_command_encoding_round_trips() {
        let c = StimCommand {
            channel: 11,
            amplitude_ua: 1234,
        };
        assert_eq!(StimCommand::decode(c.encode()), c);
    }
}
