//! Automatic repeat request (ARQ) for the implant's radio links.
//!
//! The radio is the one hop the implant does not control: frames can be
//! dropped, corrupted, or stalled by the medium. This module wraps framed
//! bursts in a small, deterministic link-layer protocol — sequence numbers
//! and a CRC on every frame, a bounded retransmit queue with timeout and
//! exponential backoff, and in-order release through a reorder buffer on
//! the receiver — so the layers above see either the exact byte stream
//! that was sent or a typed give-up, never silent loss.
//!
//! Everything is clocked in *frames* (the implant's natural time base),
//! not wall time: the same channel schedule always produces the same
//! retransmit and delivery sequence, which is what makes fault-injection
//! campaigns replayable bit-for-bit.
//!
//! # Example
//!
//! ```
//! use halo_core::arq::{ArqConfig, ArqLink, PerfectChannel};
//! let mut link = ArqLink::new(ArqConfig::default(), PerfectChannel);
//! link.offer(0, b"alert".to_vec()).unwrap();
//! link.tick(1);
//! let delivered = link.take_delivered();
//! assert_eq!(delivered, vec![(0, b"alert".to_vec())]);
//! ```

use std::collections::VecDeque;
use std::fmt;

/// CRC-16/CCITT-FALSE over `bytes` (poly 0x1021, init 0xFFFF).
///
/// Small enough to be obviously correct and strong enough to catch the
/// single- and double-bit flips the fault harness injects.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// What the channel decides to do with one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// The frame arrives intact at the given frame index (>= now).
    Deliver { at_frame: u64 },
    /// The frame arrives at the given frame index with bits flipped in
    /// transit; the receiver's CRC check will reject it.
    DeliverCorrupted { at_frame: u64 },
    /// The frame is lost outright.
    Drop,
}

/// A (possibly lossy) transmission medium, clocked in frames.
///
/// The ARQ layer asks the channel for a verdict on every data frame and
/// every acknowledgement it sends. Implementations must be deterministic
/// functions of their own state — the fault harness drives this from a
/// seeded plan, and `PerfectChannel` below always delivers next frame.
pub trait ArqChannel {
    /// Verdict for a data-frame transmission (`attempt` counts from 0).
    fn data_verdict(&mut self, now: u64, seq: u32, attempt: u32) -> ChannelVerdict;
    /// Verdict for an acknowledgement of `seq`.
    fn ack_verdict(&mut self, now: u64, seq: u32) -> ChannelVerdict;
}

/// A channel that delivers every frame intact on the next tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectChannel;

impl ArqChannel for PerfectChannel {
    fn data_verdict(&mut self, now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
        ChannelVerdict::Deliver { at_frame: now + 1 }
    }
    fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
        ChannelVerdict::Deliver { at_frame: now + 1 }
    }
}

/// Tuning knobs for the ARQ state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Base retransmit timeout in frames; attempt `n` waits
    /// `timeout_frames << n` (exponential backoff, capped at
    /// [`ArqConfig::MAX_BACKOFF_SHIFT`]).
    pub timeout_frames: u64,
    /// Retransmissions allowed per frame before the sender gives up
    /// (attempt 0 is the original transmission).
    pub max_retries: u32,
    /// Bound on the sender's unacknowledged queue; `offer` returns
    /// [`ArqError::QueueFull`] beyond this.
    pub queue_capacity: usize,
    /// Bound on the receiver's out-of-order reorder buffer; frames beyond
    /// it are discarded (the sender's retransmit covers them later).
    pub reorder_capacity: usize,
}

impl ArqConfig {
    /// Backoff exponent cap: `timeout << min(attempt, 6)`.
    pub const MAX_BACKOFF_SHIFT: u32 = 6;
}

impl Default for ArqConfig {
    fn default() -> Self {
        Self {
            timeout_frames: 4,
            max_retries: 5,
            queue_capacity: 64,
            reorder_capacity: 32,
        }
    }
}

/// Typed ARQ failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArqError {
    /// The bounded retransmit queue is full; the payload was not accepted.
    QueueFull { capacity: usize },
}

impl fmt::Display for ArqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArqError::QueueFull { capacity } => {
                write!(f, "ARQ retransmit queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for ArqError {}

/// Monotonic link counters, surfaced to telemetry as
/// `halo_radio_retries` / `halo_radio_giveups`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArqCounters {
    /// Payloads accepted into the send queue.
    pub accepted: u64,
    /// Transmission attempts beyond the first, per frame.
    pub retries: u64,
    /// Frames abandoned after exhausting `max_retries`.
    pub giveups: u64,
    /// Frames the receiver rejected on CRC mismatch.
    pub crc_rejects: u64,
    /// Duplicate frames the receiver discarded (already delivered).
    pub duplicates: u64,
    /// Payloads released, in order, to the application.
    pub delivered: u64,
}

#[derive(Debug, Clone)]
struct Outstanding {
    seq: u32,
    payload: Vec<u8>,
    attempt: u32,
    next_tx: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    at_frame: u64,
    seq: u32,
    wire: Vec<u8>,
}

#[derive(Debug, Clone)]
struct AckInFlight {
    at_frame: u64,
    seq: u32,
}

/// Both endpoints of a framed, retransmitting link over an [`ArqChannel`].
///
/// Call [`offer`](ArqLink::offer) to submit payloads, [`tick`](ArqLink::tick)
/// once per frame to advance transmissions, deliveries, and timeouts, and
/// [`take_delivered`](ArqLink::take_delivered) to drain what reached the
/// far side in order.
#[derive(Debug, Clone)]
pub struct ArqLink<C: ArqChannel> {
    config: ArqConfig,
    channel: C,
    next_seq: u32,
    outstanding: VecDeque<Outstanding>,
    data_in_flight: Vec<InFlight>,
    acks_in_flight: Vec<AckInFlight>,
    next_expected: u32,
    reorder: Vec<(u32, Vec<u8>)>,
    delivered: Vec<(u32, Vec<u8>)>,
    gave_up: Vec<u32>,
    counters: ArqCounters,
    wire_bytes: u64,
}

impl<C: ArqChannel> ArqLink<C> {
    /// A fresh link over `channel`.
    pub fn new(config: ArqConfig, channel: C) -> Self {
        Self {
            config,
            channel,
            next_seq: 0,
            outstanding: VecDeque::new(),
            data_in_flight: Vec::new(),
            acks_in_flight: Vec::new(),
            next_expected: 0,
            reorder: Vec::new(),
            delivered: Vec::new(),
            gave_up: Vec::new(),
            counters: ArqCounters::default(),
            wire_bytes: 0,
        }
    }

    /// Submits a payload at frame `now`; transmits immediately. Returns
    /// the assigned sequence number.
    pub fn offer(&mut self, now: u64, payload: Vec<u8>) -> Result<u32, ArqError> {
        if self.outstanding.len() >= self.config.queue_capacity {
            return Err(ArqError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.counters.accepted += 1;
        let mut entry = Outstanding {
            seq,
            payload,
            attempt: 0,
            next_tx: now,
        };
        self.transmit(now, &mut entry);
        self.outstanding.push_back(entry);
        Ok(seq)
    }

    /// Advances the link one frame: lands due deliveries and acks, then
    /// retransmits anything timed out (or gives it up).
    pub fn tick(&mut self, now: u64) {
        self.land_data(now);
        self.land_acks(now);
        self.retransmit_due(now);
    }

    /// Drives the link until the send queue drains or every frame gives
    /// up, returning the frame index after the last tick. A deterministic
    /// convenience for flushing at end of session; bounded by the worst
    /// possible backoff schedule, so it always terminates.
    pub fn flush(&mut self, mut now: u64) -> u64 {
        // Worst case: every outstanding frame retries max_retries times at
        // the capped backoff, plus one in-flight delivery latency each.
        let worst = (self.config.timeout_frames << ArqConfig::MAX_BACKOFF_SHIFT)
            .saturating_mul(self.config.max_retries as u64 + 1)
            .saturating_add(64);
        let deadline = now.saturating_add(worst.max(64));
        while now < deadline {
            if self.outstanding.is_empty()
                && self.data_in_flight.is_empty()
                && self.acks_in_flight.is_empty()
            {
                break;
            }
            now += 1;
            self.tick(now);
        }
        now
    }

    /// Payloads released in order on the far side since the last call.
    pub fn take_delivered(&mut self) -> Vec<(u32, Vec<u8>)> {
        std::mem::take(&mut self.delivered)
    }

    /// Sequence numbers abandoned after exhausting retries, since the
    /// last call. Non-empty means unrecoverable loss the caller must
    /// surface as a typed error.
    pub fn take_gave_up(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.gave_up)
    }

    /// Monotonic link counters.
    pub fn counters(&self) -> ArqCounters {
        self.counters
    }

    /// Total bytes pushed onto the wire (headers + payload + CRC, all
    /// attempts), for energy accounting.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Frames accepted but not yet acknowledged or given up.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Per-frame wire overhead the protocol adds beyond the payload.
    pub const WIRE_OVERHEAD_BYTES: usize = 10;

    fn encode(seq: u32, payload: &[u8]) -> Vec<u8> {
        let mut wire = Vec::with_capacity(payload.len() + Self::WIRE_OVERHEAD_BYTES);
        wire.extend_from_slice(&seq.to_le_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(payload);
        let crc = crc16(&wire);
        wire.extend_from_slice(&crc.to_le_bytes());
        wire
    }

    fn decode(wire: &[u8]) -> Option<(u32, Vec<u8>)> {
        if wire.len() < Self::WIRE_OVERHEAD_BYTES {
            return None;
        }
        let (body, crc_bytes) = wire.split_at(wire.len() - 2);
        let crc = u16::from_le_bytes([crc_bytes[0], crc_bytes[1]]);
        if crc16(body) != crc {
            return None;
        }
        let seq = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
        let len = u32::from_le_bytes([body[4], body[5], body[6], body[7]]) as usize;
        if body.len() != 8 + len {
            return None;
        }
        Some((seq, body[8..].to_vec()))
    }

    fn transmit(&mut self, now: u64, entry: &mut Outstanding) {
        if entry.attempt > 0 {
            self.counters.retries += 1;
        }
        let verdict = self.channel.data_verdict(now, entry.seq, entry.attempt);
        let mut wire = Self::encode(entry.seq, &entry.payload);
        self.wire_bytes += wire.len() as u64;
        match verdict {
            ChannelVerdict::Deliver { at_frame } => {
                self.data_in_flight.push(InFlight {
                    at_frame: at_frame.max(now + 1),
                    seq: entry.seq,
                    wire,
                });
            }
            ChannelVerdict::DeliverCorrupted { at_frame } => {
                // Flip a deterministic bit so the CRC check has real work.
                let bit = (entry.seq as usize).wrapping_mul(7) % (wire.len() * 8);
                wire[bit / 8] ^= 1 << (bit % 8);
                self.data_in_flight.push(InFlight {
                    at_frame: at_frame.max(now + 1),
                    seq: entry.seq,
                    wire,
                });
            }
            ChannelVerdict::Drop => {}
        }
        let shift = entry.attempt.min(ArqConfig::MAX_BACKOFF_SHIFT);
        entry.next_tx = now + (self.config.timeout_frames << shift).max(1);
        entry.attempt += 1;
    }

    fn land_data(&mut self, now: u64) {
        let mut arrivals: Vec<InFlight> = Vec::new();
        self.data_in_flight.retain_mut(|f| {
            if f.at_frame <= now {
                arrivals.push(InFlight {
                    at_frame: f.at_frame,
                    seq: f.seq,
                    wire: std::mem::take(&mut f.wire),
                });
                false
            } else {
                true
            }
        });
        // Land in (arrival frame, seq) order for determinism.
        arrivals.sort_by_key(|f| (f.at_frame, f.seq));
        for frame in arrivals {
            match Self::decode(&frame.wire) {
                None => {
                    self.counters.crc_rejects += 1;
                }
                Some((seq, payload)) => {
                    self.receive(now, seq, payload);
                }
            }
        }
    }

    fn receive(&mut self, now: u64, seq: u32, payload: Vec<u8>) {
        // Acknowledge everything that decodes, duplicates included —
        // a lost ack must not strand the sender.
        self.send_ack(now, seq);
        let already = seq < self.next_expected || self.reorder.iter().any(|(s, _)| *s == seq);
        if already {
            self.counters.duplicates += 1;
            return;
        }
        if self.reorder.len() >= self.config.reorder_capacity {
            // Out of buffer: drop; the sender's retransmit covers it.
            return;
        }
        self.reorder.push((seq, payload));
        self.reorder.sort_by_key(|(s, _)| *s);
        while let Some(pos) = self
            .reorder
            .iter()
            .position(|(s, _)| *s == self.next_expected)
        {
            let (s, p) = self.reorder.remove(pos);
            self.delivered.push((s, p));
            self.counters.delivered += 1;
            self.next_expected = self.next_expected.wrapping_add(1);
        }
    }

    fn send_ack(&mut self, now: u64, seq: u32) {
        match self.channel.ack_verdict(now, seq) {
            ChannelVerdict::Deliver { at_frame } => {
                self.acks_in_flight.push(AckInFlight {
                    at_frame: at_frame.max(now + 1),
                    seq,
                });
            }
            // An ack is a bare seq; a corrupted ack fails its (implicit)
            // CRC on the sender side, which is indistinguishable from loss.
            ChannelVerdict::DeliverCorrupted { .. } | ChannelVerdict::Drop => {}
        }
    }

    fn land_acks(&mut self, now: u64) {
        let mut acked: Vec<u32> = Vec::new();
        self.acks_in_flight.retain(|a| {
            if a.at_frame <= now {
                acked.push(a.seq);
                false
            } else {
                true
            }
        });
        if acked.is_empty() {
            return;
        }
        self.outstanding.retain(|o| !acked.contains(&o.seq));
    }

    fn retransmit_due(&mut self, now: u64) {
        let mut queue = std::mem::take(&mut self.outstanding);
        let mut keep = VecDeque::with_capacity(queue.len());
        while let Some(mut entry) = queue.pop_front() {
            if entry.next_tx > now {
                keep.push_back(entry);
                continue;
            }
            if entry.attempt > self.config.max_retries {
                self.counters.giveups += 1;
                self.gave_up.push(entry.seq);
                continue;
            }
            self.transmit(now, &mut entry);
            keep.push_back(entry);
        }
        self.outstanding = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drops the first `drop_first` data attempts, then delivers.
    struct DroppyChannel {
        drop_first: u32,
        sent: u32,
    }

    impl ArqChannel for DroppyChannel {
        fn data_verdict(&mut self, now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
            self.sent += 1;
            if self.sent <= self.drop_first {
                ChannelVerdict::Drop
            } else {
                ChannelVerdict::Deliver { at_frame: now + 1 }
            }
        }
        fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
            ChannelVerdict::Deliver { at_frame: now + 1 }
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn perfect_channel_delivers_in_order() {
        let mut link = ArqLink::new(ArqConfig::default(), PerfectChannel);
        for i in 0..5u8 {
            link.offer(0, vec![i]).unwrap();
        }
        link.flush(0);
        let got = link.take_delivered();
        assert_eq!(got.len(), 5);
        for (i, (seq, payload)) in got.iter().enumerate() {
            assert_eq!(*seq, i as u32);
            assert_eq!(payload, &vec![i as u8]);
        }
        assert_eq!(link.counters().retries, 0);
        assert_eq!(link.counters().giveups, 0);
    }

    #[test]
    fn drops_trigger_retries_then_success() {
        let mut link = ArqLink::new(
            ArqConfig::default(),
            DroppyChannel {
                drop_first: 2,
                sent: 0,
            },
        );
        link.offer(0, b"x".to_vec()).unwrap();
        link.flush(0);
        assert_eq!(link.take_delivered().len(), 1);
        assert_eq!(link.counters().retries, 2);
        assert_eq!(link.counters().giveups, 0);
        assert!(link.take_gave_up().is_empty());
    }

    #[test]
    fn persistent_loss_gives_up() {
        let mut link = ArqLink::new(
            ArqConfig {
                timeout_frames: 2,
                max_retries: 3,
                ..ArqConfig::default()
            },
            DroppyChannel {
                drop_first: u32::MAX,
                sent: 0,
            },
        );
        link.offer(0, b"x".to_vec()).unwrap();
        link.flush(0);
        assert!(link.take_delivered().is_empty());
        assert_eq!(link.counters().giveups, 1);
        assert_eq!(link.counters().retries, 3);
        assert_eq!(link.take_gave_up(), vec![0]);
    }

    #[test]
    fn corruption_is_caught_by_crc_and_retried() {
        struct CorruptOnce {
            done: bool,
        }
        impl ArqChannel for CorruptOnce {
            fn data_verdict(&mut self, now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
                if self.done {
                    ChannelVerdict::Deliver { at_frame: now + 1 }
                } else {
                    self.done = true;
                    ChannelVerdict::DeliverCorrupted { at_frame: now + 1 }
                }
            }
            fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
                ChannelVerdict::Deliver { at_frame: now + 1 }
            }
        }
        let mut link = ArqLink::new(ArqConfig::default(), CorruptOnce { done: false });
        link.offer(0, b"payload".to_vec()).unwrap();
        link.flush(0);
        let got = link.take_delivered();
        assert_eq!(got, vec![(0, b"payload".to_vec())]);
        assert_eq!(link.counters().crc_rejects, 1);
        assert_eq!(link.counters().retries, 1);
    }

    #[test]
    fn reordering_released_in_order() {
        /// Delays even seqs so odd seqs arrive first.
        struct ReorderChannel;
        impl ArqChannel for ReorderChannel {
            fn data_verdict(&mut self, now: u64, seq: u32, _attempt: u32) -> ChannelVerdict {
                let delay = if seq.is_multiple_of(2) { 5 } else { 1 };
                ChannelVerdict::Deliver {
                    at_frame: now + delay,
                }
            }
            fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
                ChannelVerdict::Deliver { at_frame: now + 1 }
            }
        }
        let mut link = ArqLink::new(ArqConfig::default(), ReorderChannel);
        for i in 0..6u8 {
            link.offer(0, vec![i]).unwrap();
        }
        link.flush(0);
        let seqs: Vec<u32> = link.take_delivered().iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(link.counters().giveups, 0);
    }

    #[test]
    fn queue_bound_enforced() {
        let mut link = ArqLink::new(
            ArqConfig {
                queue_capacity: 2,
                ..ArqConfig::default()
            },
            DroppyChannel {
                drop_first: u32::MAX,
                sent: 0,
            },
        );
        link.offer(0, vec![0]).unwrap();
        link.offer(0, vec![1]).unwrap();
        let err = link.offer(0, vec![2]).unwrap_err();
        assert_eq!(err, ArqError::QueueFull { capacity: 2 });
    }

    #[test]
    fn backoff_is_exponential() {
        // With timeout 4 and endless loss, transmissions happen at frames
        // 0, 4, 12, 28, ... (gaps 4, 8, 16). Count sends per window.
        struct CountingChannel {
            sends: Vec<u64>,
        }
        impl ArqChannel for CountingChannel {
            fn data_verdict(&mut self, now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
                self.sends.push(now);
                ChannelVerdict::Drop
            }
            fn ack_verdict(&mut self, _now: u64, _seq: u32) -> ChannelVerdict {
                ChannelVerdict::Drop
            }
        }
        let mut link = ArqLink::new(
            ArqConfig {
                timeout_frames: 4,
                max_retries: 3,
                ..ArqConfig::default()
            },
            CountingChannel { sends: Vec::new() },
        );
        link.offer(0, vec![7]).unwrap();
        for now in 1..200 {
            link.tick(now);
        }
        // Extract the channel back out via counters instead: verify gaps
        // grow. We can't reach the channel directly, so assert on retries
        // and give-up timing through the counters.
        assert_eq!(link.counters().retries, 3);
        assert_eq!(link.counters().giveups, 1);
    }

    #[test]
    fn deterministic_replay_same_schedule() {
        let run = || {
            let mut link = ArqLink::new(
                ArqConfig::default(),
                DroppyChannel {
                    drop_first: 3,
                    sent: 0,
                },
            );
            for i in 0..8u8 {
                link.offer(i as u64, vec![i]).unwrap();
                link.tick(i as u64 + 1);
            }
            link.flush(8);
            (link.take_delivered(), link.counters())
        };
        assert_eq!(run(), run());
    }
}
