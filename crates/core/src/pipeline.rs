//! Per-task PE graphs (Figure 2).

use crate::config::HaloConfig;
use crate::runtime::{Adapter, SourceRoute};
use crate::task::Task;
use halo_kernels::{BbfDesign, Dwt, Fft, LzMatcher, Threshold, XcorConfig};
use halo_noc::{NodeId, Route};
use halo_pe::pes::{
    AesPe, BbfMode, BbfPe, DwtMode, DwtPe, FftPe, GatePe, HjorthPe, InterleaverPe, LicPe, LzPe,
    MaMode, MaPe, NeoPe, RcPe, SvmPe, ThrPe, XcorPe, XcorVariant,
};
use halo_pe::ProcessingElement;

/// Errors raised while constructing a pipeline from a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A kernel rejected its configuration.
    BadConfig(String),
    /// A probe or calibration helper needs a detector stage this task's
    /// pipeline does not have.
    NoDetector {
        /// Label of the task whose pipeline lacks a detector.
        task: &'static str,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadConfig(msg) => write!(f, "invalid pipeline configuration: {msg}"),
            Self::NoDetector { task } => {
                write!(f, "pipeline for {task} has no detector stage to probe")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

fn bad<E: std::fmt::Display>(e: E) -> PipelineError {
    PipelineError::BadConfig(e.to_string())
}

/// A task's PE array plus its routing plan.
///
/// The routes are *not* yet programmed into a fabric — that is the
/// micro-controller's job (§IV-E): [`crate::Controller::program_switches`]
/// runs real RV32 firmware that pokes the switch MMIO register once per
/// route, and the resulting words configure the fabric the runtime
/// validates against the PE array.
pub struct Pipeline {
    /// The PE array, index = [`NodeId`].
    pub pes: Vec<Box<dyn ProcessingElement>>,
    /// Inter-PE circuit routes.
    pub routes: Vec<Route>,
    /// Where the ADC stream enters.
    pub sources: Vec<SourceRoute>,
    /// Node whose output feeds the radio, if any.
    pub radio_from: Option<NodeId>,
    /// Node whose flags feed the micro-controller, if any.
    pub mcu_from: Option<NodeId>,
    /// The classifier/detector node (for feature probing), if any.
    pub detector: Option<NodeId>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("pes", &self.pes.len())
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl Pipeline {
    /// Builds the PE graph for `task` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if any kernel rejects its parameters.
    pub fn build(task: Task, config: &HaloConfig) -> Result<Self, PipelineError> {
        match task {
            Task::SpikeDetectNeo => Self::spike_neo(config),
            Task::SpikeDetectDwt => Self::spike_dwt(config),
            Task::CompressLz4 => Self::compress_lz4(config),
            Task::CompressLzma => Self::compress_lzma(config),
            Task::CompressDwtma => Self::compress_dwtma(config),
            Task::MovementIntent => Self::movement(config),
            Task::SeizurePrediction => Self::seizure(config),
            Task::EncryptRaw => Self::encrypt(config),
        }
    }

    /// ADC → NEO → THR → GATE.ctrl; ADC → GATE.data; GATE → radio.
    fn spike_neo(config: &HaloConfig) -> Result<Self, PipelineError> {
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(NeoPe::with_channels(config.channels)),
            Box::new(ThrPe::new(Threshold::above(config.spike_threshold))),
            Box::new(GatePe::with_channels(
                config.spike_gate_hold,
                config.channels,
                1,
            )),
        ];
        Ok(Self {
            pes,
            routes: vec![
                Route {
                    from: NodeId(0),
                    to: NodeId(1),
                    to_port: 0,
                },
                Route {
                    from: NodeId(1),
                    to: NodeId(2),
                    to_port: 1,
                },
            ],
            sources: vec![
                SourceRoute {
                    to: NodeId(0),
                    port: 0,
                    adapter: Adapter::Direct,
                },
                SourceRoute {
                    to: NodeId(2),
                    port: 0,
                    adapter: Adapter::Direct,
                },
            ],
            radio_from: Some(NodeId(2)),
            mcu_from: Some(NodeId(1)),
            detector: Some(NodeId(1)),
        })
    }

    /// ADC → INTERLEAVER → DWT → THR → GATE.ctrl; INTERLEAVER → GATE.data.
    fn spike_dwt(config: &HaloConfig) -> Result<Self, PipelineError> {
        let dwt = Dwt::new(config.dwt_levels_spike).map_err(bad)?;
        let granule = dwt.block_multiple();
        let depth = config.interleave_depth.div_ceil(granule) * granule;
        // One THR flag covers 2^levels samples; scale the hold to match.
        let hold = config.spike_gate_hold.div_ceil(granule);
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(InterleaverPe::new(config.channels, depth)),
            Box::new(DwtPe::new(dwt, DwtMode::SpikeDetect, depth)),
            Box::new(ThrPe::new(Threshold::above(config.spike_threshold))),
            Box::new(GatePe::with_channels(hold, 1, granule)),
        ];
        Ok(Self {
            pes,
            routes: vec![
                Route {
                    from: NodeId(0),
                    to: NodeId(1),
                    to_port: 0,
                },
                Route {
                    from: NodeId(0),
                    to: NodeId(3),
                    to_port: 0,
                },
                Route {
                    from: NodeId(1),
                    to: NodeId(2),
                    to_port: 0,
                },
                Route {
                    from: NodeId(2),
                    to: NodeId(3),
                    to_port: 1,
                },
            ],
            sources: vec![SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            }],
            radio_from: Some(NodeId(3)),
            mcu_from: Some(NodeId(2)),
            detector: Some(NodeId(2)),
        })
    }

    /// ADC → INTERLEAVER → LZ → LIC → radio.
    fn compress_lz4(config: &HaloConfig) -> Result<Self, PipelineError> {
        let matcher = LzMatcher::new(config.lz_history).map_err(bad)?;
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(InterleaverPe::new(config.channels, config.interleave_depth)),
            Box::new(LzPe::new(matcher, config.block_bytes).from_samples()),
            Box::new(LicPe::new()),
        ];
        Ok(Self {
            pes,
            routes: vec![
                Route {
                    from: NodeId(0),
                    to: NodeId(1),
                    to_port: 0,
                },
                Route {
                    from: NodeId(1),
                    to: NodeId(2),
                    to_port: 0,
                },
            ],
            sources: vec![SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            }],
            radio_from: Some(NodeId(2)),
            mcu_from: None,
            detector: None,
        })
    }

    /// ADC → INTERLEAVER → LZ → MA → RC → radio.
    fn compress_lzma(config: &HaloConfig) -> Result<Self, PipelineError> {
        let matcher = LzMatcher::new(config.lz_history)
            .map_err(bad)?
            .with_min_match(8);
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(InterleaverPe::new(config.channels, config.interleave_depth)),
            Box::new(LzPe::new(matcher, config.block_bytes).from_samples()),
            Box::new(MaPe::new(MaMode::Lzma, config.counter_bits)),
            Box::new(RcPe::new()),
        ];
        Ok(Self {
            pes,
            routes: vec![
                Route {
                    from: NodeId(0),
                    to: NodeId(1),
                    to_port: 0,
                },
                Route {
                    from: NodeId(1),
                    to: NodeId(2),
                    to_port: 0,
                },
                Route {
                    from: NodeId(2),
                    to: NodeId(3),
                    to_port: 0,
                },
            ],
            sources: vec![SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            }],
            radio_from: Some(NodeId(3)),
            mcu_from: None,
            detector: None,
        })
    }

    /// ADC → INTERLEAVER → DWT → MA → RC → radio.
    fn compress_dwtma(config: &HaloConfig) -> Result<Self, PipelineError> {
        let levels = config.dwt_levels_compress;
        let dwt = Dwt::new(levels).map_err(bad)?;
        let block_samples = (config.block_bytes / 2).max(dwt.block_multiple());
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(InterleaverPe::new(config.channels, config.interleave_depth)),
            Box::new(DwtPe::new(dwt, DwtMode::Compress, block_samples)),
            Box::new(MaPe::new(MaMode::Dwt { levels }, config.counter_bits)),
            Box::new(RcPe::new()),
        ];
        Ok(Self {
            pes,
            routes: vec![
                Route {
                    from: NodeId(0),
                    to: NodeId(1),
                    to_port: 0,
                },
                Route {
                    from: NodeId(1),
                    to: NodeId(2),
                    to_port: 0,
                },
                Route {
                    from: NodeId(2),
                    to: NodeId(3),
                    to_port: 0,
                },
            ],
            sources: vec![SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            }],
            radio_from: Some(NodeId(3)),
            mcu_from: None,
            detector: None,
        })
    }

    /// ADC → FFT(beta band) → THR(below) → MCU (stimulation).
    fn movement(config: &HaloConfig) -> Result<Self, PipelineError> {
        let fft = Fft::new(config.fft_points).map_err(bad)?;
        let pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(FftPe::with_channels(
                fft,
                config.sample_rate_hz,
                vec![config.beta_band],
                config.channels,
                &config.analysis_channels,
                config.fft_decimate,
            )),
            Box::new(ThrPe::new(Threshold::below(config.movement_threshold))),
        ];
        Ok(Self {
            pes,
            routes: vec![Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            }],
            sources: vec![SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            }],
            radio_from: Some(NodeId(1)),
            mcu_from: Some(NodeId(1)),
            detector: Some(NodeId(1)),
        })
    }

    /// ADC → {FFT ∥ XCOR ∥ BBF} → SVM → MCU (stimulation) + radio alert.
    fn seizure(config: &HaloConfig) -> Result<Self, PipelineError> {
        let fft = Fft::new(config.fft_points).map_err(bad)?;
        let window = config.feature_window_frames();
        if !window.is_multiple_of(config.xcor_window) {
            return Err(PipelineError::BadConfig(format!(
                "xcor window {} must divide the feature window {window}",
                config.xcor_window
            )));
        }
        let xcor_config = XcorConfig::new(
            config.channels,
            config.xcor_window,
            config.xcor_lag,
            config.xcor_pairs(),
        )
        .map_err(bad)?;
        let bbf_design =
            BbfDesign::new(config.bbf_band.0, config.bbf_band.1, config.sample_rate_hz)
                .map_err(bad)?;
        let svm = SvmPe::with_ports(config.svm_or_placeholder(), config.svm_port_dims());
        let mut pes: Vec<Box<dyn ProcessingElement>> = vec![
            Box::new(FftPe::with_channels(
                fft,
                config.sample_rate_hz,
                config.seizure_bands.clone(),
                config.channels,
                &config.analysis_channels,
                config.fft_decimate,
            )),
            Box::new(XcorPe::new(xcor_config, XcorVariant::Streaming)),
            Box::new(BbfPe::with_channels(
                &bbf_design,
                BbfMode::Energy {
                    window_frames: window,
                },
                config.channels,
                &config.analysis_channels,
            )),
        ];
        let mut sources = vec![
            SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            },
            SourceRoute {
                to: NodeId(1),
                port: 0,
                adapter: Adapter::Direct,
            },
            SourceRoute {
                to: NodeId(2),
                port: 0,
                adapter: Adapter::Direct,
            },
        ];
        if config.use_hjorth {
            // The §VII extension PE slots in like any other: one more node,
            // one more source, one more SVM port.
            pes.push(Box::new(HjorthPe::new(
                config.channels,
                &config.analysis_channels,
                window,
            )));
            sources.push(SourceRoute {
                to: NodeId(3),
                port: 0,
                adapter: Adapter::Direct,
            });
        }
        let svm_node = NodeId(pes.len());
        pes.push(Box::new(svm));
        let mut routes = vec![
            Route {
                from: NodeId(0),
                to: svm_node,
                to_port: 0,
            },
            Route {
                from: NodeId(1),
                to: svm_node,
                to_port: 1,
            },
            Route {
                from: NodeId(2),
                to: svm_node,
                to_port: 2,
            },
        ];
        if config.use_hjorth {
            routes.push(Route {
                from: NodeId(3),
                to: svm_node,
                to_port: 3,
            });
        }
        Ok(Self {
            pes,
            routes,
            sources,
            radio_from: Some(svm_node),
            mcu_from: Some(svm_node),
            detector: Some(svm_node),
        })
    }

    /// ADC → AES → radio.
    fn encrypt(config: &HaloConfig) -> Result<Self, PipelineError> {
        let pes: Vec<Box<dyn ProcessingElement>> =
            vec![Box::new(AesPe::new(config.aes_key).from_samples())];
        Ok(Self {
            pes,
            routes: vec![],
            sources: vec![SourceRoute {
                to: NodeId(0),
                port: 0,
                adapter: Adapter::Direct,
            }],
            radio_from: Some(NodeId(0)),
            mcu_from: None,
            detector: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_noc::Fabric;

    #[test]
    fn every_task_builds_and_validates() {
        let config = HaloConfig::small_test(4);
        for task in Task::all() {
            let p = Pipeline::build(task, &config).unwrap_or_else(|e| {
                panic!("{task}: {e}");
            });
            let mut fabric = Fabric::new();
            for r in &p.routes {
                fabric.connect(*r).unwrap();
            }
            let refs: Vec<&dyn ProcessingElement> = p.pes.iter().map(|b| b.as_ref()).collect();
            fabric.validate(&refs).unwrap_or_else(|e| {
                panic!("{task}: {e}");
            });
        }
    }

    #[test]
    fn seizure_rejects_misaligned_windows() {
        let mut config = HaloConfig::small_test(4);
        config.xcor_window = 999; // does not divide 256 * 8
        assert!(Pipeline::build(Task::SeizurePrediction, &config).is_err());
    }

    #[test]
    fn compression_tasks_target_the_radio() {
        let config = HaloConfig::small_test(4);
        for task in [Task::CompressLz4, Task::CompressLzma, Task::CompressDwtma] {
            let p = Pipeline::build(task, &config).unwrap();
            assert!(p.radio_from.is_some(), "{task}");
            assert!(p.mcu_from.is_none(), "{task}");
        }
    }

    #[test]
    fn closed_loop_tasks_reach_the_mcu() {
        let config = HaloConfig::small_test(4);
        for task in [Task::MovementIntent, Task::SeizurePrediction] {
            let p = Pipeline::build(task, &config).unwrap();
            assert!(p.mcu_from.is_some(), "{task}");
        }
    }
}
