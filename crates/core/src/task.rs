//! The eight runtime-selectable BCI tasks.

use halo_pe::PeKind;

/// A BCI task HALO can be configured into (Figure 2).
///
/// "HALO can be configured by a doctor/technician at runtime into one of
/// eight distinct pipelines" (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Spike detection via the nonlinear energy operator.
    SpikeDetectNeo,
    /// Spike detection via recursive DWT.
    SpikeDetectDwt,
    /// Lossless compression: LZ → LIC.
    CompressLz4,
    /// Lossless compression: LZ → MA → RC.
    CompressLzma,
    /// Lossless compression: DWT → MA → RC.
    CompressDwtma,
    /// Movement-intent detection (beta-band desynchronization → stimulation).
    MovementIntent,
    /// Seizure prediction (FFT ∥ XCOR ∥ BBF → SVM → stimulation).
    SeizurePrediction,
    /// AES-128 encryption of the raw stream.
    EncryptRaw,
}

impl Task {
    /// All tasks in the paper's Figure 4/5 order.
    pub fn all() -> [Task; 8] {
        [
            Task::SpikeDetectNeo,
            Task::SpikeDetectDwt,
            Task::CompressLz4,
            Task::CompressLzma,
            Task::CompressDwtma,
            Task::MovementIntent,
            Task::SeizurePrediction,
            Task::EncryptRaw,
        ]
    }

    /// The paper's display label.
    pub fn label(&self) -> &'static str {
        match self {
            Task::SpikeDetectNeo => "SpikeDet(NEO)",
            Task::SpikeDetectDwt => "SpikeDet(DWT)",
            Task::CompressLz4 => "Compr(LZ4)",
            Task::CompressLzma => "Compr(LZMA)",
            Task::CompressDwtma => "Compr(DWTMA)",
            Task::MovementIntent => "MoveIntent",
            Task::SeizurePrediction => "SeizurePred",
            Task::EncryptRaw => "Encrypt(Raw)",
        }
    }

    /// Resolves a display label back to its task — the inverse of
    /// [`Task::label`], used when reloading captured trace logs.
    pub fn from_label(label: &str) -> Option<Task> {
        Task::all().into_iter().find(|t| t.label() == label)
    }

    /// The PEs the pipeline occupies (the Table IV task compositions).
    pub fn pe_kinds(&self) -> Vec<PeKind> {
        match self {
            Task::SpikeDetectNeo => vec![PeKind::Neo, PeKind::Thr, PeKind::Gate],
            Task::SpikeDetectDwt => vec![PeKind::Dwt, PeKind::Thr, PeKind::Gate],
            Task::CompressLz4 => vec![PeKind::Interleaver, PeKind::Lz, PeKind::Lic],
            Task::CompressLzma => {
                vec![PeKind::Interleaver, PeKind::Lz, PeKind::Ma, PeKind::Rc]
            }
            Task::CompressDwtma => {
                vec![PeKind::Interleaver, PeKind::Dwt, PeKind::Ma, PeKind::Rc]
            }
            Task::MovementIntent => vec![PeKind::Fft, PeKind::Thr, PeKind::Gate],
            Task::SeizurePrediction => vec![
                PeKind::Fft,
                PeKind::Xcor,
                PeKind::Bbf,
                PeKind::Svm,
                PeKind::Thr,
                PeKind::Gate,
            ],
            Task::EncryptRaw => vec![PeKind::Aes],
        }
    }

    /// Whether the task drives the neurostimulator (closed loop, §IV-E).
    pub fn uses_stimulation(&self) -> bool {
        matches!(self, Task::MovementIntent | Task::SeizurePrediction)
    }

    /// Whether the task produces a compressed, block-framed radio stream
    /// whose losslessness can be verified by decompression.
    pub fn is_compression(&self) -> bool {
        matches!(
            self,
            Task::CompressLz4 | Task::CompressLzma | Task::CompressDwtma
        )
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_tasks() {
        let labels: Vec<_> = Task::all().iter().map(|t| t.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn compositions_match_table_iv() {
        assert_eq!(
            Task::CompressLzma.pe_kinds(),
            vec![PeKind::Interleaver, PeKind::Lz, PeKind::Ma, PeKind::Rc]
        );
        assert!(Task::SeizurePrediction.pe_kinds().contains(&PeKind::Xcor));
        assert_eq!(Task::EncryptRaw.pe_kinds(), vec![PeKind::Aes]);
    }

    #[test]
    fn closed_loop_tasks_stimulate() {
        assert!(Task::SeizurePrediction.uses_stimulation());
        assert!(Task::MovementIntent.uses_stimulation());
        assert!(!Task::CompressLz4.uses_stimulation());
    }
}
