//! The assembled HALO device.

use std::sync::Arc;

use crate::config::HaloConfig;
use crate::controller::{Controller, ControllerError};
use crate::metrics::{PeActivity, StimEvent, TaskMetrics};
use crate::pipeline::{Pipeline, PipelineError};
use crate::power::PowerReport;
use crate::runtime::{Runtime, RuntimeError};
use crate::task::Task;
use halo_noc::Fabric;
use halo_pe::ProcessingElement;
use halo_signal::Recording;
use halo_telemetry::{
    AlertPolicy, ContinuousTelemetry, CycleProfile, Event, EventKind, HealthMonitor, NullSink,
    TelemetrySink, Tracer,
};

/// Errors raised while configuring or running the device.
#[derive(Debug)]
pub enum SystemError {
    /// The pipeline could not be constructed.
    Pipeline(PipelineError),
    /// The micro-controller failed to configure the device.
    Controller(ControllerError),
    /// Streaming failed.
    Runtime(RuntimeError),
    /// The recording geometry does not match the configuration.
    GeometryMismatch {
        /// Channels the device is configured for.
        expected: usize,
        /// Channels in the recording.
        got: usize,
    },
    /// A stimulation engine was configured beyond the §V-A electrode
    /// limit (the firmware asserts it; constructors reject it instead).
    StimChannels {
        /// Channels requested.
        got: usize,
        /// The hardware limit.
        max: usize,
    },
    /// The attached [`HealthMonitor`] runs under
    /// [`AlertPolicy::FailFast`] and a critical alert tripped it during
    /// the run; the post-mortem JSON is available from the monitor.
    Health {
        /// Name of the alert kind that tripped the monitor.
        alert: &'static str,
    },
    /// A calibration or training helper could not work with the supplied
    /// recording(s): an empty baseline, a recording without the episode
    /// classes it needs, or a single-class training set.
    Calibration {
        /// What the recording(s) were missing.
        what: String,
    },
    /// Seizure alerts were unrecoverably lost on the inter-device link:
    /// the ARQ layer exhausted its retries or the bounded send queue
    /// overflowed. Recoverable losses retransmit silently; *this* is the
    /// loss a closed-loop deployment must never ignore.
    AlertLoss {
        /// Alerts lost beyond recovery.
        lost: u64,
    },
}

impl From<PipelineError> for SystemError {
    fn from(e: PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<ControllerError> for SystemError {
    fn from(e: ControllerError) -> Self {
        Self::Controller(e)
    }
}

impl From<RuntimeError> for SystemError {
    fn from(e: RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pipeline(e) => write!(f, "{e}"),
            Self::Controller(e) => write!(f, "{e}"),
            Self::Runtime(e) => write!(f, "{e}"),
            Self::GeometryMismatch { expected, got } => {
                write!(f, "recording has {got} channels, device expects {expected}")
            }
            Self::StimChannels { got, max } => {
                write!(
                    f,
                    "{got} stimulation channels exceed the {max}-electrode limit"
                )
            }
            Self::Health { alert } => {
                write!(f, "health monitor tripped (fail-fast): {alert} alert")
            }
            Self::Calibration { what } => {
                write!(f, "calibration impossible: {what}")
            }
            Self::AlertLoss { lost } => {
                write!(
                    f,
                    "{lost} seizure alert(s) unrecoverably lost on the inter-device link"
                )
            }
        }
    }
}

impl std::error::Error for SystemError {}

/// Re-validates a firmware-programmed fabric against the PE array it will
/// drive. [`Controller::program_switches`] applies whatever words the
/// MMIO mailbox drained — the fabric accepts any well-formed word, so a
/// route off the installed array only surfaces here (as an `Err`, never a
/// runtime panic).
fn validate_programmed(
    fabric: &Fabric,
    pes: &[Box<dyn ProcessingElement>],
) -> Result<(), SystemError> {
    let refs: Vec<&dyn ProcessingElement> = pes.iter().map(|b| b.as_ref()).collect();
    fabric
        .validate(&refs)
        .map_err(|e| SystemError::Runtime(RuntimeError::Fabric(e)))
}

/// A configured HALO device running one task.
///
/// Construction mirrors the hardware bring-up of §IV-E: the pipeline's
/// routes are handed to the RISC-V micro-controller, whose firmware
/// programs the interconnect switches through MMIO; the resulting fabric
/// is validated against the PE array before any data flows.
pub struct HaloSystem {
    task: Task,
    config: HaloConfig,
    controller: Controller,
    runtime: Runtime,
    switches: usize,
    sink: Arc<dyn TelemetrySink>,
    health: Option<Arc<HealthMonitor>>,
    continuous: Option<Arc<ContinuousTelemetry>>,
    tracer: Option<Arc<Tracer>>,
    /// Whether [`HaloSystem::attach_profile`] armed the cycle profiler
    /// (re-armed across [`HaloSystem::reconfigure`]).
    profiled: bool,
    /// Profiles snapshotted from retired runtimes at reconfiguration,
    /// merged into [`HaloSystem::profile`] reads.
    profile_history: Vec<CycleProfile>,
}

impl std::fmt::Debug for HaloSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HaloSystem")
            .field("task", &self.task)
            .field("switches", &self.switches)
            .finish()
    }
}

impl HaloSystem {
    /// Configures the device for `task`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the pipeline, firmware, or fabric
    /// validation fails.
    pub fn new(task: Task, config: HaloConfig) -> Result<Self, SystemError> {
        if config.stim_channels > crate::distributed::MAX_STIM_CHANNELS {
            return Err(SystemError::StimChannels {
                got: config.stim_channels,
                max: crate::distributed::MAX_STIM_CHANNELS,
            });
        }
        let pipeline = Pipeline::build(task, &config)?;
        let mut controller = Controller::new();
        let mut fabric = Fabric::new();
        controller.program_switches(&mut fabric, &pipeline.routes)?;
        validate_programmed(&fabric, &pipeline.pes)?;
        let switches = fabric.switch_count();
        let runtime = Runtime::new(
            pipeline.pes,
            fabric,
            pipeline.sources,
            pipeline.radio_from,
            pipeline.mcu_from,
        )?;
        Ok(Self {
            task,
            config,
            controller,
            runtime,
            switches,
            sink: Arc::new(NullSink),
            health: None,
            continuous: None,
            tracer: None,
            profiled: false,
            profile_history: Vec::new(),
        })
    }

    /// Attaches a telemetry sink to the whole device: the runtime (per-PE
    /// counters, NoC and power windows), the micro-controller (cycle and
    /// stimulation accounting), and the system itself (detections). The
    /// sampling window is one feature window of the current configuration.
    /// Attach before [`HaloSystem::process`]; pass an
    /// `Arc<halo_telemetry::Recorder>` to actually capture data.
    pub fn attach_telemetry(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.runtime.attach_telemetry(
            sink.clone(),
            self.config.sample_rate_hz,
            self.config.feature_window_frames() as u64,
        );
        self.controller.attach_telemetry(sink.clone());
        if sink.enabled() {
            sink.event(Event {
                frame: self.runtime.frames(),
                kind: EventKind::Marker {
                    name: self.task.label(),
                },
            });
        }
        self.sink = sink;
        // A tracer attached first streams its span events into whichever
        // sink arrived second — wire it up regardless of attach order.
        if let Some(tracer) = &self.tracer {
            if self.sink.enabled() {
                tracer.set_sink(self.sink.clone());
            }
        }
    }

    /// Attaches a [`HealthMonitor`] as the device's telemetry sink and
    /// keeps a typed handle so [`HaloSystem::process`] can report runtime
    /// errors to its flight recorder and honor
    /// [`AlertPolicy::FailFast`]. If a tracer is attached (either order),
    /// the monitor gains the escalation hook: critical alerts force-sample
    /// the next frames and post-mortems carry assembled span trees.
    pub fn attach_health(&mut self, monitor: Arc<HealthMonitor>) {
        self.attach_telemetry(monitor.clone());
        if let Some(tracer) = &self.tracer {
            monitor.set_tracer(tracer.clone());
        }
        self.health = Some(monitor);
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<&Arc<HealthMonitor>> {
        self.health.as_ref()
    }

    /// Attaches a [`ContinuousTelemetry`] layer as the device's telemetry
    /// sink. The layer decorates its [`HealthMonitor`] — every counter and
    /// event still reaches the watchdog and flight recorder — while also
    /// scraping power windows, closed-loop latencies, FIFO depths, and
    /// radio throughput into its embedded time-series store, judging SLO
    /// error budgets, and running drift detection. [`HaloSystem::process`]
    /// flushes the layer (closing the trailing power window and polling
    /// the SLO/anomaly engines) before it returns.
    pub fn attach_continuous(&mut self, continuous: Arc<ContinuousTelemetry>) {
        let monitor = continuous.monitor().clone();
        self.attach_telemetry(continuous.clone());
        if let Some(tracer) = &self.tracer {
            monitor.set_tracer(tracer.clone());
        }
        self.health = Some(monitor);
        self.continuous = Some(continuous);
    }

    /// The attached continuous-telemetry layer, if any.
    pub fn continuous(&self) -> Option<&Arc<ContinuousTelemetry>> {
        self.continuous.as_ref()
    }

    /// Attaches a causal tracer to the device: the runtime samples and
    /// tags frames, stimulation pulses are attributed back to the trace
    /// that detected them, and [`HaloSystem::process`] finalizes all open
    /// traces before returning. If a telemetry sink or health monitor is
    /// attached (either order), span events stream into it and critical
    /// alerts escalate the sampling rate.
    pub fn attach_tracing(&mut self, tracer: Arc<Tracer>) {
        self.runtime.attach_tracing(tracer.clone());
        if self.sink.enabled() {
            tracer.set_sink(self.sink.clone());
        }
        if let Some(monitor) = &self.health {
            monitor.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Arms the always-on-capable cycle profiler: every frame streamed
    /// from here on accrues hierarchical cycle/energy attribution
    /// (pipeline → PE → kernel phase) under the current task's label.
    /// Survives [`HaloSystem::reconfigure`] — each retired runtime's
    /// profile is snapshotted and merged into [`HaloSystem::profile`]
    /// reads, so a multi-task session profiles every pipeline it ran.
    pub fn attach_profile(&mut self) {
        self.runtime
            .attach_profile(self.task.label(), self.config.sample_rate_hz);
        self.profiled = true;
    }

    /// Whether the cycle profiler is armed.
    pub fn profile_attached(&self) -> bool {
        self.profiled
    }

    /// The accumulated [`CycleProfile`] rooted at `device`, merging every
    /// reconfiguration epoch with the live runtime's attribution. `None`
    /// unless [`HaloSystem::attach_profile`] armed the profiler.
    pub fn profile(&self, device: &str) -> Option<CycleProfile> {
        if !self.profiled {
            return None;
        }
        let mut out = CycleProfile::new(device);
        for epoch in &self.profile_history {
            out.merge(epoch);
        }
        if let Some(current) = self.runtime.profile_snapshot(device) {
            out.merge(&current);
        }
        Some(out)
    }

    /// Enables or disables the runtime's batched quiet-frame dispatch
    /// (on by default) — see [`Runtime::set_block_dispatch`].
    pub fn set_block_dispatch(&mut self, on: bool) {
        self.runtime.set_block_dispatch(on);
    }

    /// The running task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Reconfigures the device to a different task at runtime — the
    /// doctor/technician workflow of §IV ("HALO can be configured … at
    /// runtime into one of eight distinct pipelines"). The same
    /// micro-controller tears down the old routes and programs the new
    /// ones; its cycle counters accumulate across reconfigurations.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the new pipeline or firmware fails; on
    /// error the device is left unconfigured and must be reconfigured
    /// again before use.
    pub fn reconfigure(&mut self, task: Task) -> Result<(), SystemError> {
        // Bank the retiring runtime's attribution before it is dropped;
        // the device root is applied at read time, so the placeholder
        // here never surfaces.
        if self.profiled {
            if let Some(epoch) = self.runtime.profile_snapshot("") {
                self.profile_history.push(epoch);
            }
        }
        let pipeline = Pipeline::build(task, &self.config)?;
        let mut fabric = Fabric::new();
        self.controller
            .program_switches(&mut fabric, &pipeline.routes)?;
        validate_programmed(&fabric, &pipeline.pes)?;
        self.switches = fabric.switch_count();
        self.runtime = Runtime::new(
            pipeline.pes,
            fabric,
            pipeline.sources,
            pipeline.radio_from,
            pipeline.mcu_from,
        )?;
        self.task = task;
        // The new runtime starts with a NullSink; re-wire the attached
        // telemetry (which also emits a task marker for the trace) and the
        // causal tracer, which keeps accumulating across reconfigurations.
        if self.sink.enabled() {
            self.attach_telemetry(self.sink.clone());
        }
        if let Some(tracer) = self.tracer.clone() {
            self.runtime.attach_tracing(tracer);
        }
        if self.profiled {
            self.runtime
                .attach_profile(self.task.label(), self.config.sample_rate_hz);
        }
        Ok(())
    }

    /// The device configuration.
    pub fn config(&self) -> &HaloConfig {
        &self.config
    }

    /// Streams a recording through the pipeline and collects metrics.
    ///
    /// Closed-loop tasks invoke the stimulation handler (real RV32
    /// firmware) for each positive detection, with a one-feature-window
    /// refractory period.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] on geometry mismatch or streaming failure.
    pub fn process(&mut self, recording: &Recording) -> Result<TaskMetrics, SystemError> {
        if recording.channels() != self.config.channels {
            return Err(SystemError::GeometryMismatch {
                expected: self.config.channels,
                got: recording.channels(),
            });
        }
        self.push_block(recording.samples())?;
        self.finalize()
    }

    /// Streams one block of frame-major samples (`channels` samples per
    /// frame) through the pipeline without ending the stream — the
    /// incremental half of [`HaloSystem::process`]. A fleet scheduler
    /// interleaves batches from many devices this way, calling
    /// [`HaloSystem::finalize`] once per device when its stream ends.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Runtime`] on a streaming failure (also
    /// reported to the attached health monitor's flight recorder).
    pub fn push_block(&mut self, samples: &[i16]) -> Result<(), SystemError> {
        if let Err(e) = self.runtime.push_block(samples, self.config.channels) {
            if let Some(monitor) = &self.health {
                monitor.note_runtime_error(&e.to_string(), self.runtime.frames());
            }
            return Err(e.into());
        }
        Ok(())
    }

    /// Ends the stream and collects metrics: drains the PE array, replays
    /// closed-loop stimulation, finalizes open traces, and honors a
    /// fail-fast health monitor. [`HaloSystem::process`] is exactly
    /// [`HaloSystem::push_block`] over the whole recording followed by
    /// this call.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] on a draining failure, firmware error, or a
    /// tripped fail-fast monitor.
    pub fn finalize(&mut self) -> Result<TaskMetrics, SystemError> {
        if let Err(e) = self.runtime.finish() {
            if let Some(monitor) = &self.health {
                monitor.note_runtime_error(&e.to_string(), self.runtime.frames());
            }
            return Err(e.into());
        }

        // Closed-loop stimulation with a refractory window.
        let mut stim_events = Vec::new();
        if self.task.uses_stimulation() && self.config.stim_channels > 0 {
            let refractory = self.config.feature_window_frames() as u64;
            let warmup = (self.config.warmup_windows * self.config.feature_window_frames()) as u64;
            let mut last: Option<u64> = None;
            let flags: Vec<(u64, bool)> = self.runtime.mcu_flags().to_vec();
            for (frame, flag) in flags {
                if !flag || frame <= warmup {
                    continue;
                }
                if last.is_some_and(|l| frame.saturating_sub(l) < refractory) {
                    continue;
                }
                last = Some(frame);
                if self.sink.enabled() {
                    self.sink.event(Event {
                        frame,
                        kind: EventKind::Detection { positive: true },
                    });
                }
                self.controller.note_frame(frame);
                let cycles_before = self.controller.cycles();
                let commands = self
                    .controller
                    .stimulate(self.config.stim_channels, 500)
                    .map_err(SystemError::Controller)?;
                // Detection-to-pulse latency: firmware cycles at the
                // 25 MHz controller anchor, projected onto the sample
                // timeline (rounded up — a partial frame is a frame).
                let cycle_delta = self.controller.cycles() - cycles_before;
                let controller_hz = halo_power::controller_anchor().freq_mhz * 1.0e6;
                let latency_frames = (cycle_delta as f64 * self.config.sample_rate_hz as f64
                    / controller_hz)
                    .ceil() as u64;
                if self.sink.enabled() {
                    self.sink.event(Event {
                        frame,
                        kind: EventKind::ClosedLoop {
                            detect_frame: frame,
                            latency_frames,
                        },
                    });
                }
                if let Some(tracer) = &self.tracer {
                    // Attribute the pulse to the trace whose frame drove
                    // the detection: stimulation latency in wall time.
                    let latency_ns =
                        (latency_frames as f64 * 1.0e9 / self.config.sample_rate_hz as f64) as u64;
                    tracer.note_stim(frame, self.config.stim_channels as u32, latency_ns);
                }
                stim_events.push(StimEvent {
                    frame,
                    commands,
                    latency_frames,
                });
            }
        }
        if let Some(tracer) = &self.tracer {
            tracer.finalize_all();
        }
        // Close the trailing power window and poll the SLO/anomaly engines
        // so end-of-run status and any fail-fast decision below see the
        // complete series.
        if let Some(continuous) = &self.continuous {
            continuous.flush();
        }

        // Under a fail-fast policy a tripped monitor aborts the run; the
        // post-mortem dump stays available on the monitor.
        if let Some(monitor) = &self.health {
            if monitor.tripped() && matches!(monitor.config().policy, AlertPolicy::FailFast) {
                let alert = monitor
                    .status()
                    .alerts
                    .iter()
                    .find(|a| a.severity() == halo_telemetry::Severity::Critical)
                    .map(|a| a.kind().name())
                    .unwrap_or("critical");
                return Err(SystemError::Health { alert });
            }
        }

        let frames = self.runtime.frames();
        let duration_s = frames as f64 / self.config.sample_rate_hz as f64;
        let radio_stream = self.runtime.radio_stream().to_vec();
        let pe_activity = self
            .runtime
            .slot_totals()
            .iter()
            .zip(self.runtime.pes())
            .enumerate()
            .map(|(slot, (t, pe))| PeActivity {
                slot,
                name: pe.kind().name(),
                busy_cycles: t.busy_cycles,
                stall_cycles: t.stall_cycles,
                bytes_in: t.bytes_in,
                bytes_out: t.bytes_out,
                fifo_high_water: pe.output_fifo().map_or(0, |f| f.high_water() as u64),
            })
            .collect();
        Ok(TaskMetrics {
            task: self.task,
            frames,
            duration_s,
            input_bytes: frames * self.config.channels as u64 * 2,
            radio_bytes: radio_stream.len() as u64,
            radio_stream,
            detections: self.runtime.mcu_flags().to_vec(),
            stim_events,
            bus_bytes: self.runtime.fabric().bus_bytes(),
            switches: self.switches,
            controller_cycles: self.controller.cycles(),
            pe_activity,
        })
    }

    /// The power report for a finished run.
    pub fn power_report(&self, metrics: &TaskMetrics) -> PowerReport {
        PowerReport::compute(self.task, &self.config, metrics, self.runtime.pes())
    }

    /// Direct access to the runtime (probing, statistics).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// Direct access to the runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_signal::{RecordingConfig, RegionProfile};

    fn recording(channels: usize, ms: usize, seed: u64) -> Recording {
        RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(ms)
            .generate(seed)
    }

    #[test]
    fn every_task_configures() {
        let config = HaloConfig::small_test(4);
        for task in Task::all() {
            HaloSystem::new(task, config.clone()).unwrap_or_else(|e| panic!("{task}: {e}"));
        }
    }

    #[test]
    fn runtime_reconfiguration_switches_tasks() {
        let config = HaloConfig::small_test(4);
        let rec = recording(4, 20, 9);
        let mut sys = HaloSystem::new(Task::CompressLz4, config).unwrap();
        let m1 = sys.process(&rec).unwrap();
        assert_eq!(m1.task, Task::CompressLz4);
        let cycles_after_first = m1.controller_cycles;

        sys.reconfigure(Task::EncryptRaw).unwrap();
        assert_eq!(sys.task(), Task::EncryptRaw);
        let m2 = sys.process(&rec).unwrap();
        assert_eq!(m2.task, Task::EncryptRaw);
        // Encryption transmits everything; compression transmitted less.
        assert!(m2.radio_bytes >= m1.radio_bytes);
        // The controller's odometer accumulated the reprogramming work.
        assert!(m2.controller_cycles > cycles_after_first);
    }

    /// A configured device must be movable onto a worker thread — the
    /// fleet scheduler hands whole sessions between threads.
    #[test]
    fn halo_system_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HaloSystem>();
    }

    /// Incremental streaming (batched `push_block` + `finalize`) is
    /// metric-identical to the one-shot `process` call.
    #[test]
    fn incremental_push_matches_process() {
        let config = HaloConfig::small_test(4);
        let rec = recording(4, 30, 7);
        let mut one_shot = HaloSystem::new(Task::CompressLz4, config.clone()).unwrap();
        let expected = one_shot.process(&rec).unwrap();

        let mut batched = HaloSystem::new(Task::CompressLz4, config).unwrap();
        for block in rec.samples().chunks(4 * 17) {
            batched.push_block(block).unwrap();
        }
        let got = batched.finalize().unwrap();
        assert_eq!(got.frames, expected.frames);
        assert_eq!(got.radio_stream, expected.radio_stream);
        assert_eq!(got.detections, expected.detections);
        assert_eq!(got.bus_bytes, expected.bus_bytes);
    }

    #[test]
    fn geometry_mismatch_detected() {
        let config = HaloConfig::small_test(4);
        let mut sys = HaloSystem::new(Task::EncryptRaw, config).unwrap();
        let rec = recording(2, 10, 1);
        assert!(matches!(
            sys.process(&rec),
            Err(SystemError::GeometryMismatch {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn lzma_round_trips_through_the_pipeline() {
        let config = HaloConfig::small_test(4);
        let mut sys = HaloSystem::new(Task::CompressLzma, config.clone()).unwrap();
        let rec = recording(4, 50, 3);
        let metrics = sys.process(&rec).unwrap();
        assert!(metrics.radio_bytes > 0);
        // Reconstruct the interleaved stream the pipeline saw and verify
        // losslessness with the monolithic decoder.
        let codec = halo_kernels::LzmaCodec::new(config.lz_history)
            .unwrap()
            .with_block_size(config.block_bytes);
        let decompressed = codec.decompress(&metrics.radio_stream).unwrap();
        let expected = interleave(&rec, config.interleave_depth);
        assert_eq!(decompressed, expected);
        assert!(metrics.compression_ratio().unwrap() > 1.5);
    }

    #[test]
    fn encryption_decrypts_back_to_the_input() {
        let config = HaloConfig::small_test(2);
        let mut sys = HaloSystem::new(Task::EncryptRaw, config.clone()).unwrap();
        let rec = recording(2, 20, 4);
        let metrics = sys.process(&rec).unwrap();
        let aes = halo_kernels::Aes128::new(config.aes_key);
        let plain = aes.decrypt_ecb(&metrics.radio_stream);
        let expected = rec.to_bytes_le();
        assert_eq!(&plain[..expected.len()], &expected[..]);
    }

    /// Rebuilds the interleaver's output ordering for verification.
    fn interleave(rec: &Recording, depth: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let n = rec.samples_per_channel();
        let mut t = 0;
        while t < n {
            let end = (t + depth).min(n);
            for c in 0..rec.channels() {
                for tt in t..end {
                    out.extend_from_slice(&rec.frame(tt)[c].to_le_bytes());
                }
            }
            t = end;
        }
        out
    }
}
