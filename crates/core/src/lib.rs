//! HALO: a general-purpose, ultra-low-power architecture for implantable
//! brain-computer interfaces.
//!
//! This crate assembles the substrates — kernels, processing elements, the
//! circuit-switched NoC, the RISC-V micro-controller, and the power model —
//! into the system of the ISCA 2020 paper:
//!
//! * [`Task`] — the eight runtime-selectable BCI tasks of Figure 2
//!   (spike detection via NEO or DWT, compression via LZ4 / LZMA / DWTMA,
//!   movement intent, seizure prediction, raw encryption).
//! * [`HaloConfig`] — the doctor/technician-tunable parameters of Table
//!   III (LZ history, block size, interleave depth, DWT depth, FFT
//!   geometry, SVM weights, thresholds, AES key), defaulting to the §V-A
//!   design point: 96 channels × 30 kHz × 16 bit ≈ 46 Mbps.
//! * [`Pipeline`] / [`Runtime`] — a task's PE graph on the circuit-switched
//!   fabric and the streaming engine that pushes ADC frames through it.
//! * [`Controller`] — the RV32 micro-controller: actual firmware programs
//!   the interconnect switches through MMIO and issues closed-loop
//!   stimulation commands.
//! * [`HaloSystem`] — the device: configure a task, stream a recording,
//!   collect [`TaskMetrics`] and a [`PowerReport`] checked against the
//!   15 mW / 12 mW budgets.
//! * [`DistributedBci`] — the §VII extension: a seizure detector at one
//!   brain sub-center alerting a stimulation unit at another over a
//!   low-bandwidth RF link.
//!
//! # Example
//!
//! ```
//! use halo_core::{HaloConfig, HaloSystem, Task};
//! use halo_signal::{RecordingConfig, RegionProfile};
//!
//! let config = HaloConfig::new().channels(4);
//! let mut system = HaloSystem::new(Task::SpikeDetectNeo, config).unwrap();
//! let recording = RecordingConfig::new(RegionProfile::arm())
//!     .channels(4)
//!     .duration_ms(40)
//!     .generate(7);
//! let metrics = system.process(&recording).unwrap();
//! assert!(metrics.radio_bytes < recording.to_bytes_le().len() as u64);
//! let power = system.power_report(&metrics);
//! assert!(power.within_budget());
//! ```

pub mod arq;
pub mod config;
pub mod controller;
pub mod distributed;
pub mod metrics;
pub mod pipeline;
pub mod power;
pub mod runtime;
pub mod system;
pub mod task;
pub mod tasks;
pub mod trace;

pub use arq::{
    ArqChannel, ArqConfig, ArqCounters, ArqError, ArqLink, ChannelVerdict, PerfectChannel,
};
pub use config::HaloConfig;
pub use controller::{Controller, StimCommand};
pub use distributed::{
    AlertLink, DistributedBci, DistributedMetrics, LossyAlertChannel, RemoteStimEvent,
    StimulationUnit, MAX_STIM_CHANNELS,
};
pub use metrics::{PeActivity, TaskMetrics};
pub use pipeline::{Pipeline, PipelineError};
pub use power::PowerReport;
pub use runtime::{Adapter, Runtime, RuntimeError, SlotTotals, SourceRoute};
pub use system::{HaloSystem, SystemError};
pub use task::Task;
pub use trace::{capture, replay, ReplayError};
