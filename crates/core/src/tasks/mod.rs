//! Offline task support: feature extraction, training, and calibration.
//!
//! The clinical workflow behind the closed-loop tasks runs *off* the
//! implant (§IV-C: personalization through the micro-controller's
//! parameter writes): recordings are collected, features extracted, SVM
//! weights fit, thresholds calibrated, and the results written back to the
//! device. These helpers implement that loop against the same PE pipelines
//! the implant runs, so training-time and inference-time features are
//! bit-identical.

pub mod movement;
pub mod seizure;
pub mod spike;
