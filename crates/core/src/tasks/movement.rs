//! Movement-intent support: threshold calibration.

use crate::config::HaloConfig;
use crate::pipeline::Pipeline;
use crate::runtime::Runtime;
use crate::system::SystemError;
use crate::task::Task;
use halo_noc::Fabric;
use halo_signal::{EpisodeKind, Recording};

/// Captures the beta-band power values the THR PE would see, one per
/// selected channel per feature window.
///
/// # Errors
///
/// Returns [`SystemError`] if the pipeline fails to build or stream.
pub fn band_powers(config: &HaloConfig, recording: &Recording) -> Result<Vec<i64>, SystemError> {
    let pipeline = Pipeline::build(Task::MovementIntent, config)?;
    let detector = pipeline
        .detector
        .ok_or(crate::pipeline::PipelineError::NoDetector {
            task: Task::MovementIntent.label(),
        })?;
    let mut fabric = Fabric::new();
    for r in &pipeline.routes {
        fabric
            .connect(*r)
            .map_err(crate::runtime::RuntimeError::Fabric)?;
    }
    let mut rt = Runtime::new(pipeline.pes, fabric, pipeline.sources, None, None)?;
    rt.probe_into(detector);
    rt.push_block(recording.samples(), recording.channels())?;
    rt.finish()?;
    Ok(rt.probed().iter().map(|&(_, v)| v).collect())
}

/// Calibrates the movement threshold from a labeled recording: the
/// midpoint (in log space) between mean resting and mean moving beta-band
/// power. The THR PE fires *below* the threshold — movement intent is a
/// power drop (event-related desynchronization, \[49, 108\]).
///
/// # Errors
///
/// Returns [`SystemError`] if the probe run fails, or
/// [`SystemError::Calibration`] if the recording lacks movement
/// episodes or rest periods.
pub fn calibrate_threshold(config: &HaloConfig, recording: &Recording) -> Result<i64, SystemError> {
    let values = band_powers(config, recording)?;
    let per_window = config.analysis_channels.len();
    let window = config.feature_window_frames();
    let mut rest = Vec::new();
    let mut moving = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        let w = i / per_window;
        let start = w * window;
        let end = start + window;
        // Attribute a window to "moving" only if mostly covered.
        let overlap: usize = recording
            .episodes()
            .iter()
            .filter(|e| e.kind() == EpisodeKind::Movement)
            .map(|e| e.end().min(end).saturating_sub(e.start().max(start)))
            .sum();
        if overlap * 2 > window {
            moving.push(v);
        } else if overlap == 0 {
            rest.push(v);
        }
    }
    if moving.is_empty() {
        return Err(SystemError::Calibration {
            what: "recording has no movement windows".to_string(),
        });
    }
    if rest.is_empty() {
        return Err(SystemError::Calibration {
            what: "recording has no rest windows".to_string(),
        });
    }
    let geo_mean = |xs: &[i64]| {
        let s: f64 = xs.iter().map(|&x| (x.max(1) as f64).ln()).sum();
        (s / xs.len() as f64).exp()
    };
    let rest_m = geo_mean(&rest);
    let move_m = geo_mean(&moving);
    Ok(((rest_m * move_m).sqrt()) as i64)
}
