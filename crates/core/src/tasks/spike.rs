//! Spike-detection support: threshold calibration.

use crate::config::HaloConfig;
use crate::pipeline::Pipeline;
use crate::runtime::Runtime;
use crate::system::SystemError;
use crate::task::Task;
use halo_noc::Fabric;
use halo_signal::Recording;

/// Captures the detector-input values (NEO energies or DWT detail
/// magnitudes) for a recording.
///
/// # Errors
///
/// Returns [`SystemError`] if the pipeline fails to build or stream.
pub fn detector_values(
    task: Task,
    config: &HaloConfig,
    recording: &Recording,
) -> Result<Vec<i64>, SystemError> {
    if !matches!(task, Task::SpikeDetectNeo | Task::SpikeDetectDwt) {
        return Err(SystemError::Calibration {
            what: format!("{} is not a spike-detection task", task.label()),
        });
    }
    let pipeline = Pipeline::build(task, config)?;
    let detector = pipeline
        .detector
        .ok_or(crate::pipeline::PipelineError::NoDetector { task: task.label() })?;
    let mut fabric = Fabric::new();
    for r in &pipeline.routes {
        fabric
            .connect(*r)
            .map_err(crate::runtime::RuntimeError::Fabric)?;
    }
    let mut rt = Runtime::new(pipeline.pes, fabric, pipeline.sources, None, None)?;
    rt.probe_into(detector);
    rt.push_block(recording.samples(), recording.channels())?;
    rt.finish()?;
    Ok(rt.probed().iter().map(|&(_, v)| v).collect())
}

/// Calibrates the spike threshold from a spike-free baseline recording
/// (e.g. [`halo_signal::RegionProfile::quiescent`]): a margin above the
/// observed background maximum, the standard percentile-style rule of
/// spike-sorting front-ends \[44\].
///
/// # Errors
///
/// Returns [`SystemError`] if the probe run fails, or
/// [`SystemError::Calibration`] if the baseline produced no detector
/// values to calibrate from.
pub fn calibrate_threshold(
    task: Task,
    config: &HaloConfig,
    baseline: &Recording,
    margin: f64,
) -> Result<i64, SystemError> {
    let values = detector_values(task, config, baseline)?;
    let max = values
        .iter()
        .copied()
        .max()
        .ok_or_else(|| SystemError::Calibration {
            what: "baseline produced no detector output".to_string(),
        })?;
    Ok((max as f64 * margin) as i64)
}
