//! Seizure-prediction support: feature extraction and SVM training.

use crate::config::HaloConfig;
use crate::pipeline::Pipeline;
use crate::runtime::Runtime;
use crate::system::SystemError;
use crate::task::Task;
use halo_kernels::LinearSvm;
use halo_noc::Fabric;
use halo_signal::{EpisodeKind, Recording};

/// Runs the seizure pipeline over `recording` and captures the feature
/// vectors the SVM would see, one per feature window, assembled in the
/// same port order the SVM PE uses.
///
/// # Errors
///
/// Returns [`SystemError`] if the pipeline fails to build or stream.
pub fn extract_features(
    config: &HaloConfig,
    recording: &Recording,
) -> Result<Vec<Vec<i32>>, SystemError> {
    let pipeline = Pipeline::build(Task::SeizurePrediction, config)?;
    let detector = pipeline
        .detector
        .ok_or(crate::pipeline::PipelineError::NoDetector {
            task: Task::SeizurePrediction.label(),
        })?;
    let mut fabric = Fabric::new();
    for r in &pipeline.routes {
        fabric
            .connect(*r)
            .map_err(crate::runtime::RuntimeError::Fabric)?;
    }
    let mut rt = Runtime::new(pipeline.pes, fabric, pipeline.sources, None, None)?;
    rt.probe_into(detector);
    rt.push_block(recording.samples(), recording.channels())?;
    rt.finish()?;

    // Re-assemble per-port arrival queues into port-ordered vectors, the
    // way the SVM PE does.
    let dims = config.svm_port_dims();
    let mut queues: Vec<Vec<i64>> = vec![Vec::new(); dims.len()];
    for &(port, v) in rt.probed() {
        if port < queues.len() {
            queues[port].push(v);
        }
    }
    let windows = queues
        .iter()
        .zip(&dims)
        .map(|(q, &d)| q.len() / d)
        .min()
        .unwrap_or(0);
    let mut features = Vec::with_capacity(windows);
    for w in 0..windows {
        let mut vec = Vec::with_capacity(config.svm_dim());
        for (q, &d) in queues.iter().zip(&dims) {
            for &v in &q[w * d..(w + 1) * d] {
                vec.push(v.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
            }
        }
        features.push(vec);
    }
    Ok(features)
}

/// Ground-truth labels per feature window: `true` when the window overlaps
/// a seizure episode.
pub fn window_labels(recording: &Recording, window_frames: usize) -> Vec<bool> {
    let windows = recording.samples_per_channel() / window_frames;
    (0..windows)
        .map(|w| {
            let start = w * window_frames;
            let end = start + window_frames;
            recording
                .episodes()
                .iter()
                .any(|e| e.kind() == EpisodeKind::Seizure && e.overlaps(start, end))
        })
        .collect()
}

/// Fits SVM weights from labeled recordings — the offline personalization
/// step ("it is possible to modify the number of weights and values in the
/// SVM PE to improve seizure prediction accuracy", §IV-C).
///
/// Features span orders of magnitude (band powers vs correlations), so the
/// trainer normalizes each dimension by its mean absolute value, fits the
/// hyperplane, folds the normalization back into the weights, and rescales
/// to the PE's integer weight range. The returned classifier applies
/// directly to the PE's raw integer features.
///
/// # Errors
///
/// Returns [`SystemError`] if feature extraction fails, or
/// [`SystemError::Calibration`] if the recordings yield no feature
/// windows or only one class.
pub fn train(config: &HaloConfig, recordings: &[&Recording]) -> Result<LinearSvm, SystemError> {
    let window = config.feature_window_frames();
    let mut raw: Vec<(Vec<f64>, bool)> = Vec::new();
    for rec in recordings {
        let features = extract_features(config, rec)?;
        let labels = window_labels(rec, window);
        for (f, &label) in features.iter().zip(&labels) {
            raw.push((f.iter().map(|&v| v as f64).collect(), label));
        }
    }
    if raw.is_empty() {
        return Err(SystemError::Calibration {
            what: "no feature windows extracted".to_string(),
        });
    }
    let positives = raw.iter().filter(|(_, l)| *l).count();
    if positives == 0 || positives == raw.len() {
        return Err(SystemError::Calibration {
            what: format!(
                "training needs both classes (got {positives}/{})",
                raw.len()
            ),
        });
    }

    // Per-dimension normalization by mean absolute value.
    let dim = raw[0].0.len();
    let mut scale = vec![0.0f64; dim];
    for (x, _) in &raw {
        for (s, v) in scale.iter_mut().zip(x) {
            *s += v.abs();
        }
    }
    for s in &mut scale {
        *s = (*s / raw.len() as f64).max(1e-9);
    }
    let examples: Vec<(Vec<f64>, bool)> = raw
        .iter()
        .map(|(x, l)| (x.iter().zip(&scale).map(|(v, s)| v / s).collect(), *l))
        .collect();
    let fitted = LinearSvm::train(&examples, 60, 0.01);

    // Fold the normalization back in: w_raw[i] = w[i] / scale[i], then
    // rescale so the largest |w_raw| uses a comfortable integer range
    // (the PE accumulates in 64 bits, so weight x feature products up to
    // ~2^52 are safe).
    let folded: Vec<f64> = fitted
        .weights()
        .iter()
        .zip(&scale)
        .map(|(&w, s)| w as f64 / s)
        .collect();
    let max = folded
        .iter()
        .fold(0.0f64, |a, &x| a.max(x.abs()))
        .max(1e-30);
    let rescale = 100_000.0 / max;
    let weights: Vec<i32> = folded
        .iter()
        .map(|&w| {
            (w * rescale)
                .round()
                .clamp(i32::MIN as f64, i32::MAX as f64) as i32
        })
        .collect();
    let bias = (fitted.bias() as f64 * rescale) as i64;
    Ok(LinearSvm::new(weights, bias).expect("same dimension"))
}
