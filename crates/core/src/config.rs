//! Device configuration: the Table III parameter space.

use halo_kernels::LinearSvm;

/// HALO's doctor/technician-tunable configuration.
///
/// Defaults are the paper's evaluation design point (§V-A): a 96-channel,
/// 30 kHz, 16-bit array (≈46 Mbps); 4 KB LZ/MA history; 128-sample
/// interleaving; a 1024-point FFT; 16-bit saturating counters; and up to
/// 16 stimulation channels.
///
/// # Example
///
/// ```
/// use halo_core::HaloConfig;
/// let config = HaloConfig::new().channels(8).lz_history(1024).unwrap();
/// assert_eq!(config.lz_history, 1024);
/// ```
#[derive(Debug, Clone)]
pub struct HaloConfig {
    /// Electrode channels (default 96).
    pub channels: usize,
    /// Sampling rate in Hz (default 30 kHz).
    pub sample_rate_hz: u32,
    /// LZ/MA history length in bytes (256–8192, default 4096).
    pub lz_history: usize,
    /// Compression block size in bytes (default 64 KB).
    pub block_bytes: usize,
    /// Interleaver depth in samples per channel run (default 128).
    pub interleave_depth: usize,
    /// MA counter width in bits (default 16).
    pub counter_bits: u32,
    /// DWT recursion depth for spike detection (default 4; \[44\] suggests
    /// 3–5).
    pub dwt_levels_spike: usize,
    /// DWT recursion depth for compression (default 1, §IV-A).
    pub dwt_levels_compress: usize,
    /// Spike detector threshold (NEO energy / DWT detail magnitude).
    pub spike_threshold: i64,
    /// Samples the spike gate stays open after a trigger (default 60 ≈
    /// 2 ms at 30 kHz — one spike waveform).
    pub spike_gate_hold: usize,
    /// FFT transform size (power of two ≤ 1024; default 1024).
    pub fft_points: usize,
    /// FFT input decimation factor (default 32: a 1024-point window then
    /// spans ~1.1 s, resolving the 1–30 Hz rhythms both spectral tasks
    /// target).
    pub fft_decimate: usize,
    /// Movement-intent band (default 14–25 Hz, Herron et al. \[49\]).
    pub beta_band: (f64, f64),
    /// Movement detector threshold on beta-band power ("emits a set bit if
    /// input is below threshold", Table III).
    pub movement_threshold: i64,
    /// Channel subset driving the spectral/seizure PEs (default the first
    /// four channels; Shiao et al. \[99\] use a clinician-chosen subset).
    pub analysis_channels: Vec<u8>,
    /// Seizure-prediction FFT feature bands in Hz (default delta/theta/
    /// alpha/beta).
    pub seizure_bands: Vec<(f64, f64)>,
    /// BBF band for the seizure pipeline (default 2–30 Hz).
    pub bbf_band: (f64, f64),
    /// XCOR window in frames (default 4096 ≈ 137 ms).
    pub xcor_window: usize,
    /// XCOR lag in frames (0–64; default 0).
    pub xcor_lag: usize,
    /// Trained SVM weights; `None` leaves a never-firing placeholder until
    /// the clinician personalizes the device (§IV-C).
    pub svm: Option<LinearSvm>,
    /// Simultaneous stimulation channels (≤16, §V-A).
    pub stim_channels: usize,
    /// AES-128 key for encrypted exfiltration.
    pub aes_key: [u8; 16],
    /// Feature windows to blank after power-up before closed-loop actions
    /// are honored (filter/decimator settling).
    pub warmup_windows: usize,
    /// Enable the §VII Hjorth-parameter feature PE in the seizure
    /// pipeline (three extra features per analysis channel per window).
    pub use_hjorth: bool,
}

impl Default for HaloConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl HaloConfig {
    /// The paper's §V-A design point.
    pub fn new() -> Self {
        Self {
            channels: halo_signal::CHANNELS,
            sample_rate_hz: halo_signal::SAMPLE_RATE_HZ,
            lz_history: 4096,
            block_bytes: 1 << 16,
            interleave_depth: 128,
            counter_bits: 16,
            dwt_levels_spike: 4,
            dwt_levels_compress: 1,
            spike_threshold: 0,
            spike_gate_hold: 60,
            fft_points: 1024,
            fft_decimate: 32,
            beta_band: (14.0, 25.0),
            movement_threshold: 0,
            analysis_channels: vec![0, 1, 2, 3],
            seizure_bands: vec![(1.0, 4.0), (4.0, 8.0), (8.0, 13.0), (13.0, 30.0)],
            bbf_band: (2.0, 30.0),
            xcor_window: 4096,
            xcor_lag: 0,
            svm: None,
            stim_channels: 16,
            aes_key: [0x42; 16],
            warmup_windows: 2,
            use_hjorth: false,
        }
    }

    /// A stable fingerprint of every configuration field, recorded into
    /// captured trace logs so replay refuses to run against a different
    /// device setup. FNV-1a over the `Debug` rendering: any field change
    /// (including new fields) perturbs the hash, and the rendering is
    /// deterministic for a given build.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// A scaled-down configuration for fast functional tests: few
    /// channels, short windows, shallow decimation.
    pub fn small_test(channels: usize) -> Self {
        let analysis: Vec<u8> = (0..channels.min(4) as u8).collect();
        Self {
            channels,
            fft_points: 256,
            fft_decimate: 8,
            xcor_window: 512,
            interleave_depth: 32,
            analysis_channels: analysis,
            block_bytes: 1 << 14,
            ..Self::new()
        }
    }

    /// Sets the channel count.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or exceeds 250 (NodeId space).
    pub fn channels(mut self, channels: usize) -> Self {
        assert!(channels > 0 && channels <= 250, "bad channel count");
        self.channels = channels;
        self.analysis_channels.retain(|&c| (c as usize) < channels);
        if self.analysis_channels.is_empty() {
            self.analysis_channels = vec![0];
        }
        self
    }

    /// Sets the LZ history (power of two, 256–8192).
    ///
    /// # Errors
    ///
    /// Returns [`halo_kernels::lz::InvalidHistory`] for illegal values.
    pub fn lz_history(mut self, history: usize) -> Result<Self, halo_kernels::lz::InvalidHistory> {
        // Validate through the kernel's own constructor.
        halo_kernels::LzMatcher::new(history)?;
        self.lz_history = history;
        Ok(self)
    }

    /// Sets the compression block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "block size must be positive");
        self.block_bytes = bytes;
        self
    }

    /// Sets the interleave depth (samples per channel run).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn interleave_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.interleave_depth = depth;
        self
    }

    /// Installs trained SVM weights.
    pub fn with_svm(mut self, svm: LinearSvm) -> Self {
        self.svm = Some(svm);
        self
    }

    /// Sets the spike threshold.
    pub fn spike_threshold(mut self, threshold: i64) -> Self {
        self.spike_threshold = threshold;
        self
    }

    /// Sets the movement threshold.
    pub fn movement_threshold(mut self, threshold: i64) -> Self {
        self.movement_threshold = threshold;
        self
    }

    /// Frames per SVM/feature window (FFT window span).
    pub fn feature_window_frames(&self) -> usize {
        self.fft_points * self.fft_decimate
    }

    /// All unordered pairs of the analysis channels — XCOR's channel map.
    pub fn xcor_pairs(&self) -> Vec<(u8, u8)> {
        let mut pairs = Vec::new();
        for (i, &a) in self.analysis_channels.iter().enumerate() {
            for &b in &self.analysis_channels[i + 1..] {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// SVM input-port dimensions per feature window: `[FFT, XCOR, BBF]`,
    /// plus a Hjorth port when [`HaloConfig::use_hjorth`] is set.
    ///
    /// # Panics
    ///
    /// Panics if the XCOR window does not divide the feature window.
    pub fn svm_port_dims(&self) -> Vec<usize> {
        let window = self.feature_window_frames();
        assert!(
            window.is_multiple_of(self.xcor_window),
            "xcor window {} must divide the feature window {window}",
            self.xcor_window
        );
        let fft = self.analysis_channels.len() * self.seizure_bands.len();
        let xcor = self.xcor_pairs().len() * (window / self.xcor_window);
        let bbf = self.analysis_channels.len();
        let mut dims = vec![fft, xcor, bbf];
        if self.use_hjorth {
            dims.push(3 * self.analysis_channels.len());
        }
        dims
    }

    /// Total SVM feature dimension.
    pub fn svm_dim(&self) -> usize {
        self.svm_port_dims().iter().sum()
    }

    /// The SVM installed, or the never-firing placeholder.
    pub fn svm_or_placeholder(&self) -> LinearSvm {
        self.svm.clone().unwrap_or_else(|| {
            LinearSvm::new(vec![0; self.svm_dim()], -1).expect("placeholder weights")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_design_point() {
        let c = HaloConfig::new();
        assert_eq!(c.channels, 96);
        assert_eq!(c.sample_rate_hz, 30_000);
        assert_eq!(c.lz_history, 4096);
        assert_eq!(c.interleave_depth, 128);
        assert_eq!(c.fft_points, 1024);
        assert_eq!(c.stim_channels, 16);
        assert_eq!(c.counter_bits, 16);
    }

    #[test]
    fn xcor_pairs_are_all_unordered_pairs() {
        let c = HaloConfig::new();
        assert_eq!(c.xcor_pairs().len(), 6); // C(4,2)
    }

    #[test]
    fn svm_dims_are_consistent() {
        let c = HaloConfig::new();
        let dims = c.svm_port_dims();
        assert_eq!(dims[0], 4 * 4);
        assert_eq!(dims[1], 6 * (1024 * 32 / 4096));
        assert_eq!(dims[2], 4);
        assert_eq!(c.svm_dim(), dims.iter().sum());
        assert_eq!(c.svm_or_placeholder().weights().len(), c.svm_dim());
    }

    #[test]
    fn bad_history_rejected() {
        assert!(HaloConfig::new().lz_history(1000).is_err());
        assert!(HaloConfig::new().lz_history(2048).is_ok());
    }

    #[test]
    fn channel_shrink_prunes_analysis_set() {
        let c = HaloConfig::new().channels(2);
        assert!(c.analysis_channels.iter().all(|&x| (x as usize) < 2));
    }
}
