//! Per-task power reporting against the paper's budgets.

use crate::config::HaloConfig;
use crate::metrics::TaskMetrics;
use crate::task::Task;
use halo_pe::{PeKind, ProcessingElement};
use halo_power::table::{controller_anchor, dwtma_ma_anchor};
use halo_power::{
    adc_power_mw, circuit_switched_power_mw, stimulation_power_mw, PePower, PePowerModel,
    RadioModel, DEVICE_BUDGET_MW, PROCESSING_BUDGET_MW,
};

/// Activity factor of the micro-controller while a pipeline is in steady
/// state: the core mostly idles between housekeeping and closed-loop
/// events (§IV-E runs it at 25 MHz but it sleeps between services).
pub const CONTROLLER_STEADY_ACTIVITY: f64 = 0.3;

/// A full-device power breakdown for one running task.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// The task reported on.
    pub task: Task,
    /// Per-PE breakdowns (Table IV rows at the configured operating point).
    pub pes: Vec<(PeKind, PePower)>,
    /// Micro-controller power, mW.
    pub control_mw: f64,
    /// Radio power at the measured bit rate, mW.
    pub radio_mw: f64,
    /// Chronic stimulation power, mW.
    pub stimulation_mw: f64,
    /// Circuit-switched interconnect power, mW.
    pub noc_mw: f64,
    /// Amplifier/ADC power, mW (outside the processing budget).
    pub adc_mw: f64,
}

impl PowerReport {
    /// Builds the report for a finished run.
    ///
    /// Per-PE power starts from the Table IV anchor for the PE's kind,
    /// scaled by (a) the configured data rate relative to the paper's
    /// 46 Mbps (each PE clocks at the minimum frequency sustaining its
    /// rate, §IV-D) and (b) the instance's actual private-memory footprint
    /// (unused banks are power-gated, §IV-C).
    pub fn compute(
        task: Task,
        config: &HaloConfig,
        metrics: &TaskMetrics,
        pes: &[Box<dyn ProcessingElement>],
    ) -> Self {
        let rate_scale = (config.channels as f64 * config.sample_rate_hz as f64 * 16.0)
            / halo_signal::DATA_RATE_BPS as f64;
        let mut pe_rows = Vec::with_capacity(pes.len());
        for pe in pes {
            let kind = pe.kind();
            let model = if kind == PeKind::Ma && task == Task::CompressDwtma {
                // The DWTMA-mode MA runs far smaller tables (Table IV's
                // DWTMA task row); use its dedicated anchor unscaled.
                PePowerModel::from_anchor(dwtma_ma_anchor())
            } else {
                PePowerModel::new(kind).mem_bytes(pe.memory_bytes())
            };
            let power = model.freq_scale(rate_scale.max(1e-6)).power();
            pe_rows.push((kind, power));
        }
        let a = controller_anchor();
        let control_mw = (a.logic_leak_mw + a.mem_leak_mw)
            + (a.logic_dyn_mw + a.mem_dyn_mw) * CONTROLLER_STEADY_ACTIVITY;
        let radio_mw = RadioModel::default().power_mw(metrics.radio_bits_per_second());
        let stimulation_mw = if task.uses_stimulation() {
            stimulation_power_mw(config.stim_channels)
        } else {
            0.0
        };
        let bus_rate = if metrics.duration_s > 0.0 {
            metrics.bus_bytes as f64 / metrics.duration_s
        } else {
            0.0
        };
        let noc_mw = circuit_switched_power_mw(metrics.switches, bus_rate);
        let adc_mw = adc_power_mw(config.channels, config.sample_rate_hz);
        Self {
            task,
            pes: pe_rows,
            control_mw,
            radio_mw,
            stimulation_mw,
            noc_mw,
            adc_mw,
        }
    }

    /// Sum of PE power, mW.
    pub fn pe_total_mw(&self) -> f64 {
        self.pes.iter().map(|(_, p)| p.total_mw()).sum()
    }

    /// Processing power: PEs + control + radio + stimulation + NoC — the
    /// quantity bounded by 12 mW (§V-A).
    pub fn processing_mw(&self) -> f64 {
        self.pe_total_mw() + self.control_mw + self.radio_mw + self.stimulation_mw + self.noc_mw
    }

    /// Whole-device power including the analog front-end.
    pub fn device_mw(&self) -> f64 {
        self.processing_mw() + self.adc_mw
    }

    /// Whether the run respects both the 12 mW processing and 15 mW device
    /// budgets.
    pub fn within_budget(&self) -> bool {
        self.processing_mw() <= PROCESSING_BUDGET_MW && self.device_mw() <= DEVICE_BUDGET_MW
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} power report:", self.task)?;
        for (kind, p) in &self.pes {
            writeln!(f, "  {kind:<12} {:7.3} mW", p.total_mw())?;
        }
        writeln!(f, "  {:<12} {:7.3} mW", "control", self.control_mw)?;
        writeln!(f, "  {:<12} {:7.3} mW", "radio", self.radio_mw)?;
        writeln!(f, "  {:<12} {:7.3} mW", "stim", self.stimulation_mw)?;
        writeln!(f, "  {:<12} {:7.3} mW", "noc", self.noc_mw)?;
        writeln!(
            f,
            "  processing {:.3} mW (budget {PROCESSING_BUDGET_MW} mW), device {:.3} mW (budget {DEVICE_BUDGET_MW} mW)",
            self.processing_mw(),
            self.device_mw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_metrics(task: Task, radio_bytes: u64) -> TaskMetrics {
        TaskMetrics {
            task,
            frames: 30_000,
            duration_s: 1.0,
            input_bytes: 96 * 2 * 30_000,
            radio_bytes,
            radio_stream: vec![],
            detections: vec![],
            stim_events: vec![],
            bus_bytes: 5_000_000,
            switches: 4,
            controller_cycles: 10_000,
            pe_activity: vec![],
        }
    }

    #[test]
    fn controller_steady_power_is_about_one_milliwatt() {
        let config = HaloConfig::new();
        let m = fake_metrics(Task::EncryptRaw, 0);
        let r = PowerReport::compute(Task::EncryptRaw, &config, &m, &[]);
        assert!(r.control_mw > 0.8 && r.control_mw < 1.1, "{}", r.control_mw);
    }

    #[test]
    fn raw_radio_costs_nine_milliwatts() {
        let config = HaloConfig::new();
        let m = fake_metrics(Task::EncryptRaw, 96 * 2 * 30_000);
        let r = PowerReport::compute(Task::EncryptRaw, &config, &m, &[]);
        assert!((r.radio_mw - 9.216).abs() < 0.01, "{}", r.radio_mw);
    }

    #[test]
    fn stimulation_only_for_closed_loop() {
        let config = HaloConfig::new();
        let m = fake_metrics(Task::SeizurePrediction, 100);
        let r = PowerReport::compute(Task::SeizurePrediction, &config, &m, &[]);
        assert_eq!(r.stimulation_mw, 0.48);
        let m = fake_metrics(Task::CompressLz4, 100);
        let r = PowerReport::compute(Task::CompressLz4, &config, &m, &[]);
        assert_eq!(r.stimulation_mw, 0.0);
    }
}
