//! Distributed multi-HALO deployments (§VII).
//!
//! "We envision the need for multiple HALO devices on different brain
//! sub-centers, with one device determining the onset of a seizure, and
//! another device used to stimulate tissue on another brain region,
//! thereby mitigating … the spread of seizures across sub-centers."
//!
//! This module implements that two-device topology: a *detector* device
//! running the seizure-prediction pipeline at one site, a *stimulation
//! unit* at another, and a low-bandwidth RF alert link between them. Both
//! devices carry their own 15 mW budget; the link budget rides on the
//! detector (it transmits) with negligible receive cost at the
//! stimulator.

use crate::arq::{ArqChannel, ArqConfig, ArqCounters, ArqError, ArqLink, ChannelVerdict};
use crate::config::HaloConfig;
use crate::controller::{Controller, ControllerError, StimCommand};
use crate::metrics::TaskMetrics;
use crate::power::PowerReport;
use crate::system::{HaloSystem, SystemError};
use crate::task::Task;
use halo_power::{stimulation_power_mw, RadioModel};
use halo_signal::{Recording, SimRng};

/// The inter-device alert link. Alerts ride the core ARQ layer
/// ([`ArqLink`]): sequence numbers, CRC-16, bounded retransmission with
/// exponential backoff — a transmission loss retransmits (counted in
/// [`DistributedMetrics`]), and an *unrecoverable* loss surfaces as
/// [`SystemError::AlertLoss`] instead of vanishing silently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertLink {
    /// Radio energy per bit (same 200 pJ/bit class as the exfiltration
    /// radio).
    pub energy_pj_per_bit: f64,
    /// One-way latency in milliseconds (RF wake-up plus decode).
    pub latency_ms: f64,
    /// Bytes per alert message (site id, sequence, command).
    pub alert_bytes: usize,
    /// Probability (per mille) that a transmission is lost in flight.
    pub loss_permille: u32,
    /// Seed of the deterministic loss process.
    pub seed: u64,
    /// ARQ tuning (retransmit timeout, retry budget, queue bounds).
    pub arq: ArqConfig,
}

impl Default for AlertLink {
    fn default() -> Self {
        Self {
            energy_pj_per_bit: 200.0,
            latency_ms: 5.0,
            alert_bytes: 8,
            loss_permille: 0,
            seed: 0x41E7,
            arq: ArqConfig::default(),
        }
    }
}

/// The alert link's transmission medium: loses a seeded fraction of
/// data frames and acknowledgements, delivers the rest immediately.
#[derive(Debug, Clone)]
pub struct LossyAlertChannel {
    rng: SimRng,
    loss_permille: u32,
}

impl LossyAlertChannel {
    /// A channel losing `loss_permille`/1000 of transmissions.
    pub fn new(seed: u64, loss_permille: u32) -> Self {
        Self {
            rng: SimRng::new(seed),
            loss_permille,
        }
    }

    fn roll(&mut self, now: u64) -> ChannelVerdict {
        if self.loss_permille > 0 && self.rng.range_u64(0, 1000) < self.loss_permille as u64 {
            ChannelVerdict::Drop
        } else {
            ChannelVerdict::Deliver { at_frame: now }
        }
    }
}

impl ArqChannel for LossyAlertChannel {
    fn data_verdict(&mut self, now: u64, _seq: u32, _attempt: u32) -> ChannelVerdict {
        self.roll(now)
    }
    fn ack_verdict(&mut self, now: u64, _seq: u32) -> ChannelVerdict {
        self.roll(now)
    }
}

/// Most electrodes one stimulation engine drives (§V-A).
pub const MAX_STIM_CHANNELS: usize = 16;

/// The remote device: an RF receiver, a micro-controller, and the
/// stimulation engine — no recording pipeline.
#[derive(Debug)]
pub struct StimulationUnit {
    controller: Controller,
    stim_channels: usize,
    alerts_handled: u64,
}

impl StimulationUnit {
    /// Creates a unit driving `stim_channels` electrodes
    /// (≤ [`MAX_STIM_CHANNELS`]).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::StimChannels`] if `stim_channels` exceeds
    /// the electrode limit — rejected here so a mis-sized [`HaloConfig`]
    /// surfaces at construction instead of panicking inside the
    /// stimulation firmware on the first alert.
    pub fn new(stim_channels: usize) -> Result<Self, SystemError> {
        if stim_channels > MAX_STIM_CHANNELS {
            return Err(SystemError::StimChannels {
                got: stim_channels,
                max: MAX_STIM_CHANNELS,
            });
        }
        Ok(Self {
            controller: Controller::new(),
            stim_channels,
            alerts_handled: 0,
        })
    }

    /// Handles one alert: run the stimulation firmware.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError`] if the firmware faults.
    pub fn handle_alert(&mut self) -> Result<Vec<StimCommand>, ControllerError> {
        self.alerts_handled += 1;
        self.controller.stimulate(self.stim_channels, 500)
    }

    /// Alerts handled so far.
    pub fn alerts_handled(&self) -> u64 {
        self.alerts_handled
    }

    /// Steady-state device power: idle controller + chronic stimulation
    /// allowance (receive-side radio cost is negligible at alert rates).
    pub fn power_mw(&self) -> f64 {
        let a = halo_power::controller_anchor();
        let control = (a.logic_leak_mw + a.mem_leak_mw)
            + (a.logic_dyn_mw + a.mem_dyn_mw) * crate::power::CONTROLLER_STEADY_ACTIVITY;
        control + stimulation_power_mw(self.stim_channels)
    }
}

/// One cross-device stimulation event.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteStimEvent {
    /// Frame at which the detector fired.
    pub detect_frame: u64,
    /// Wall-clock stimulation time relative to the detection, ms (link
    /// latency plus firmware).
    pub latency_ms: f64,
    /// Commands executed at the remote site.
    pub commands: Vec<StimCommand>,
}

/// Metrics of a distributed run.
#[derive(Debug)]
pub struct DistributedMetrics {
    /// The detector device's own metrics.
    pub detector: TaskMetrics,
    /// Cross-device stimulation events.
    pub remote_stims: Vec<RemoteStimEvent>,
    /// Alert payload bytes sent over the inter-device link.
    pub link_bytes: u64,
    /// Alerts offered to the link.
    pub alerts_sent: u64,
    /// Alerts delivered to the remote site (after any retransmission).
    pub alerts_delivered: u64,
    /// Transmissions presumed lost in flight and recovered by
    /// retransmission — every drop is counted, never silent.
    pub link_drops: u64,
    /// Full ARQ counters of the alert link.
    pub arq: ArqCounters,
    /// Bytes on the wire including ARQ framing and every retransmission
    /// attempt (feeds the detector's radio-power accounting).
    pub wire_bytes: u64,
}

/// A two-site deployment: seizure detector at site A, stimulation unit at
/// site B.
pub struct DistributedBci {
    detector: HaloSystem,
    stimulator: StimulationUnit,
    link: AlertLink,
}

impl std::fmt::Debug for DistributedBci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedBci")
            .field("link", &self.link)
            .finish_non_exhaustive()
    }
}

impl DistributedBci {
    /// Builds the deployment. The detector runs seizure prediction with
    /// `config` (which should carry trained SVM weights); local
    /// stimulation is disabled — stimulation happens at the remote site.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] if the detector device fails to configure.
    pub fn new(mut config: HaloConfig, link: AlertLink) -> Result<Self, SystemError> {
        let stim_channels = config.stim_channels;
        // The detector site does not stimulate; zero its local allowance.
        config.stim_channels = 0;
        let stimulator = StimulationUnit::new(stim_channels)?;
        let detector = HaloSystem::new(Task::SeizurePrediction, config)?;
        Ok(Self {
            detector,
            stimulator,
            link,
        })
    }

    /// Streams a recording at the detector site; every (de-bounced)
    /// positive detection sends an alert across the ARQ-protected link
    /// and stimulates at the remote site on delivery.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError`] on streaming or firmware failure, and
    /// [`SystemError::AlertLoss`] if any alert is lost beyond the ARQ
    /// layer's ability to recover it.
    pub fn process(&mut self, recording: &Recording) -> Result<DistributedMetrics, SystemError> {
        let channel = LossyAlertChannel::new(self.link.seed, self.link.loss_permille);
        self.process_over(recording, channel)
    }

    /// [`DistributedBci::process`] over a caller-supplied transmission
    /// medium — chaos tests inject drop/reorder channels here.
    ///
    /// # Errors
    ///
    /// As [`DistributedBci::process`].
    pub fn process_over<C: ArqChannel>(
        &mut self,
        recording: &Recording,
        channel: C,
    ) -> Result<DistributedMetrics, SystemError> {
        let detector = self.detector.process(recording)?;
        let config = self.detector.config();
        let window = config.feature_window_frames() as u64;
        let warmup = (config.warmup_windows as u64) * window;
        let ms_per_frame = 1000.0 / config.sample_rate_hz as f64;
        let payload_len = self.link.alert_bytes.max(8);
        let mut link = ArqLink::new(self.link.arq, channel);
        let mut remote_stims = Vec::new();
        let mut link_bytes = 0u64;
        let mut alerts_sent = 0u64;
        let mut lost = 0u64;
        let mut last: Option<u64> = None;
        for &(frame, flag) in &detector.detections {
            if !flag || frame <= warmup {
                continue;
            }
            if last.is_some_and(|l| frame.saturating_sub(l) < window) {
                continue;
            }
            last = Some(frame);
            alerts_sent += 1;
            link_bytes += self.link.alert_bytes as u64;
            let mut payload = vec![0u8; payload_len];
            payload[..8].copy_from_slice(&frame.to_le_bytes());
            match link.offer(frame, payload) {
                Ok(_) => {}
                // The bounded send queue is saturated: this alert is
                // unrecoverable. Counted and surfaced, never silent.
                Err(ArqError::QueueFull { .. }) => lost += 1,
            }
            // Deliveries land at the earliest one frame after transmit;
            // tick there so a clean alert arrives with sub-ms latency
            // instead of waiting for the next detection window.
            link.tick(frame + 1);
            self.land_alerts(&mut link, frame + 1, ms_per_frame, &mut remote_stims)?;
        }
        let end = link.flush(detector.frames.max(last.unwrap_or(0)));
        self.land_alerts(&mut link, end, ms_per_frame, &mut remote_stims)?;
        lost += link.take_gave_up().len() as u64;
        if lost > 0 {
            return Err(SystemError::AlertLoss { lost });
        }
        let counters = link.counters();
        Ok(DistributedMetrics {
            detector,
            alerts_delivered: remote_stims.len() as u64,
            remote_stims,
            link_bytes,
            alerts_sent,
            link_drops: counters.retries,
            arq: counters,
            wire_bytes: link.wire_bytes(),
        })
    }

    /// Lands delivered alerts at the remote site: each one runs the
    /// stimulation firmware. Retransmitted alerts carry their extra
    /// link-round-trip frames in the reported latency.
    fn land_alerts<C: ArqChannel>(
        &mut self,
        link: &mut ArqLink<C>,
        now: u64,
        ms_per_frame: f64,
        remote_stims: &mut Vec<RemoteStimEvent>,
    ) -> Result<(), SystemError> {
        for (_seq, payload) in link.take_delivered() {
            let mut frame_bytes = [0u8; 8];
            frame_bytes.copy_from_slice(&payload[..8]);
            let detect_frame = u64::from_le_bytes(frame_bytes);
            let commands = self
                .stimulator
                .handle_alert()
                .map_err(SystemError::Controller)?;
            // Firmware time at 25 MHz is microseconds; the link dominates.
            remote_stims.push(RemoteStimEvent {
                detect_frame,
                latency_ms: self.link.latency_ms
                    + now.saturating_sub(detect_frame) as f64 * ms_per_frame,
                commands,
            });
        }
        Ok(())
    }

    /// Power of the detector device (its own report plus alert-link
    /// transmission, including ARQ framing and retransmissions).
    pub fn detector_power(&self, metrics: &DistributedMetrics) -> PowerReport {
        let mut report = self.detector.power_report(&metrics.detector);
        let link_rate = if metrics.detector.duration_s > 0.0 {
            metrics.wire_bytes as f64 * 8.0 / metrics.detector.duration_s
        } else {
            0.0
        };
        report.radio_mw += RadioModel::new(self.link.energy_pj_per_bit).power_mw(link_rate);
        report
    }

    /// Steady-state power of the remote stimulation unit.
    pub fn stimulator_power_mw(&self) -> f64 {
        self.stimulator.power_mw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::seizure;
    use halo_signal::{RecordingConfig, RegionProfile};

    fn trained_config(channels: usize) -> HaloConfig {
        let config = HaloConfig::small_test(channels).channels(channels);
        let window = config.feature_window_frames();
        let a = RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(600)
            .seizure_at(5 * window, 12 * window)
            .generate(71);
        let b = RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(600)
            .seizure_at(9 * window, 15 * window)
            .generate(72);
        let svm = seizure::train(&config, &[&a, &b]).expect("training");
        config.with_svm(svm)
    }

    /// Regression: a stimulation unit sized beyond the 16-electrode
    /// limit used to panic inside the stimulation firmware on the first
    /// alert; construction must reject it instead.
    #[test]
    fn oversized_stim_unit_rejected() {
        assert!(matches!(
            StimulationUnit::new(MAX_STIM_CHANNELS + 1),
            Err(SystemError::StimChannels { got: 17, max: 16 })
        ));
        assert!(StimulationUnit::new(MAX_STIM_CHANNELS).is_ok());
    }

    #[test]
    fn detector_site_alerts_remote_stimulator() {
        let channels = 4;
        let config = trained_config(channels);
        let window = config.feature_window_frames();
        let mut bci = DistributedBci::new(config, AlertLink::default()).unwrap();
        let rec = RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(600)
            .seizure_at(7 * window, 14 * window)
            .generate(73);
        let metrics = bci.process(&rec).unwrap();
        assert!(
            !metrics.remote_stims.is_empty(),
            "remote site never stimulated"
        );
        assert_eq!(metrics.link_bytes, metrics.remote_stims.len() as u64 * 8);
        for ev in &metrics.remote_stims {
            assert_eq!(ev.commands.len(), 16);
            assert!(ev.latency_ms <= 10.0, "closed loop too slow");
        }
        // Detector site performed no local stimulation.
        assert!(metrics.detector.stim_events.is_empty());
    }

    #[test]
    fn both_devices_fit_their_budgets() {
        let channels = 4;
        let config = trained_config(channels);
        let mut bci = DistributedBci::new(config, AlertLink::default()).unwrap();
        let rec = RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(400)
            .generate(74);
        let metrics = bci.process(&rec).unwrap();
        let det = bci.detector_power(&metrics);
        assert!(det.within_budget(), "detector: {det}");
        assert!(
            bci.stimulator_power_mw() < 12.0,
            "stimulator: {:.2} mW",
            bci.stimulator_power_mw()
        );
    }
}
