//! Circuit-switched on-chip network for HALO.
//!
//! §IV-D: the decomposition of BCI tasks into kernels "creates static and
//! well-defined data-flows between PEs", which lets HALO replace a
//! power-hungry packet-switched NoC (DSENT estimates >50 mW for a simple
//! mesh — over three times the entire budget) with an ultra-low-power
//! asynchronous **circuit-switched** fabric: programmable mux/demux
//! switches route 8-bit SEND-ACK buses along fixed routes; "we fix the
//! routes in the network but allow the links to be configurable", FPGA
//! style.
//!
//! This crate models the fabric structurally:
//!
//! * [`Fabric`] — nodes (PE slots), routes, and the switch-programming
//!   interface. Routes are configured by writing 32-bit words in exactly
//!   the format HALO's RISC-V micro-controller pokes into GPIO/MMIO
//!   registers (§IV-E "pipeline configuration").
//! * Route validation — "the programmer must ensure that the output
//!   interface of a PE matches the input interface of its target PE";
//!   [`Fabric::validate`] enforces it against real PE objects.
//! * SEND-ACK accounting — every transferred token is counted with its bus
//!   occupancy so experiments can bound interconnect power.
//!
//! Power numbers for both this fabric (<300 µW upper bound) and the
//! rejected packet-switched mesh live in `halo-power`; this crate provides
//! the structure and traffic statistics they consume.

pub mod fabric;

pub use fabric::{Fabric, FabricError, LinkTraffic, NodeId, Route};
