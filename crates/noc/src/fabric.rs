//! The circuit-switched fabric: nodes, routes, switch programming, and
//! SEND-ACK traffic accounting.

use halo_pe::{ProcessingElement, Token};

/// A PE slot in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A configured circuit route: `from`'s output stream feeds `to`'s input
/// port `to_port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Consumer input port (0 = data, 1 = control on GATE).
    pub to_port: usize,
}

/// Errors raised while programming or validating the fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A switch word did not decode to a legal route.
    BadSwitchWord(u32),
    /// A route references a node beyond the installed PE array.
    NoSuchNode(NodeId),
    /// A route targets a port the consumer does not have.
    NoSuchPort {
        /// The offending route.
        route: Route,
    },
    /// Producer/consumer interface types do not match.
    InterfaceMismatch {
        /// The offending route.
        route: Route,
        /// Producer's output interface.
        produces: halo_pe::InterfaceKind,
        /// Consumer's expected interface on that port.
        expects: halo_pe::InterfaceKind,
    },
    /// Two routes drive the same input port (circuit switching admits one
    /// driver per port).
    PortContention {
        /// The doubly-driven consumer.
        to: NodeId,
        /// The contested port.
        to_port: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadSwitchWord(w) => write!(f, "switch word {w:#010x} is not a valid route"),
            Self::NoSuchNode(n) => write!(f, "route references missing {n}"),
            Self::NoSuchPort { route } => {
                write!(f, "{} has no port {}", route.to, route.to_port)
            }
            Self::InterfaceMismatch {
                route,
                produces,
                expects,
            } => write!(
                f,
                "{} produces {produces} but {} port {} expects {expects}",
                route.from, route.to, route.to_port
            ),
            Self::PortContention { to, to_port } => {
                write!(f, "multiple routes drive {to} port {to_port}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// The programmable circuit-switched interconnect.
///
/// # Example
///
/// ```
/// use halo_noc::{Fabric, NodeId, Route};
/// let mut fabric = Fabric::new();
/// fabric.connect(Route { from: NodeId(0), to: NodeId(1), to_port: 0 }).unwrap();
/// assert_eq!(fabric.routes_from(NodeId(0)).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    routes: Vec<Route>,
    transfers: u64,
    bus_bytes: u64,
    links: Vec<LinkTraffic>,
    programs: u64,
    words_written: u64,
    in_program: bool,
}

/// Cumulative traffic on one directed link of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// SEND-ACK handshakes on this link.
    pub transfers: u64,
    /// Payload bytes moved on this link.
    pub bytes: u64,
}

impl Fabric {
    /// Switch-word flag marking a route-program word as valid.
    pub const WORD_VALID: u32 = 0x8000_0000;

    /// Switch word that clears all routes (pipeline teardown).
    pub const WORD_CLEAR: u32 = 0;

    /// Modeled peak capacity of one link, in bytes per second. The
    /// asynchronous 8-bit SEND-ACK bus (§IV-D) is modeled at one byte per
    /// handshake with a 46.08 M handshakes/s ceiling — 8x headroom over
    /// the nominal 5.76 MB/s array byte stream. Telemetry's utilization
    /// fractions are relative to this.
    pub const LINK_CAPACITY_BYTES_PER_S: u64 = 46_080_000;

    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a route directly (host-side configuration path).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::PortContention`] if the input port already
    /// has a driver.
    pub fn connect(&mut self, route: Route) -> Result<(), FabricError> {
        if self
            .routes
            .iter()
            .any(|r| r.to == route.to && r.to_port == route.to_port)
        {
            return Err(FabricError::PortContention {
                to: route.to,
                to_port: route.to_port,
            });
        }
        self.routes.push(route);
        Ok(())
    }

    /// Encodes a route as the 32-bit switch word the micro-controller
    /// writes: `VALID | from << 16 | to << 8 | port`.
    pub fn encode_route(route: Route) -> u32 {
        Self::WORD_VALID
            | ((route.from.0 as u32 & 0xff) << 16)
            | ((route.to.0 as u32 & 0xff) << 8)
            | (route.to_port as u32 & 0xff)
    }

    /// Programs one switch word — the MMIO write path from the RISC-V
    /// controller. `WORD_CLEAR` tears down all routes.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError`] if the word is malformed or the route
    /// contends for a port.
    pub fn program(&mut self, word: u32) -> Result<(), FabricError> {
        if word == Self::WORD_CLEAR {
            self.routes.clear();
            self.words_written += 1;
            self.in_program = false;
            return Ok(());
        }
        if word & Self::WORD_VALID == 0 {
            return Err(FabricError::BadSwitchWord(word));
        }
        let route = Route {
            from: NodeId(((word >> 16) & 0xff) as usize),
            to: NodeId(((word >> 8) & 0xff) as usize),
            to_port: (word & 0xff) as usize,
        };
        self.connect(route)?;
        self.words_written += 1;
        if !self.in_program {
            self.in_program = true;
            self.programs += 1;
        }
        Ok(())
    }

    /// All configured routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Routes leaving `from` (circuit fan-out).
    pub fn routes_from(&self, from: NodeId) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter(move |r| r.from == from)
    }

    /// Number of programmable switch points the configuration occupies
    /// (one mux/demux pair per route).
    pub fn switch_count(&self) -> usize {
        self.routes.len()
    }

    /// Validates every route against the installed PE array: nodes exist,
    /// ports exist, and interfaces match (§IV-D's configuration rule).
    ///
    /// # Errors
    ///
    /// Returns the first [`FabricError`] found.
    pub fn validate(&self, pes: &[&dyn ProcessingElement]) -> Result<(), FabricError> {
        for route in &self.routes {
            let from = pes
                .get(route.from.0)
                .ok_or(FabricError::NoSuchNode(route.from))?;
            let to = pes
                .get(route.to.0)
                .ok_or(FabricError::NoSuchNode(route.to))?;
            let expects = *to
                .input_ports()
                .get(route.to_port)
                .ok_or(FabricError::NoSuchPort { route: *route })?;
            let produces = from.output_kind();
            if produces != expects {
                return Err(FabricError::InterfaceMismatch {
                    route: *route,
                    produces,
                    expects,
                });
            }
        }
        Ok(())
    }

    /// Records one SEND-ACK transfer of `token` from `from` to `to` over
    /// the 8-bit bus, accounting both fabric totals and the per-link
    /// traffic matrix.
    pub fn record_transfer(&mut self, from: NodeId, to: NodeId, token: &Token) {
        let bytes = token.wire_bytes() as u64;
        self.transfers += 1;
        self.bus_bytes += bytes;
        match self.links.iter_mut().find(|l| l.from == from && l.to == to) {
            Some(link) => {
                link.transfers += 1;
                link.bytes += bytes;
            }
            None => self.links.push(LinkTraffic {
                from,
                to,
                transfers: 1,
                bytes,
            }),
        }
    }

    /// Total SEND-ACK handshakes performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved over the 8-bit data bus.
    pub fn bus_bytes(&self) -> u64 {
        self.bus_bytes
    }

    /// Cumulative per-link traffic, in first-use order. Links survive
    /// reprogramming: traffic is an account of what happened, not of the
    /// current route table.
    pub fn link_traffic(&self) -> &[LinkTraffic] {
        &self.links
    }

    /// Number of complete switch-programming sequences executed (one per
    /// `WORD_CLEAR`-initiated teardown that was followed by route words,
    /// plus the initial programming).
    pub fn switch_programs(&self) -> u64 {
        self.programs
    }

    /// Total switch words accepted over the MMIO path (route words and
    /// clears alike).
    pub fn switch_words(&self) -> u64 {
        self.words_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::Threshold;
    use halo_pe::pes::{GatePe, NeoPe, ThrPe};

    #[test]
    fn word_round_trip() {
        let route = Route {
            from: NodeId(3),
            to: NodeId(7),
            to_port: 1,
        };
        let mut fabric = Fabric::new();
        fabric.program(Fabric::encode_route(route)).unwrap();
        assert_eq!(fabric.routes(), &[route]);
    }

    #[test]
    fn clear_word_tears_down() {
        let mut fabric = Fabric::new();
        fabric
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            })
            .unwrap();
        fabric.program(Fabric::WORD_CLEAR).unwrap();
        assert!(fabric.routes().is_empty());
    }

    #[test]
    fn invalid_word_rejected() {
        let mut fabric = Fabric::new();
        assert_eq!(
            fabric.program(0x0001_0100),
            Err(FabricError::BadSwitchWord(0x0001_0100))
        );
    }

    #[test]
    fn port_contention_rejected() {
        let mut fabric = Fabric::new();
        let a = Route {
            from: NodeId(0),
            to: NodeId(2),
            to_port: 0,
        };
        let b = Route {
            from: NodeId(1),
            to: NodeId(2),
            to_port: 0,
        };
        fabric.connect(a).unwrap();
        assert!(matches!(
            fabric.connect(b),
            Err(FabricError::PortContention { .. })
        ));
    }

    #[test]
    fn validates_interface_compatibility() {
        // NEO (values out) -> THR (values in): ok.
        // NEO -> GATE port 0 (samples in): mismatch.
        let neo = NeoPe::new();
        let thr = ThrPe::new(Threshold::above(0));
        let gate = GatePe::new(0);
        let pes: Vec<&dyn ProcessingElement> = vec![&neo, &thr, &gate];

        let mut ok = Fabric::new();
        ok.connect(Route {
            from: NodeId(0),
            to: NodeId(1),
            to_port: 0,
        })
        .unwrap();
        assert!(ok.validate(&pes).is_ok());

        let mut bad = Fabric::new();
        bad.connect(Route {
            from: NodeId(0),
            to: NodeId(2),
            to_port: 0,
        })
        .unwrap();
        assert!(matches!(
            bad.validate(&pes),
            Err(FabricError::InterfaceMismatch { .. })
        ));
    }

    #[test]
    fn validates_missing_nodes_and_ports() {
        let neo = NeoPe::new();
        let thr = ThrPe::new(Threshold::above(0));
        let pes: Vec<&dyn ProcessingElement> = vec![&neo, &thr];

        let mut missing = Fabric::new();
        missing
            .connect(Route {
                from: NodeId(0),
                to: NodeId(9),
                to_port: 0,
            })
            .unwrap();
        assert_eq!(
            missing.validate(&pes),
            Err(FabricError::NoSuchNode(NodeId(9)))
        );

        let mut no_port = Fabric::new();
        no_port
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 3,
            })
            .unwrap();
        assert!(matches!(
            no_port.validate(&pes),
            Err(FabricError::NoSuchPort { .. })
        ));
    }

    #[test]
    fn traffic_accounting() {
        let mut fabric = Fabric::new();
        fabric.record_transfer(NodeId(0), NodeId(1), &Token::Sample(5));
        fabric.record_transfer(NodeId(0), NodeId(1), &Token::Byte(1));
        fabric.record_transfer(NodeId(1), NodeId(2), &Token::Byte(7));
        assert_eq!(fabric.transfers(), 3);
        assert_eq!(fabric.bus_bytes(), 4);

        let links = fabric.link_traffic();
        assert_eq!(links.len(), 2);
        assert_eq!(
            links[0],
            LinkTraffic {
                from: NodeId(0),
                to: NodeId(1),
                transfers: 2,
                bytes: 3,
            }
        );
        assert_eq!(
            links[1],
            LinkTraffic {
                from: NodeId(1),
                to: NodeId(2),
                transfers: 1,
                bytes: 1,
            }
        );
        // Per-link traffic always sums to the fabric totals.
        assert_eq!(
            links.iter().map(|l| l.bytes).sum::<u64>(),
            fabric.bus_bytes()
        );
    }

    #[test]
    fn switch_programming_is_counted() {
        let route = |from: usize, to: usize| {
            Fabric::encode_route(Route {
                from: NodeId(from),
                to: NodeId(to),
                to_port: 0,
            })
        };
        let mut fabric = Fabric::new();
        // Initial programming: two route words = one program.
        fabric.program(route(0, 1)).unwrap();
        fabric.program(route(1, 2)).unwrap();
        assert_eq!(fabric.switch_programs(), 1);
        assert_eq!(fabric.switch_words(), 2);
        // Teardown + reprogram = a second program.
        fabric.program(Fabric::WORD_CLEAR).unwrap();
        fabric.program(route(0, 2)).unwrap();
        assert_eq!(fabric.switch_programs(), 2);
        assert_eq!(fabric.switch_words(), 4);
        // Rejected words count nothing.
        assert!(fabric.program(0x0001_0000).is_err());
        assert_eq!(fabric.switch_words(), 4);
    }
}
