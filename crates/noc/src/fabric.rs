//! The circuit-switched fabric: nodes, routes, switch programming, and
//! SEND-ACK traffic accounting.

use halo_pe::{ProcessingElement, Token};

/// A PE slot in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A configured circuit route: `from`'s output stream feeds `to`'s input
/// port `to_port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Consumer input port (0 = data, 1 = control on GATE).
    pub to_port: usize,
}

/// Errors raised while programming or validating the fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A switch word did not decode to a legal route.
    BadSwitchWord(u32),
    /// A route references a node beyond the installed PE array.
    NoSuchNode(NodeId),
    /// A route targets a port the consumer does not have.
    NoSuchPort {
        /// The offending route.
        route: Route,
    },
    /// Producer/consumer interface types do not match.
    InterfaceMismatch {
        /// The offending route.
        route: Route,
        /// Producer's output interface.
        produces: halo_pe::InterfaceKind,
        /// Consumer's expected interface on that port.
        expects: halo_pe::InterfaceKind,
    },
    /// Two routes drive the same input port (circuit switching admits one
    /// driver per port).
    PortContention {
        /// The doubly-driven consumer.
        to: NodeId,
        /// The contested port.
        to_port: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadSwitchWord(w) => write!(f, "switch word {w:#010x} is not a valid route"),
            Self::NoSuchNode(n) => write!(f, "route references missing {n}"),
            Self::NoSuchPort { route } => {
                write!(f, "{} has no port {}", route.to, route.to_port)
            }
            Self::InterfaceMismatch {
                route,
                produces,
                expects,
            } => write!(
                f,
                "{} produces {produces} but {} port {} expects {expects}",
                route.from, route.to, route.to_port
            ),
            Self::PortContention { to, to_port } => {
                write!(f, "multiple routes drive {to} port {to_port}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// The programmable circuit-switched interconnect.
///
/// # Example
///
/// ```
/// use halo_noc::{Fabric, NodeId, Route};
/// let mut fabric = Fabric::new();
/// fabric.connect(Route { from: NodeId(0), to: NodeId(1), to_port: 0 }).unwrap();
/// assert_eq!(fabric.routes_from(NodeId(0)).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    routes: Vec<Route>,
    transfers: u64,
    bus_bytes: u64,
}

impl Fabric {
    /// Switch-word flag marking a route-program word as valid.
    pub const WORD_VALID: u32 = 0x8000_0000;

    /// Switch word that clears all routes (pipeline teardown).
    pub const WORD_CLEAR: u32 = 0;

    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a route directly (host-side configuration path).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::PortContention`] if the input port already
    /// has a driver.
    pub fn connect(&mut self, route: Route) -> Result<(), FabricError> {
        if self
            .routes
            .iter()
            .any(|r| r.to == route.to && r.to_port == route.to_port)
        {
            return Err(FabricError::PortContention {
                to: route.to,
                to_port: route.to_port,
            });
        }
        self.routes.push(route);
        Ok(())
    }

    /// Encodes a route as the 32-bit switch word the micro-controller
    /// writes: `VALID | from << 16 | to << 8 | port`.
    pub fn encode_route(route: Route) -> u32 {
        Self::WORD_VALID
            | ((route.from.0 as u32 & 0xff) << 16)
            | ((route.to.0 as u32 & 0xff) << 8)
            | (route.to_port as u32 & 0xff)
    }

    /// Programs one switch word — the MMIO write path from the RISC-V
    /// controller. `WORD_CLEAR` tears down all routes.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError`] if the word is malformed or the route
    /// contends for a port.
    pub fn program(&mut self, word: u32) -> Result<(), FabricError> {
        if word == Self::WORD_CLEAR {
            self.routes.clear();
            return Ok(());
        }
        if word & Self::WORD_VALID == 0 {
            return Err(FabricError::BadSwitchWord(word));
        }
        let route = Route {
            from: NodeId(((word >> 16) & 0xff) as usize),
            to: NodeId(((word >> 8) & 0xff) as usize),
            to_port: (word & 0xff) as usize,
        };
        self.connect(route)
    }

    /// All configured routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Routes leaving `from` (circuit fan-out).
    pub fn routes_from(&self, from: NodeId) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter(move |r| r.from == from)
    }

    /// Number of programmable switch points the configuration occupies
    /// (one mux/demux pair per route).
    pub fn switch_count(&self) -> usize {
        self.routes.len()
    }

    /// Validates every route against the installed PE array: nodes exist,
    /// ports exist, and interfaces match (§IV-D's configuration rule).
    ///
    /// # Errors
    ///
    /// Returns the first [`FabricError`] found.
    pub fn validate(&self, pes: &[&dyn ProcessingElement]) -> Result<(), FabricError> {
        for route in &self.routes {
            let from = pes
                .get(route.from.0)
                .ok_or(FabricError::NoSuchNode(route.from))?;
            let to = pes
                .get(route.to.0)
                .ok_or(FabricError::NoSuchNode(route.to))?;
            let expects = *to
                .input_ports()
                .get(route.to_port)
                .ok_or(FabricError::NoSuchPort { route: *route })?;
            let produces = from.output_kind();
            if produces != expects {
                return Err(FabricError::InterfaceMismatch {
                    route: *route,
                    produces,
                    expects,
                });
            }
        }
        Ok(())
    }

    /// Records one SEND-ACK transfer of `token` over the 8-bit bus.
    pub fn record_transfer(&mut self, token: &Token) {
        self.transfers += 1;
        self.bus_bytes += token.wire_bytes() as u64;
    }

    /// Total SEND-ACK handshakes performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved over the 8-bit data bus.
    pub fn bus_bytes(&self) -> u64 {
        self.bus_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::Threshold;
    use halo_pe::pes::{GatePe, NeoPe, ThrPe};

    #[test]
    fn word_round_trip() {
        let route = Route {
            from: NodeId(3),
            to: NodeId(7),
            to_port: 1,
        };
        let mut fabric = Fabric::new();
        fabric.program(Fabric::encode_route(route)).unwrap();
        assert_eq!(fabric.routes(), &[route]);
    }

    #[test]
    fn clear_word_tears_down() {
        let mut fabric = Fabric::new();
        fabric
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            })
            .unwrap();
        fabric.program(Fabric::WORD_CLEAR).unwrap();
        assert!(fabric.routes().is_empty());
    }

    #[test]
    fn invalid_word_rejected() {
        let mut fabric = Fabric::new();
        assert_eq!(
            fabric.program(0x0001_0100),
            Err(FabricError::BadSwitchWord(0x0001_0100))
        );
    }

    #[test]
    fn port_contention_rejected() {
        let mut fabric = Fabric::new();
        let a = Route {
            from: NodeId(0),
            to: NodeId(2),
            to_port: 0,
        };
        let b = Route {
            from: NodeId(1),
            to: NodeId(2),
            to_port: 0,
        };
        fabric.connect(a).unwrap();
        assert!(matches!(
            fabric.connect(b),
            Err(FabricError::PortContention { .. })
        ));
    }

    #[test]
    fn validates_interface_compatibility() {
        // NEO (values out) -> THR (values in): ok.
        // NEO -> GATE port 0 (samples in): mismatch.
        let neo = NeoPe::new();
        let thr = ThrPe::new(Threshold::above(0));
        let gate = GatePe::new(0);
        let pes: Vec<&dyn ProcessingElement> = vec![&neo, &thr, &gate];

        let mut ok = Fabric::new();
        ok.connect(Route {
            from: NodeId(0),
            to: NodeId(1),
            to_port: 0,
        })
        .unwrap();
        assert!(ok.validate(&pes).is_ok());

        let mut bad = Fabric::new();
        bad.connect(Route {
            from: NodeId(0),
            to: NodeId(2),
            to_port: 0,
        })
        .unwrap();
        assert!(matches!(
            bad.validate(&pes),
            Err(FabricError::InterfaceMismatch { .. })
        ));
    }

    #[test]
    fn validates_missing_nodes_and_ports() {
        let neo = NeoPe::new();
        let thr = ThrPe::new(Threshold::above(0));
        let pes: Vec<&dyn ProcessingElement> = vec![&neo, &thr];

        let mut missing = Fabric::new();
        missing
            .connect(Route {
                from: NodeId(0),
                to: NodeId(9),
                to_port: 0,
            })
            .unwrap();
        assert_eq!(
            missing.validate(&pes),
            Err(FabricError::NoSuchNode(NodeId(9)))
        );

        let mut no_port = Fabric::new();
        no_port
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 3,
            })
            .unwrap();
        assert!(matches!(
            no_port.validate(&pes),
            Err(FabricError::NoSuchPort { .. })
        ));
    }

    #[test]
    fn traffic_accounting() {
        let mut fabric = Fabric::new();
        fabric.record_transfer(&Token::Sample(5));
        fabric.record_transfer(&Token::Byte(1));
        assert_eq!(fabric.transfers(), 2);
        assert_eq!(fabric.bus_bytes(), 3);
    }
}
