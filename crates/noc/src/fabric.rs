//! The circuit-switched fabric: nodes, routes, switch programming, and
//! SEND-ACK traffic accounting.

use halo_pe::{ProcessingElement, Token};

/// A PE slot in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A configured circuit route: `from`'s output stream feeds `to`'s input
/// port `to_port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Consumer input port (0 = data, 1 = control on GATE).
    pub to_port: usize,
}

/// Errors raised while programming or validating the fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A switch word did not decode to a legal route.
    BadSwitchWord(u32),
    /// A route references a node beyond the installed PE array.
    NoSuchNode(NodeId),
    /// A route targets a port the consumer does not have.
    NoSuchPort {
        /// The offending route.
        route: Route,
    },
    /// Producer/consumer interface types do not match.
    InterfaceMismatch {
        /// The offending route.
        route: Route,
        /// Producer's output interface.
        produces: halo_pe::InterfaceKind,
        /// Consumer's expected interface on that port.
        expects: halo_pe::InterfaceKind,
    },
    /// Two routes drive the same input port (circuit switching admits one
    /// driver per port).
    PortContention {
        /// The doubly-driven consumer.
        to: NodeId,
        /// The contested port.
        to_port: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadSwitchWord(w) => write!(f, "switch word {w:#010x} is not a valid route"),
            Self::NoSuchNode(n) => write!(f, "route references missing {n}"),
            Self::NoSuchPort { route } => {
                write!(f, "{} has no port {}", route.to, route.to_port)
            }
            Self::InterfaceMismatch {
                route,
                produces,
                expects,
            } => write!(
                f,
                "{} produces {produces} but {} port {} expects {expects}",
                route.from, route.to, route.to_port
            ),
            Self::PortContention { to, to_port } => {
                write!(f, "multiple routes drive {to} port {to_port}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// The programmable circuit-switched interconnect.
///
/// # Example
///
/// ```
/// use halo_noc::{Fabric, NodeId, Route};
/// let mut fabric = Fabric::new();
/// fabric.connect(Route { from: NodeId(0), to: NodeId(1), to_port: 0 }).unwrap();
/// assert_eq!(fabric.routes_from(NodeId(0)).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    routes: Vec<Route>,
    transfers: u64,
    bus_bytes: u64,
    links: Vec<LinkTraffic>,
    /// Dense `(from, to)` → `links` index matrix with side `link_nodes`
    /// (`NO_LINK` where no traffic has flowed), so the per-transfer
    /// accounting on the streaming hot path is O(1) instead of a scan.
    link_index: Vec<u32>,
    link_nodes: usize,
    programs: u64,
    words_written: u64,
    in_program: bool,
    generation: u64,
}

/// Cumulative traffic on one directed link of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// SEND-ACK handshakes on this link.
    pub transfers: u64,
    /// Payload bytes moved on this link.
    pub bytes: u64,
}

impl Fabric {
    /// Switch-word flag marking a route-program word as valid.
    pub const WORD_VALID: u32 = 0x8000_0000;

    /// Switch word that clears all routes (pipeline teardown).
    pub const WORD_CLEAR: u32 = 0;

    /// Modeled peak capacity of one link, in bytes per second. The
    /// asynchronous 8-bit SEND-ACK bus (§IV-D) is modeled at one byte per
    /// handshake with a 46.08 M handshakes/s ceiling — 8x headroom over
    /// the nominal 5.76 MB/s array byte stream. Telemetry's utilization
    /// fractions are relative to this.
    pub const LINK_CAPACITY_BYTES_PER_S: u64 = 46_080_000;

    /// `link_index` sentinel: no traffic recorded on this `(from, to)` pair.
    const NO_LINK: u32 = u32::MAX;

    /// Creates an empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Monotonic configuration generation: bumped by every successful
    /// [`Fabric::connect`] and [`Fabric::program`] (including teardown
    /// words). Consumers that cache derived routing structures — e.g. the
    /// runtime's per-node route table — compare this against the
    /// generation they built at and rebuild on mismatch, so mid-run
    /// reprogramming is observed without per-token checks on the routes
    /// themselves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Adds a route directly (host-side configuration path).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::PortContention`] if the input port already
    /// has a driver.
    pub fn connect(&mut self, route: Route) -> Result<(), FabricError> {
        if self
            .routes
            .iter()
            .any(|r| r.to == route.to && r.to_port == route.to_port)
        {
            return Err(FabricError::PortContention {
                to: route.to,
                to_port: route.to_port,
            });
        }
        self.routes.push(route);
        self.generation += 1;
        Ok(())
    }

    /// Encodes a route as the 32-bit switch word the micro-controller
    /// writes: `VALID | from << 16 | to << 8 | port`.
    pub fn encode_route(route: Route) -> u32 {
        Self::WORD_VALID
            | ((route.from.0 as u32 & 0xff) << 16)
            | ((route.to.0 as u32 & 0xff) << 8)
            | (route.to_port as u32 & 0xff)
    }

    /// Programs one switch word — the MMIO write path from the RISC-V
    /// controller. `WORD_CLEAR` tears down all routes.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError`] if the word is malformed or the route
    /// contends for a port.
    pub fn program(&mut self, word: u32) -> Result<(), FabricError> {
        if word == Self::WORD_CLEAR {
            self.routes.clear();
            self.words_written += 1;
            self.in_program = false;
            self.generation += 1;
            return Ok(());
        }
        if word & Self::WORD_VALID == 0 {
            return Err(FabricError::BadSwitchWord(word));
        }
        let route = Route {
            from: NodeId(((word >> 16) & 0xff) as usize),
            to: NodeId(((word >> 8) & 0xff) as usize),
            to_port: (word & 0xff) as usize,
        };
        self.connect(route)?;
        self.words_written += 1;
        if !self.in_program {
            self.in_program = true;
            self.programs += 1;
        }
        Ok(())
    }

    /// All configured routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// The configured routes as encoded switch words, in programming
    /// order — the exact MMIO sequence that reproduces this fabric from a
    /// clear state (captured into trace logs for deterministic replay).
    pub fn encoded_routes(&self) -> Vec<u32> {
        self.routes.iter().map(|r| Self::encode_route(*r)).collect()
    }

    /// Routes leaving `from` (circuit fan-out).
    pub fn routes_from(&self, from: NodeId) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter(move |r| r.from == from)
    }

    /// Number of programmable switch points the configuration occupies
    /// (one mux/demux pair per route).
    pub fn switch_count(&self) -> usize {
        self.routes.len()
    }

    /// Validates every route against the installed PE array: nodes exist,
    /// ports exist, and interfaces match (§IV-D's configuration rule).
    ///
    /// # Errors
    ///
    /// Returns the first [`FabricError`] found.
    pub fn validate(&self, pes: &[&dyn ProcessingElement]) -> Result<(), FabricError> {
        for route in &self.routes {
            let from = pes
                .get(route.from.0)
                .ok_or(FabricError::NoSuchNode(route.from))?;
            let to = pes
                .get(route.to.0)
                .ok_or(FabricError::NoSuchNode(route.to))?;
            let expects = *to
                .input_ports()
                .get(route.to_port)
                .ok_or(FabricError::NoSuchPort { route: *route })?;
            let produces = from.output_kind();
            if produces != expects {
                return Err(FabricError::InterfaceMismatch {
                    route: *route,
                    produces,
                    expects,
                });
            }
        }
        Ok(())
    }

    /// Records one SEND-ACK transfer of `token` from `from` to `to` over
    /// the 8-bit bus, accounting both fabric totals and the per-link
    /// traffic matrix. O(1): the `(from, to)` pair indexes a dense matrix
    /// rather than scanning the link table (this runs once per token per
    /// route on the streaming hot path).
    pub fn record_transfer(&mut self, from: NodeId, to: NodeId, token: &Token) {
        self.record_transfer_bytes(from, to, token.wire_bytes() as u64);
    }

    /// [`Fabric::record_transfer`] with the payload size already computed —
    /// lets the runtime charge one `wire_bytes` evaluation per token across
    /// every counter it feeds.
    pub fn record_transfer_bytes(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        self.record_transfers(from, to, 1, bytes);
    }

    /// Batched form of [`Fabric::record_transfer_bytes`]: charges `tokens`
    /// transfers totalling `bytes` to one link in a single matrix lookup.
    /// The runtime uses this to account a whole drained burst at once.
    pub fn record_transfers(&mut self, from: NodeId, to: NodeId, tokens: u64, bytes: u64) {
        self.transfers += tokens;
        self.bus_bytes += bytes;
        let slot = self.link_slot(from, to);
        let link = &mut self.links[slot];
        link.transfers += tokens;
        link.bytes += bytes;
    }

    /// Index into `links` for `(from, to)`, allocating the link (and
    /// growing the matrix) on first use. `links` keeps first-use order.
    fn link_slot(&mut self, from: NodeId, to: NodeId) -> usize {
        if from.0 >= self.link_nodes || to.0 >= self.link_nodes {
            self.grow_link_matrix(from.0.max(to.0) + 1);
        }
        let cell = from.0 * self.link_nodes + to.0;
        let idx = self.link_index[cell];
        if idx != Self::NO_LINK {
            return idx as usize;
        }
        let slot = self.links.len();
        self.links.push(LinkTraffic {
            from,
            to,
            transfers: 0,
            bytes: 0,
        });
        self.link_index[cell] = slot as u32;
        slot
    }

    fn grow_link_matrix(&mut self, min_side: usize) {
        let side = min_side.next_power_of_two().max(8);
        let mut index = vec![Self::NO_LINK; side * side];
        for (slot, link) in self.links.iter().enumerate() {
            index[link.from.0 * side + link.to.0] = slot as u32;
        }
        self.link_index = index;
        self.link_nodes = side;
    }

    /// Total SEND-ACK handshakes performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved over the 8-bit data bus.
    pub fn bus_bytes(&self) -> u64 {
        self.bus_bytes
    }

    /// Cumulative per-link traffic, in first-use order. Links survive
    /// reprogramming: traffic is an account of what happened, not of the
    /// current route table.
    pub fn link_traffic(&self) -> &[LinkTraffic] {
        &self.links
    }

    /// Number of complete switch-programming sequences executed (one per
    /// `WORD_CLEAR`-initiated teardown that was followed by route words,
    /// plus the initial programming).
    pub fn switch_programs(&self) -> u64 {
        self.programs
    }

    /// Total switch words accepted over the MMIO path (route words and
    /// clears alike).
    pub fn switch_words(&self) -> u64 {
        self.words_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_kernels::Threshold;
    use halo_pe::pes::{GatePe, NeoPe, ThrPe};

    #[test]
    fn word_round_trip() {
        let route = Route {
            from: NodeId(3),
            to: NodeId(7),
            to_port: 1,
        };
        let mut fabric = Fabric::new();
        fabric.program(Fabric::encode_route(route)).unwrap();
        assert_eq!(fabric.routes(), &[route]);
    }

    #[test]
    fn clear_word_tears_down() {
        let mut fabric = Fabric::new();
        fabric
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            })
            .unwrap();
        fabric.program(Fabric::WORD_CLEAR).unwrap();
        assert!(fabric.routes().is_empty());
    }

    #[test]
    fn generation_bumps_on_every_reconfiguration() {
        let mut fabric = Fabric::new();
        let g0 = fabric.generation();
        fabric
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 0,
            })
            .unwrap();
        let g1 = fabric.generation();
        assert!(g1 > g0, "connect did not bump the generation");
        fabric.program(Fabric::WORD_CLEAR).unwrap();
        let g2 = fabric.generation();
        assert!(g2 > g1, "teardown did not bump the generation");
        // A rejected word leaves the generation alone: cached route
        // tables stay valid.
        assert!(fabric.program(0x0001_0100).is_err());
        assert_eq!(fabric.generation(), g2);
    }

    #[test]
    fn link_matrix_grows_for_high_node_ids() {
        let mut fabric = Fabric::new();
        fabric.record_transfers(NodeId(0), NodeId(1), 2, 3);
        // Node ids beyond the initial matrix side force a regrow; the
        // earlier link's counters must survive it.
        fabric.record_transfers(NodeId(40), NodeId(41), 5, 7);
        fabric.record_transfers(NodeId(0), NodeId(1), 1, 1);
        let links = fabric.link_traffic();
        let ab = links
            .iter()
            .find(|l| l.from == NodeId(0) && l.to == NodeId(1))
            .expect("low link");
        assert_eq!((ab.transfers, ab.bytes), (3, 4));
        let hi = links
            .iter()
            .find(|l| l.from == NodeId(40) && l.to == NodeId(41))
            .expect("high link");
        assert_eq!((hi.transfers, hi.bytes), (5, 7));
    }

    #[test]
    fn invalid_word_rejected() {
        let mut fabric = Fabric::new();
        assert_eq!(
            fabric.program(0x0001_0100),
            Err(FabricError::BadSwitchWord(0x0001_0100))
        );
    }

    #[test]
    fn port_contention_rejected() {
        let mut fabric = Fabric::new();
        let a = Route {
            from: NodeId(0),
            to: NodeId(2),
            to_port: 0,
        };
        let b = Route {
            from: NodeId(1),
            to: NodeId(2),
            to_port: 0,
        };
        fabric.connect(a).unwrap();
        assert!(matches!(
            fabric.connect(b),
            Err(FabricError::PortContention { .. })
        ));
    }

    #[test]
    fn validates_interface_compatibility() {
        // NEO (values out) -> THR (values in): ok.
        // NEO -> GATE port 0 (samples in): mismatch.
        let neo = NeoPe::new();
        let thr = ThrPe::new(Threshold::above(0));
        let gate = GatePe::new(0);
        let pes: Vec<&dyn ProcessingElement> = vec![&neo, &thr, &gate];

        let mut ok = Fabric::new();
        ok.connect(Route {
            from: NodeId(0),
            to: NodeId(1),
            to_port: 0,
        })
        .unwrap();
        assert!(ok.validate(&pes).is_ok());

        let mut bad = Fabric::new();
        bad.connect(Route {
            from: NodeId(0),
            to: NodeId(2),
            to_port: 0,
        })
        .unwrap();
        assert!(matches!(
            bad.validate(&pes),
            Err(FabricError::InterfaceMismatch { .. })
        ));
    }

    #[test]
    fn validates_missing_nodes_and_ports() {
        let neo = NeoPe::new();
        let thr = ThrPe::new(Threshold::above(0));
        let pes: Vec<&dyn ProcessingElement> = vec![&neo, &thr];

        let mut missing = Fabric::new();
        missing
            .connect(Route {
                from: NodeId(0),
                to: NodeId(9),
                to_port: 0,
            })
            .unwrap();
        assert_eq!(
            missing.validate(&pes),
            Err(FabricError::NoSuchNode(NodeId(9)))
        );

        let mut no_port = Fabric::new();
        no_port
            .connect(Route {
                from: NodeId(0),
                to: NodeId(1),
                to_port: 3,
            })
            .unwrap();
        assert!(matches!(
            no_port.validate(&pes),
            Err(FabricError::NoSuchPort { .. })
        ));
    }

    #[test]
    fn traffic_accounting() {
        let mut fabric = Fabric::new();
        fabric.record_transfer(NodeId(0), NodeId(1), &Token::Sample(5));
        fabric.record_transfer(NodeId(0), NodeId(1), &Token::Byte(1));
        fabric.record_transfer(NodeId(1), NodeId(2), &Token::Byte(7));
        assert_eq!(fabric.transfers(), 3);
        assert_eq!(fabric.bus_bytes(), 4);

        let links = fabric.link_traffic();
        assert_eq!(links.len(), 2);
        assert_eq!(
            links[0],
            LinkTraffic {
                from: NodeId(0),
                to: NodeId(1),
                transfers: 2,
                bytes: 3,
            }
        );
        assert_eq!(
            links[1],
            LinkTraffic {
                from: NodeId(1),
                to: NodeId(2),
                transfers: 1,
                bytes: 1,
            }
        );
        // Per-link traffic always sums to the fabric totals.
        assert_eq!(
            links.iter().map(|l| l.bytes).sum::<u64>(),
            fabric.bus_bytes()
        );
    }

    #[test]
    fn switch_programming_is_counted() {
        let route = |from: usize, to: usize| {
            Fabric::encode_route(Route {
                from: NodeId(from),
                to: NodeId(to),
                to_port: 0,
            })
        };
        let mut fabric = Fabric::new();
        // Initial programming: two route words = one program.
        fabric.program(route(0, 1)).unwrap();
        fabric.program(route(1, 2)).unwrap();
        assert_eq!(fabric.switch_programs(), 1);
        assert_eq!(fabric.switch_words(), 2);
        // Teardown + reprogram = a second program.
        fabric.program(Fabric::WORD_CLEAR).unwrap();
        fabric.program(route(0, 2)).unwrap();
        assert_eq!(fabric.switch_programs(), 2);
        assert_eq!(fabric.switch_words(), 4);
        // Rejected words count nothing.
        assert!(fabric.program(0x0001_0000).is_err());
        assert_eq!(fabric.switch_words(), 4);
    }
}
