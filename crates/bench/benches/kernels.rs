//! Throughput benchmarks for the Table III kernels.

use halo_bench::timing::{bench, Throughput};
use halo_kernels::{
    Aes128, Bbf, BbfDesign, Dwt, Fft, LinearSvm, LzMatcher, Neo, StreamingXcor, XcorConfig,
};
use halo_signal::{RecordingConfig, RegionProfile};

fn neural_samples(n_ms: usize) -> Vec<i16> {
    RecordingConfig::new(RegionProfile::arm())
        .channels(1)
        .duration_ms(n_ms)
        .generate(1)
        .channel(0)
}

fn bench_fft() {
    for points in [256usize, 1024] {
        let fft = Fft::new(points).unwrap();
        let samples = neural_samples(100);
        let window = samples[..points].to_vec();
        bench(
            "fft",
            &format!("power_spectrum_{points}"),
            Throughput::Elements(points as u64),
            || (),
            |_| fft.power_spectrum(std::hint::black_box(&window)),
        );
    }
}

fn bench_bbf() {
    let design = BbfDesign::new(14.0, 25.0, 30_000).unwrap();
    let samples = neural_samples(100);
    bench(
        "bbf",
        "fixed_point_block",
        Throughput::Elements(samples.len() as u64),
        || Bbf::new(&design),
        |mut bbf| bbf.process_block(std::hint::black_box(&samples)),
    );
}

fn bench_neo() {
    let samples = neural_samples(100);
    bench(
        "neo",
        "block",
        Throughput::Elements(samples.len() as u64),
        || (),
        |_| Neo::process_block(std::hint::black_box(&samples)),
    );
}

fn bench_dwt() {
    for levels in [1usize, 4] {
        let dwt = Dwt::new(levels).unwrap();
        let n = 4096;
        let data: Vec<i32> = neural_samples(200)[..n].iter().map(|&s| s as i32).collect();
        bench(
            "dwt",
            &format!("forward_{levels}_levels"),
            Throughput::Elements(n as u64),
            || data.clone(),
            |mut buf| dwt.forward(std::hint::black_box(&mut buf)),
        );
    }
}

fn bench_xcor() {
    let channels = 8;
    let window = 512;
    let pairs: Vec<(u8, u8)> = (0..channels as u8)
        .flat_map(|i| ((i + 1)..channels as u8).map(move |j| (i, j)))
        .collect();
    let config = XcorConfig::new(channels, window, 16, pairs).unwrap();
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(40)
        .generate(2);
    let frames: Vec<Vec<i16>> = (0..window).map(|t| rec.frame(t).to_vec()).collect();
    bench(
        "xcor",
        "streaming_window_28_pairs",
        Throughput::Elements((window * channels) as u64),
        || StreamingXcor::new(config.clone()),
        |mut x| {
            for f in &frames {
                std::hint::black_box(x.push_frame(f));
            }
        },
    );
}

fn bench_aes() {
    let aes = Aes128::new([7; 16]);
    let data = vec![0xA5u8; 4096];
    bench(
        "aes",
        "ecb_4k",
        Throughput::Bytes(data.len() as u64),
        || (),
        |_| aes.encrypt_ecb(std::hint::black_box(&data)),
    );
}

fn bench_lz() {
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(4)
        .duration_ms(100)
        .generate(3);
    let bytes = rec.to_bytes_le();
    let lz = LzMatcher::new(4096).unwrap();
    bench(
        "lz",
        "parse_neural",
        Throughput::Bytes(bytes.len() as u64),
        || (),
        |_| lz.parse(std::hint::black_box(&bytes)),
    );
}

fn bench_svm() {
    let dim = 5000; // the PE's maximum weight count
    let svm = LinearSvm::new((0..dim).map(|i| (i % 7) - 3).collect(), 42).unwrap();
    let features: Vec<i32> = (0..dim).map(|i| i * 31 % 1000).collect();
    bench(
        "svm",
        "classify_5000_weights",
        Throughput::Elements(dim as u64),
        || (),
        |_| svm.classify(std::hint::black_box(&features)),
    );
}

fn main() {
    bench_fft();
    bench_bbf();
    bench_neo();
    bench_dwt();
    bench_xcor();
    bench_aes();
    bench_lz();
    bench_svm();
}
