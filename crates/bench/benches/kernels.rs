//! Criterion throughput benchmarks for the Table III kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use halo_kernels::{
    Aes128, Bbf, BbfDesign, Dwt, Fft, LinearSvm, LzMatcher, Neo, StreamingXcor, XcorConfig,
};
use halo_signal::{RecordingConfig, RegionProfile};

fn neural_samples(n_ms: usize) -> Vec<i16> {
    RecordingConfig::new(RegionProfile::arm())
        .channels(1)
        .duration_ms(n_ms)
        .generate(1)
        .channel(0)
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for points in [256usize, 1024] {
        let fft = Fft::new(points).unwrap();
        let samples = neural_samples(100);
        let window = samples[..points].to_vec();
        g.throughput(Throughput::Elements(points as u64));
        g.bench_function(format!("power_spectrum_{points}"), |b| {
            b.iter(|| fft.power_spectrum(std::hint::black_box(&window)))
        });
    }
    g.finish();
}

fn bench_bbf(c: &mut Criterion) {
    let design = BbfDesign::new(14.0, 25.0, 30_000).unwrap();
    let samples = neural_samples(100);
    let mut g = c.benchmark_group("bbf");
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("fixed_point_block", |b| {
        b.iter_batched(
            || Bbf::new(&design),
            |mut bbf| bbf.process_block(std::hint::black_box(&samples)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_neo(c: &mut Criterion) {
    let samples = neural_samples(100);
    let mut g = c.benchmark_group("neo");
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("block", |b| {
        b.iter(|| Neo::process_block(std::hint::black_box(&samples)))
    });
    g.finish();
}

fn bench_dwt(c: &mut Criterion) {
    let mut g = c.benchmark_group("dwt");
    for levels in [1usize, 4] {
        let dwt = Dwt::new(levels).unwrap();
        let n = 4096;
        let data: Vec<i32> = neural_samples(200)[..n].iter().map(|&s| s as i32).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("forward_{levels}_levels"), |b| {
            b.iter_batched(
                || data.clone(),
                |mut buf| dwt.forward(std::hint::black_box(&mut buf)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_xcor(c: &mut Criterion) {
    let channels = 8;
    let window = 512;
    let pairs: Vec<(u8, u8)> = (0..channels as u8)
        .flat_map(|i| ((i + 1)..channels as u8).map(move |j| (i, j)))
        .collect();
    let config = XcorConfig::new(channels, window, 16, pairs).unwrap();
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(40)
        .generate(2);
    let frames: Vec<Vec<i16>> = (0..window).map(|t| rec.frame(t).to_vec()).collect();
    let mut g = c.benchmark_group("xcor");
    g.throughput(Throughput::Elements((window * channels) as u64));
    g.bench_function("streaming_window_28_pairs", |b| {
        b.iter_batched(
            || StreamingXcor::new(config.clone()),
            |mut x| {
                for f in &frames {
                    std::hint::black_box(x.push_frame(f));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new([7; 16]);
    let data = vec![0xA5u8; 4096];
    let mut g = c.benchmark_group("aes");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("ecb_4k", |b| {
        b.iter(|| aes.encrypt_ecb(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_lz(c: &mut Criterion) {
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(4)
        .duration_ms(100)
        .generate(3);
    let bytes = rec.to_bytes_le();
    let lz = LzMatcher::new(4096).unwrap();
    let mut g = c.benchmark_group("lz");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("parse_neural", |b| {
        b.iter(|| lz.parse(std::hint::black_box(&bytes)))
    });
    g.finish();
}

fn bench_svm(c: &mut Criterion) {
    let dim = 5000; // the PE's maximum weight count
    let svm = LinearSvm::new((0..dim).map(|i| (i % 7) as i32 - 3).collect(), 42).unwrap();
    let features: Vec<i32> = (0..dim).map(|i| (i * 31 % 1000) as i32).collect();
    let mut g = c.benchmark_group("svm");
    g.throughput(Throughput::Elements(dim as u64));
    g.bench_function("classify_5000_weights", |b| {
        b.iter(|| svm.classify(std::hint::black_box(&features)))
    });
    g.finish();
}

criterion_group!(
    benches, bench_fft, bench_bbf, bench_neo, bench_dwt, bench_xcor, bench_aes, bench_lz,
    bench_svm
);
criterion_main!(benches);
