//! Benchmarks of the full PE pipelines (system-level streaming throughput
//! per task).

use halo_bench::timing::{bench, Throughput};
use halo_core::{HaloConfig, HaloSystem, Task};
use halo_signal::{RecordingConfig, RegionProfile};

fn bench_tasks() {
    let channels = 8;
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(50)
        .generate(21);
    let elements = (rec.samples_per_channel() * channels) as u64;
    for task in Task::all() {
        bench(
            "pipeline",
            task.label(),
            Throughput::Elements(elements),
            || HaloSystem::new(task, HaloConfig::small_test(channels)).unwrap(),
            |mut sys| sys.process(std::hint::black_box(&rec)).unwrap(),
        );
    }
}

fn bench_bringup() {
    // Device reconfiguration cost: firmware-driven switch programming.
    for task in [Task::CompressLzma, Task::SeizurePrediction] {
        bench(
            "bringup",
            task.label(),
            Throughput::None,
            || (),
            |_| HaloSystem::new(task, HaloConfig::small_test(4)).unwrap(),
        );
    }
}

fn main() {
    bench_tasks();
    bench_bringup();
}
