//! Criterion benchmarks of the full PE pipelines (system-level streaming
//! throughput per task).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use halo_core::{HaloConfig, HaloSystem, Task};
use halo_signal::{RecordingConfig, RegionProfile};

fn bench_tasks(c: &mut Criterion) {
    let channels = 8;
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(50)
        .generate(21);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        (rec.samples_per_channel() * channels) as u64,
    ));
    for task in Task::all() {
        g.bench_function(task.label(), |b| {
            b.iter_batched(
                || HaloSystem::new(task, HaloConfig::small_test(channels)).unwrap(),
                |mut sys| sys.process(std::hint::black_box(&rec)).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_bringup(c: &mut Criterion) {
    // Device reconfiguration cost: firmware-driven switch programming.
    let mut g = c.benchmark_group("bringup");
    for task in [Task::CompressLzma, Task::SeizurePrediction] {
        g.bench_function(task.label(), |b| {
            b.iter(|| HaloSystem::new(task, HaloConfig::small_test(4)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tasks, bench_bringup);
criterion_main!(benches);
