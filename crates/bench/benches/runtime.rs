//! End-to-end streaming-runtime throughput: frames/s per pipeline family.
//!
//! This is the repo's throughput baseline for the hot path exercised by
//! every Figure 4–9 experiment: `HaloSystem::process` replaying a
//! synthetic ADC stream through a PE graph. Each result is the median of
//! repeated full-stream replays, reported as ADC frames per second and
//! as a multiple of the 30 kHz real-time rate the hardware must sustain.
//!
//! Run with `--json <path>` to also write the machine-readable
//! `BENCH_runtime.json` consumed by `docs/performance.md` and the CI
//! bench smoke step.

use std::time::{Duration, Instant};

use halo_core::{HaloConfig, HaloSystem, Task};
use halo_signal::{Recording, RecordingConfig, RegionProfile};

/// Frames/s measured at the pre-optimization baseline commit (route
/// table, bulk FIFO drains, dense link matrix, and thin-LTO release
/// profile all absent). Medians of six runs interleaved with the
/// optimized binary on the same machine, so both sides saw the same
/// load; regenerate by grafting this bench onto the parent of the
/// hot-path commit and alternating the two binaries. Keyed by task
/// label.
const BASELINE_FRAMES_PER_S: &[(&str, f64)] = &[
    ("SpikeDet(NEO)", 660_000.0),
    ("SpikeDet(DWT)", 1_044_000.0),
    ("Compr(LZ4)", 535_000.0),
    ("Compr(LZMA)", 218_000.0),
    ("Compr(DWTMA)", 480_000.0),
    ("MoveIntent", 7_114_000.0),
    ("SeizurePred", 2_201_000.0),
    ("Encrypt(Raw)", 1_710_000.0),
];

struct PipelineResult {
    task: Task,
    frames: u64,
    median_s: f64,
    frames_per_s: f64,
}

fn median_run(task: Task, channels: usize, rec: &Recording) -> PipelineResult {
    let config = HaloConfig::small_test(channels);
    // One warm-up replay, then size the sample count for ~300 ms.
    let mut sys = HaloSystem::new(task, config.clone()).unwrap();
    let t0 = Instant::now();
    let metrics = sys.process(std::hint::black_box(rec)).unwrap();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let frames = metrics.frames;

    let samples = (Duration::from_millis(300).as_nanos() / once.as_nanos()).clamp(3, 200) as usize;
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    let median_s = times[times.len() / 2].as_secs_f64().max(1e-12);
    PipelineResult {
        task,
        frames,
        median_s,
        frames_per_s: frames as f64 / median_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let channels = 8;
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(100)
        .generate(21);

    let mut results = Vec::new();
    for task in Task::all() {
        let r = median_run(task, channels, &rec);
        let baseline = BASELINE_FRAMES_PER_S
            .iter()
            .find(|(label, _)| *label == r.task.label())
            .map(|&(_, f)| f);
        let speedup = baseline.map_or(String::new(), |b| format!("  {:>5.2}x", r.frames_per_s / b));
        println!(
            "runtime/{:<16} {:>10.0} frames/s  ({:>6.1}x real-time, {:>9.3} ms/replay){speedup}",
            r.task.label(),
            r.frames_per_s,
            r.frames_per_s / 30_000.0,
            r.median_s * 1e3,
        );
        results.push(r);
    }

    if let Some(path) = json_path {
        let mut json = String::from("{\"bench\":\"runtime\",\"channels\":8,\"pipelines\":[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let baseline = BASELINE_FRAMES_PER_S
                .iter()
                .find(|(label, _)| *label == r.task.label())
                .map(|&(_, f)| f);
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"frames\":{},\"median_s\":{:.6},\"frames_per_s\":{:.0},\"baseline_frames_per_s\":{},\"speedup\":{}}}",
                r.task.label(),
                r.frames,
                r.median_s,
                r.frames_per_s,
                baseline.map_or("null".to_string(), |b| format!("{b:.0}")),
                baseline.map_or("null".to_string(), |b| format!(
                    "{:.2}",
                    r.frames_per_s / b
                )),
            ));
        }
        json.push_str("]}");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}
