//! End-to-end streaming-runtime throughput: frames/s per pipeline family.
//!
//! This is the repo's throughput baseline for the hot path exercised by
//! every Figure 4–9 experiment: `HaloSystem::process` replaying a
//! synthetic ADC stream through a PE graph. Each result is the median of
//! repeated full-stream replays, reported as ADC frames per second and
//! as a multiple of the 30 kHz real-time rate the hardware must sustain.
//!
//! Run with `--json <path>` to also write the machine-readable
//! `BENCH_runtime.json` consumed by `docs/performance.md` and the CI
//! bench smoke step.

use std::sync::Arc;
use std::time::{Duration, Instant};

use halo_core::runtime::{FaultAction, ScheduledFault};
use halo_core::{HaloConfig, HaloSystem, Task};
use halo_signal::{Recording, RecordingConfig, RegionProfile};
use halo_telemetry::{
    json, AlertPolicy, ContinuousConfig, ContinuousTelemetry, CycleProfile, HealthConfig,
    HealthMonitor, NullSink, ProfileDiff, Recorder, Tracer,
};

/// Frames/s measured at the pre-optimization baseline commit (route
/// table, bulk FIFO drains, dense link matrix, and thin-LTO release
/// profile all absent). Medians of six runs interleaved with the
/// optimized binary on the same machine, so both sides saw the same
/// load; regenerate by grafting this bench onto the parent of the
/// hot-path commit and alternating the two binaries. Keyed by task
/// label.
const BASELINE_FRAMES_PER_S: &[(&str, f64)] = &[
    ("SpikeDet(NEO)", 660_000.0),
    ("SpikeDet(DWT)", 1_044_000.0),
    ("Compr(LZ4)", 535_000.0),
    ("Compr(LZMA)", 218_000.0),
    ("Compr(DWTMA)", 480_000.0),
    ("MoveIntent", 7_114_000.0),
    ("SeizurePred", 2_201_000.0),
    ("Encrypt(Raw)", 1_710_000.0),
];

struct PipelineResult {
    task: Task,
    frames: u64,
    median_s: f64,
    frames_per_s: f64,
    /// Relative interquartile spread of the replicate times — the run's
    /// own noise estimate, which `--check` folds into its threshold.
    spread: f64,
}

fn median_run(task: Task, channels: usize, rec: &Recording) -> PipelineResult {
    let config = HaloConfig::small_test(channels);
    // One warm-up replay, then size the sample count for ~300 ms.
    let mut sys = HaloSystem::new(task, config.clone()).unwrap();
    let t0 = Instant::now();
    let metrics = sys.process(std::hint::black_box(rec)).unwrap();
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let frames = metrics.frames;

    let samples = (Duration::from_millis(300).as_nanos() / once.as_nanos()).clamp(3, 200) as usize;
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        times.push(t.elapsed());
    }
    times.sort_unstable();
    let median_s = times[times.len() / 2].as_secs_f64().max(1e-12);
    let spread = (times[times.len() * 3 / 4].as_secs_f64() - times[times.len() / 4].as_secs_f64())
        / median_s;
    PipelineResult {
        task,
        frames,
        median_s,
        frames_per_s: frames as f64 / median_s,
        spread,
    }
}

/// Telemetry sink to attach to each replay of the health-overhead A/B.
#[derive(Clone, Copy)]
enum SinkVariant {
    /// No sink at all — the pre-telemetry baseline.
    Bare,
    /// The disabled `NullSink` (the `enabled()` gate must make this free).
    Null,
    /// A `Recorder` wrapped in a `HealthMonitor` — full active telemetry.
    Health,
}

struct OverheadResult {
    task: Task,
    bare_s: f64,
    null_s: f64,
    health_s: f64,
}

/// A/B/C the watchdog's overhead on one task: replays of the same stream
/// with the three sink variants interleaved round-robin, so slow drift on
/// the host machine hits every variant equally. Returns per-variant
/// median replay time.
fn health_overhead(task: Task, channels: usize, rec: &Recording, rounds: usize) -> OverheadResult {
    let config = HaloConfig::small_test(channels);
    let replay = |variant: SinkVariant| {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        match variant {
            SinkVariant::Bare => {}
            SinkVariant::Null => sys.attach_telemetry(Arc::new(NullSink)),
            SinkVariant::Health => {
                let recorder = Arc::new(Recorder::new(4096).with_sample_rate_hz(30_000));
                sys.attach_health(Arc::new(HealthMonitor::new(
                    recorder,
                    HealthConfig {
                        policy: AlertPolicy::Record,
                        ..HealthConfig::default()
                    },
                )));
            }
        }
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        t.elapsed()
    };
    // Warm-up one replay per variant, then measure interleaved.
    let mut times: [Vec<Duration>; 3] = Default::default();
    for variant in [SinkVariant::Bare, SinkVariant::Null, SinkVariant::Health] {
        replay(variant);
    }
    for _ in 0..rounds {
        for (i, variant) in [SinkVariant::Bare, SinkVariant::Null, SinkVariant::Health]
            .into_iter()
            .enumerate()
        {
            times[i].push(replay(variant));
        }
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64().max(1e-12)
    };
    OverheadResult {
        task,
        bare_s: median(&mut times[0]),
        null_s: median(&mut times[1]),
        health_s: median(&mut times[2]),
    }
}

/// Tracer variant to attach to each replay of the tracing-overhead A/B.
#[derive(Clone, Copy)]
enum TracerVariant {
    /// No tracer at all — the pre-tracing baseline.
    Bare,
    /// Tracer attached with sampling rate 0: the hot path pays the
    /// per-frame sampler check and per-burst tag read, nothing else.
    SamplingOff,
    /// Tracer attached at the 1-in-64 production sampling rate.
    OneIn64,
}

struct TracingOverheadResult {
    task: Task,
    bare_s: f64,
    off_s: f64,
    sampled_s: f64,
}

/// A/B/C the causal tracer's overhead on one task, interleaved round-robin
/// like [`health_overhead`] so host drift hits every variant equally.
fn tracing_overhead(
    task: Task,
    channels: usize,
    rec: &Recording,
    rounds: usize,
) -> TracingOverheadResult {
    let config = HaloConfig::small_test(channels);
    let replay = |variant: TracerVariant| {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        match variant {
            TracerVariant::Bare => {}
            TracerVariant::SamplingOff => sys.attach_tracing(Arc::new(Tracer::new(7, 0))),
            TracerVariant::OneIn64 => sys.attach_tracing(Arc::new(Tracer::new(7, 64))),
        }
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        t.elapsed()
    };
    let variants = [
        TracerVariant::Bare,
        TracerVariant::SamplingOff,
        TracerVariant::OneIn64,
    ];
    let mut times: [Vec<Duration>; 3] = Default::default();
    for variant in variants {
        replay(variant);
    }
    for _ in 0..rounds {
        for (i, variant) in variants.into_iter().enumerate() {
            times[i].push(replay(variant));
        }
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64().max(1e-12)
    };
    TracingOverheadResult {
        task,
        bare_s: median(&mut times[0]),
        off_s: median(&mut times[1]),
        sampled_s: median(&mut times[2]),
    }
}

struct ContinuousOverheadResult {
    task: Task,
    health_s: f64,
    continuous_s: f64,
}

/// A/B the continuous-telemetry layer against the bare watchdog,
/// interleaved round-robin like [`health_overhead`] so host drift hits
/// both variants equally. Both sides run a full `HealthMonitor`; the
/// "continuous" side additionally scrapes every window into the embedded
/// tsdb and polls the SLO/anomaly engines — the cost this measures is the
/// whole history-keeping layer, which must stay within the ≤2% envelope.
fn continuous_overhead(
    task: Task,
    channels: usize,
    rec: &Recording,
    rounds: usize,
) -> ContinuousOverheadResult {
    let config = HaloConfig::small_test(channels);
    let replay = |attach_continuous: bool| {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        let recorder = Arc::new(Recorder::new(4096).with_sample_rate_hz(30_000));
        let monitor = Arc::new(HealthMonitor::new(
            recorder,
            HealthConfig {
                policy: AlertPolicy::Record,
                ..HealthConfig::default()
            },
        ));
        if attach_continuous {
            sys.attach_continuous(Arc::new(ContinuousTelemetry::new(
                monitor,
                ContinuousConfig::default(),
            )));
        } else {
            sys.attach_health(monitor);
        }
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        t.elapsed()
    };
    let mut times: [Vec<Duration>; 2] = Default::default();
    replay(false);
    replay(true);
    for _ in 0..rounds {
        times[0].push(replay(false));
        times[1].push(replay(true));
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64().max(1e-12)
    };
    ContinuousOverheadResult {
        task,
        health_s: median(&mut times[0]),
        continuous_s: median(&mut times[1]),
    }
}

struct BlockDispatchResult {
    task: Task,
    off_s: f64,
    on_s: f64,
}

/// A/B the runtime's batched quiet-frame dispatch against the per-frame
/// scalar path on one task, interleaved round-robin like
/// [`health_overhead`] so host drift hits both variants equally. The two
/// paths produce byte-identical outputs (asserted by the
/// `kernel_batching` suite); this measures only the speed difference.
fn block_dispatch_ab(
    task: Task,
    channels: usize,
    rec: &Recording,
    rounds: usize,
) -> BlockDispatchResult {
    let config = HaloConfig::small_test(channels);
    let replay = |on: bool| {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        sys.set_block_dispatch(on);
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        t.elapsed()
    };
    let mut times: [Vec<Duration>; 2] = Default::default();
    replay(false);
    replay(true);
    for _ in 0..rounds {
        times[0].push(replay(false));
        times[1].push(replay(true));
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64().max(1e-12)
    };
    BlockDispatchResult {
        task,
        off_s: median(&mut times[0]),
        on_s: median(&mut times[1]),
    }
}

struct FaultOverheadResult {
    task: Task,
    off_s: f64,
    armed_s: f64,
}

/// A/B the fault-injection hook, interleaved round-robin like
/// [`health_overhead`] so host drift hits both variants equally. "Off"
/// is the shipped default — no schedule attached, the hook is a single
/// `Option` check. "Armed" attaches a schedule whose only fault sits
/// past the end of the stream, so every frame pays the cursor check but
/// nothing ever fires — the worst the hook can cost without injecting.
fn fault_overhead(
    task: Task,
    channels: usize,
    rec: &Recording,
    rounds: usize,
) -> FaultOverheadResult {
    let config = HaloConfig::small_test(channels);
    let replay = |armed: bool| {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        if armed {
            sys.runtime_mut().attach_faults(vec![ScheduledFault {
                frame: u64::MAX,
                action: FaultAction::FifoBitFlip { slot: 0, bit: 0 },
            }]);
        }
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        t.elapsed()
    };
    let mut times: [Vec<Duration>; 2] = Default::default();
    replay(false);
    replay(true);
    for _ in 0..rounds {
        times[0].push(replay(false));
        times[1].push(replay(true));
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64().max(1e-12)
    };
    FaultOverheadResult {
        task,
        off_s: median(&mut times[0]),
        armed_s: median(&mut times[1]),
    }
}

struct ProfileOverheadResult {
    task: Task,
    off_s: f64,
    armed_s: f64,
}

/// A/B the always-on cycle profiler, interleaved round-robin like
/// [`health_overhead`] so host drift hits both variants equally. "Off"
/// is the shipped default — the profile hook is a single `Option` check
/// per frame. "Armed" attaches the profiler, so every frame pays the
/// ingest attribution and every quiet chunk one batched charge — the
/// always-on cost, which must stay within the ≤2% envelope.
fn profile_overhead(
    task: Task,
    channels: usize,
    rec: &Recording,
    rounds: usize,
) -> ProfileOverheadResult {
    let config = HaloConfig::small_test(channels);
    let replay = |armed: bool| {
        let mut sys = HaloSystem::new(task, config.clone()).unwrap();
        if armed {
            sys.attach_profile();
        }
        let t = Instant::now();
        std::hint::black_box(sys.process(std::hint::black_box(rec)).unwrap());
        t.elapsed()
    };
    let mut times: [Vec<Duration>; 2] = Default::default();
    replay(false);
    replay(true);
    for _ in 0..rounds {
        times[0].push(replay(false));
        times[1].push(replay(true));
    }
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2].as_secs_f64().max(1e-12)
    };
    ProfileOverheadResult {
        task,
        off_s: median(&mut times[0]),
        armed_s: median(&mut times[1]),
    }
}

/// One profiled replay of `task`. The profile is deterministic — pure
/// cost-model cycle attribution, no wall clock — so a single replay is
/// exact and byte-stable across machines, which is what lets `--check`
/// diff it against the committed baseline.
fn deterministic_profile(task: Task, channels: usize, rec: &Recording) -> CycleProfile {
    let config = HaloConfig::small_test(channels);
    let mut sys = HaloSystem::new(task, config).unwrap();
    sys.attach_profile();
    sys.process(rec).unwrap();
    sys.profile("bench").expect("profiler attached")
}

/// Regression-sentinel mode: re-measure every pipeline and compare
/// against the committed `BENCH_runtime.json` medians. A pipeline fails
/// when its fresh throughput is below the baseline by more than the
/// noise-aware threshold: `max(--check-threshold, replicate spread)` of
/// either side. Returns the number of regressed pipelines.
///
/// `HALO_BENCH_SYNTHETIC_SLOWDOWN` (a fraction, e.g. `0.10`) inflates
/// every fresh measurement before comparison — CI uses it to prove the
/// gate actually fails on a real slowdown.
fn check_against_baseline(
    baseline: &json::Value,
    threshold_floor: f64,
    slowdown: f64,
    results: &[PipelineResult],
) -> Vec<String> {
    let pipelines = baseline
        .get("pipelines")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| panic!("baseline has no pipelines array"));

    if slowdown != 0.0 {
        println!(
            "check: applying synthetic slowdown of {:.1}%",
            slowdown * 100.0
        );
    }

    let mut regressed = Vec::new();
    for r in results {
        let baseline = pipelines
            .iter()
            .find(|p| p.get("task").and_then(|t| t.as_str()) == Some(r.task.label()));
        let Some(baseline) = baseline else {
            println!("check/{:<16} SKIP (no baseline entry)", r.task.label());
            continue;
        };
        let base_fps = baseline
            .get("frames_per_s")
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("baseline entry for {} lacks frames_per_s", r.task.label()));
        let fresh_fps = r.frames_per_s / (1.0 + slowdown);
        let delta = fresh_fps / base_fps - 1.0;
        // Noise-aware: both sides' interquartile spreads count. An old
        // baseline (before spreads were recorded) contributes zero.
        let base_spread = baseline
            .get("spread")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let threshold = threshold_floor.max(r.spread).max(base_spread);
        let verdict = if delta < -threshold {
            regressed.push(r.task.label().to_string());
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "check/{:<16} {:>10.0} vs {:>10.0} frames/s  ({:>+5.1}%, threshold {:>4.1}%)  {verdict}",
            r.task.label(),
            fresh_fps,
            base_fps,
            delta * 100.0,
            threshold * 100.0,
        );
    }
    regressed
}

/// Differential regression explanation: replay every stock pipeline with
/// the cycle profiler attached, diff the merged profile against the
/// `profiles` section of the committed baseline, and write the verdict
/// (`verdict.json`) plus the fresh folded flamegraph
/// (`profile_fresh.folded`) under `target/bench_check/` for CI to
/// archive. Returns the top-k annotation lines so the sentinel can name
/// the regressed attribution frame in its failure message.
///
/// The profile is deterministic, so a synthetic slowdown would otherwise
/// be invisible to it; when `HALO_BENCH_SYNTHETIC_SLOWDOWN` is set the
/// fresh profile's dominant frame is scaled by the same factor, modeling
/// a slowdown concentrated in the hottest section — which is exactly
/// what the CI probe asserts the diff can name.
fn explain_check(
    baseline: &json::Value,
    regressed: &[String],
    channels: usize,
    rec: &Recording,
    slowdown: f64,
) -> Vec<String> {
    let base = baseline
        .get("profiles")
        .and_then(|v| v.as_array())
        .map(|entries| {
            let mut merged = CycleProfile::new("bench");
            for entry in entries {
                let profile = entry
                    .get("profile")
                    .and_then(CycleProfile::from_json)
                    .unwrap_or_else(|| panic!("baseline profiles entry is malformed"));
                merged.merge(&profile);
            }
            merged
        });

    let mut fresh = CycleProfile::new("bench");
    for task in Task::all() {
        fresh.merge(&deterministic_profile(task, channels, rec));
    }
    if slowdown != 0.0 {
        if let Some((frame, _)) = fresh.dominant_frame() {
            for row in &mut fresh.rows {
                if row.frame() == frame {
                    row.cycles = (row.cycles as f64 * (1.0 + slowdown)) as u64;
                }
            }
        }
    }

    let diff = match &base {
        Some(base) => ProfileDiff::between(base, &fresh, 0.02),
        None => {
            println!("check: baseline has no profiles section; skipping profile diff");
            ProfileDiff::default()
        }
    };
    let annotations = diff.annotate(5);
    for line in &annotations {
        println!("check/profile  {line}");
    }
    if base.is_some() && diff.is_empty() {
        println!("check/profile  no attribution frame moved past 2% cycles/frame");
    }

    let dir = halo_bench::workspace_path("target/bench_check");
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    let mut verdict = String::from("{");
    verdict.push_str(&format!(
        "\"synthetic_slowdown\":{slowdown},\"regressed\":[{}],",
        regressed
            .iter()
            .map(|t| json::string(t))
            .collect::<Vec<_>>()
            .join(",")
    ));
    verdict.push_str(&format!(
        "\"profile_diff\":{},\"annotations\":[{}]}}",
        diff.to_json(),
        annotations
            .iter()
            .map(|a| json::string(a))
            .collect::<Vec<_>>()
            .join(",")
    ));
    debug_assert!(json::validate(&verdict).is_ok());
    std::fs::write(dir.join("verdict.json"), verdict)
        .unwrap_or_else(|e| panic!("writing verdict.json: {e}"));
    std::fs::write(dir.join("profile_fresh.folded"), fresh.folded())
        .unwrap_or_else(|e| panic!("writing profile_fresh.folded: {e}"));
    println!("check: wrote {}", dir.join("verdict.json").display());
    annotations
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let check = args.iter().any(|a| a == "--check");
    let check_baseline = args
        .iter()
        .position(|a| a == "--check-baseline")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let check_threshold: f64 = args
        .iter()
        .position(|a| a == "--check-threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);

    let channels = 8;
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(channels)
        .duration_ms(100)
        .generate(21);

    let mut results = Vec::new();
    for task in Task::all() {
        let r = median_run(task, channels, &rec);
        let baseline = BASELINE_FRAMES_PER_S
            .iter()
            .find(|(label, _)| *label == r.task.label())
            .map(|&(_, f)| f);
        let speedup = baseline.map_or(String::new(), |b| format!("  {:>5.2}x", r.frames_per_s / b));
        println!(
            "runtime/{:<16} {:>10.0} frames/s  ({:>6.1}x real-time, {:>9.3} ms/replay){speedup}",
            r.task.label(),
            r.frames_per_s,
            r.frames_per_s / 30_000.0,
            r.median_s * 1e3,
        );
        results.push(r);
    }

    if check {
        let path = halo_bench::workspace_path(&check_baseline);
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading baseline {}: {e}", path.display()));
        let baseline = json::parse(&doc)
            .unwrap_or_else(|e| panic!("parsing baseline {}: {e:?}", path.display()));
        let slowdown: f64 = std::env::var("HALO_BENCH_SYNTHETIC_SLOWDOWN")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0);
        let regressed = check_against_baseline(&baseline, check_threshold, slowdown, &results);
        let annotations = explain_check(&baseline, &regressed, channels, &rec, slowdown);
        if !regressed.is_empty() {
            eprintln!(
                "check: {} pipeline(s) regressed past the noise-aware threshold: {}",
                regressed.len(),
                regressed.join(", ")
            );
            match annotations.first() {
                Some(top) => eprintln!("check: dominant attribution delta: {top}"),
                None => eprintln!("check: no attribution frame moved past 2% cycles/frame"),
            }
            std::process::exit(1);
        }
        println!("check: all pipelines within threshold of {check_baseline}");
        return;
    }

    // Health-monitor overhead A/B: the watchdog must be free when
    // telemetry is disabled (NullSink within noise of no sink at all) and
    // cheap when recording. Two representative tasks: the flagship
    // closed-loop pipeline and the heaviest throughput pipeline.
    let mut overheads = Vec::new();
    for task in [Task::SeizurePrediction, Task::CompressLz4] {
        let o = health_overhead(task, channels, &rec, 41);
        println!(
            "health/{:<17} bare {:>8.3} ms  null {:>8.3} ms ({:>+5.1}%)  health {:>8.3} ms ({:>+5.1}%)",
            o.task.label(),
            o.bare_s * 1e3,
            o.null_s * 1e3,
            (o.null_s / o.bare_s - 1.0) * 100.0,
            o.health_s * 1e3,
            (o.health_s / o.bare_s - 1.0) * 100.0,
        );
        overheads.push(o);
    }

    // Continuous-telemetry overhead A/B: keeping history (tsdb scrape +
    // SLO budgets + drift detection) on top of the watchdog must cost
    // ≤2% over the watchdog alone. More rounds than the other A/Bs: the
    // seizure replay is ~0.2 ms, so its median needs the extra samples
    // to settle inside that envelope.
    let mut continuous_overheads = Vec::new();
    for task in [Task::SeizurePrediction, Task::CompressLz4] {
        let o = continuous_overhead(task, channels, &rec, 101);
        println!(
            "continuous/{:<13} health {:>8.3} ms  +tsdb {:>8.3} ms ({:>+5.1}%)",
            o.task.label(),
            o.health_s * 1e3,
            o.continuous_s * 1e3,
            (o.continuous_s / o.health_s - 1.0) * 100.0,
        );
        continuous_overheads.push(o);
    }

    // Causal-tracing overhead A/B: an attached tracer with sampling off
    // must stay within the <2% envelope of no tracer at all; 1-in-64
    // production sampling should remain cheap.
    let mut trace_overheads = Vec::new();
    for task in [Task::SeizurePrediction, Task::CompressLz4] {
        let o = tracing_overhead(task, channels, &rec, 41);
        println!(
            "tracing/{:<16} bare {:>8.3} ms  off {:>8.3} ms ({:>+5.1}%)  1-in-64 {:>8.3} ms ({:>+5.1}%)",
            o.task.label(),
            o.bare_s * 1e3,
            o.off_s * 1e3,
            (o.off_s / o.bare_s - 1.0) * 100.0,
            o.sampled_s * 1e3,
            (o.sampled_s / o.bare_s - 1.0) * 100.0,
        );
        trace_overheads.push(o);
    }

    // Fault-hook A/B: the chaos harness's injection hook must be free
    // when no schedule is attached (the shipped default) and within the
    // ≤2% envelope even armed-but-idle.
    let mut fault_overheads = Vec::new();
    for task in [Task::SeizurePrediction, Task::CompressLz4] {
        let o = fault_overhead(task, channels, &rec, 41);
        println!(
            "faults/{:<17} off {:>8.3} ms  armed {:>8.3} ms ({:>+5.1}%)",
            o.task.label(),
            o.off_s * 1e3,
            o.armed_s * 1e3,
            (o.armed_s / o.off_s - 1.0) * 100.0,
        );
        fault_overheads.push(o);
    }

    // Cycle-profiler A/B: the always-on profiler must stay within the
    // ≤2% envelope across pipeline shapes — byte pipelines (per-frame
    // ingest attribution dominates), the heaviest compressor (drain
    // attribution), and the quiet-chunk feature pipeline (batched
    // quiet-skip accounting).
    let mut profile_overheads = Vec::new();
    for task in [
        Task::SpikeDetectNeo,
        Task::CompressLz4,
        Task::CompressLzma,
        Task::SeizurePrediction,
        Task::EncryptRaw,
    ] {
        let o = profile_overhead(task, channels, &rec, 101);
        println!(
            "profile/{:<16} off {:>8.3} ms  armed {:>8.3} ms ({:>+5.1}%)",
            o.task.label(),
            o.off_s * 1e3,
            o.armed_s * 1e3,
            (o.armed_s / o.off_s - 1.0) * 100.0,
        );
        profile_overheads.push(o);
    }

    // Batched-dispatch A/B: quiet-chunk SoA dispatch vs the per-frame
    // scalar path on the two short feature pipelines it targets.
    let mut block_abs = Vec::new();
    for task in [Task::MovementIntent, Task::SeizurePrediction] {
        let o = block_dispatch_ab(task, channels, &rec, 41);
        println!(
            "block/{:<18} off {:>8.3} ms  on {:>8.3} ms  ({:>5.2}x)",
            o.task.label(),
            o.off_s * 1e3,
            o.on_s * 1e3,
            o.off_s / o.on_s,
        );
        block_abs.push(o);
    }

    if let Some(path) = json_path {
        let mut json = String::from("{\"bench\":\"runtime\",\"channels\":8,\"pipelines\":[");
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let baseline = BASELINE_FRAMES_PER_S
                .iter()
                .find(|(label, _)| *label == r.task.label())
                .map(|&(_, f)| f);
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"frames\":{},\"median_s\":{:.6},\"frames_per_s\":{:.0},\"spread\":{:.4},\"baseline_frames_per_s\":{},\"speedup\":{}}}",
                r.task.label(),
                r.frames,
                r.median_s,
                r.frames_per_s,
                r.spread,
                baseline.map_or("null".to_string(), |b| format!("{b:.0}")),
                baseline.map_or("null".to_string(), |b| format!(
                    "{:.2}",
                    r.frames_per_s / b
                )),
            ));
        }
        json.push_str("],\"health_overhead\":[");
        for (i, o) in overheads.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"bare_s\":{:.6},\"null_s\":{:.6},\"health_s\":{:.6},\"null_overhead\":{:.4},\"health_overhead\":{:.4}}}",
                o.task.label(),
                o.bare_s,
                o.null_s,
                o.health_s,
                o.null_s / o.bare_s - 1.0,
                o.health_s / o.bare_s - 1.0,
            ));
        }
        json.push_str("],\"continuous_telemetry\":[");
        for (i, o) in continuous_overheads.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"health_s\":{:.6},\"continuous_s\":{:.6},\"continuous_overhead\":{:.4}}}",
                o.task.label(),
                o.health_s,
                o.continuous_s,
                o.continuous_s / o.health_s - 1.0,
            ));
        }
        json.push_str("],\"tracing_overhead\":[");
        for (i, o) in trace_overheads.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"bare_s\":{:.6},\"off_s\":{:.6},\"sampled_s\":{:.6},\"off_overhead\":{:.4},\"sampled_overhead\":{:.4}}}",
                o.task.label(),
                o.bare_s,
                o.off_s,
                o.sampled_s,
                o.off_s / o.bare_s - 1.0,
                o.sampled_s / o.bare_s - 1.0,
            ));
        }
        json.push_str("],\"fault_overhead\":[");
        for (i, o) in fault_overheads.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"off_s\":{:.6},\"armed_s\":{:.6},\"armed_overhead\":{:.4}}}",
                o.task.label(),
                o.off_s,
                o.armed_s,
                o.armed_s / o.off_s - 1.0,
            ));
        }
        json.push_str("],\"profile_overhead\":[");
        for (i, o) in profile_overheads.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"off_s\":{:.6},\"armed_s\":{:.6},\"armed_overhead\":{:.4}}}",
                o.task.label(),
                o.off_s,
                o.armed_s,
                o.armed_s / o.off_s - 1.0,
            ));
        }
        // Deterministic per-pipeline cycle profiles: the committed
        // attribution baseline `--check` diffs fresh profiles against.
        json.push_str("],\"profiles\":[");
        for (i, task) in Task::all().into_iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let profile = deterministic_profile(task, channels, &rec);
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"profile\":{}}}",
                task.label(),
                profile.to_json(),
            ));
        }
        json.push_str("],\"block_dispatch\":[");
        for (i, o) in block_abs.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"task\":\"{}\",\"off_s\":{:.6},\"on_s\":{:.6},\"speedup\":{:.2}}}",
                o.task.label(),
                o.off_s,
                o.on_s,
                o.off_s / o.on_s,
            ));
        }
        json.push_str("]}");
        let out = halo_bench::workspace_path(&path);
        std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {}: {e}", out.display()));
        println!("wrote {}", out.display());
    }
}
