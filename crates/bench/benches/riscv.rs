//! Benchmarks of the RISC-V micro-controller simulator.

use halo_bench::timing::{bench, Throughput};
use halo_riscv::asm::Asm;
use halo_riscv::{Cpu, Memory, MulticoreArray, SystemBus};

/// A compute loop: sum of products over a table (the shape of a software
/// signal-processing kernel).
fn kernel_program(iterations: i32) -> Vec<u32> {
    let mut a = Asm::new();
    a.li(10, 0); // acc
    a.li(11, iterations);
    a.li(12, 3);
    a.label("loop");
    a.beq(11, 0, "done");
    a.mul(13, 11, 12);
    a.add(10, 10, 13);
    a.addi(11, 11, -1);
    a.j("loop");
    a.label("done");
    a.ecall();
    a.assemble(0).unwrap()
}

fn bench_interpreter() {
    let program = kernel_program(10_000);
    bench(
        "riscv",
        "interpreter_mips",
        // ~5 instructions per iteration.
        Throughput::Elements(50_000),
        || {
            let mut bus = SystemBus::new(Memory::new(0x1000));
            bus.load_program(0, &program);
            (Cpu::new(), bus)
        },
        |(mut cpu, mut bus)| cpu.run(&mut bus, 1_000_000).unwrap(),
    );
}

fn bench_multicore() {
    let program = kernel_program(1_000);
    for cores in [1usize, 16, 64] {
        bench(
            "multicore",
            &format!("{cores}_cores"),
            Throughput::None,
            || MulticoreArray::new(cores, 0x1000, &program),
            |mut array| array.run_all(1_000_000).unwrap(),
        );
    }
}

fn main() {
    bench_interpreter();
    bench_multicore();
}
