//! Criterion benchmarks of the RISC-V micro-controller simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use halo_riscv::asm::Asm;
use halo_riscv::{Cpu, Memory, MulticoreArray, SystemBus};

/// A compute loop: sum of products over a table (the shape of a software
/// signal-processing kernel).
fn kernel_program(iterations: i32) -> Vec<u32> {
    let mut a = Asm::new();
    a.li(10, 0); // acc
    a.li(11, iterations);
    a.li(12, 3);
    a.label("loop");
    a.beq(11, 0, "done");
    a.mul(13, 11, 12);
    a.add(10, 10, 13);
    a.addi(11, 11, -1);
    a.j("loop");
    a.label("done");
    a.ecall();
    a.assemble(0).unwrap()
}

fn bench_interpreter(c: &mut Criterion) {
    let program = kernel_program(10_000);
    let mut g = c.benchmark_group("riscv");
    // ~5 instructions per iteration.
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("interpreter_mips", |b| {
        b.iter_batched(
            || {
                let mut bus = SystemBus::new(Memory::new(0x1000));
                bus.load_program(0, &program);
                (Cpu::new(), bus)
            },
            |(mut cpu, mut bus)| cpu.run(&mut bus, 1_000_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_multicore(c: &mut Criterion) {
    let program = kernel_program(1_000);
    let mut g = c.benchmark_group("multicore");
    for cores in [1usize, 16, 64] {
        g.bench_function(format!("{cores}_cores"), |b| {
            b.iter_batched(
                || MulticoreArray::new(cores, 0x1000, &program),
                |mut array| array.run_all(1_000_000).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_interpreter, bench_multicore);
criterion_main!(benches);
