//! Fleet scheduler scaling: sessions/s and frames/s/core from one worker
//! up to every available core.
//!
//! The fleet observatory's claim is that N independent patient sessions
//! scale with cores, not with N — the striped work-stealing scheduler
//! moves whole sessions between workers and nothing is shared but the
//! completion registry. This bench drives a fixed mixed-pipeline fleet
//! at increasing worker counts and reports the scaling curve; the
//! `efficiency` column is throughput at N workers relative to N× the
//! single-worker throughput (1.0 = perfectly linear).
//!
//! Run with `--json <path>` to splice a `"fleet"` section into the
//! `BENCH_runtime.json` written by the `runtime` bench (the file is
//! created standalone if it does not exist yet).

use std::time::{Duration, Instant};

use halo_fleet::{
    scheduler, session::train_shared_svm, FleetConfig, FleetRegistry, FleetSession, SessionSpec,
};

const SESSIONS: usize = 64;
const FRAMES: usize = 900;
const RUNS: usize = 5;

struct Point {
    threads: usize,
    median_s: f64,
    sessions_per_s: f64,
    frames_per_s: f64,
    frames_per_s_per_core: f64,
    efficiency: f64,
}

fn thread_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    let mut n = 2;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

fn median_fleet_run(config: &FleetConfig, svm: &halo_kernels::svm::LinearSvm) -> f64 {
    let mut times: Vec<Duration> = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        // Build outside the timed region: the bench measures scheduling
        // and streaming, not synthetic-recording generation.
        let mut sessions = Vec::with_capacity(SESSIONS);
        for spec in SessionSpec::mixed(SESSIONS, config) {
            sessions.push(FleetSession::build(spec, config, Some(svm)).unwrap());
        }
        let registry = FleetRegistry::new(config.shards);
        let t = Instant::now();
        let stats = scheduler::run_sessions(std::hint::black_box(sessions), config, &registry);
        times.push(t.elapsed());
        assert_eq!(stats.sessions, SESSIONS);
        assert_eq!(registry.len(), SESSIONS);
    }
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

fn main() {
    let json_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            if a == "--json" {
                path = args.next();
            }
        }
        path
    };

    let max_threads = scheduler::resolve_threads(0);
    let total_frames = (SESSIONS * FRAMES) as f64;
    println!(
        "fleet scaling: {SESSIONS} mixed sessions x {FRAMES} frames, 1..={max_threads} worker(s)\n"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>18} {:>11}",
        "threads", "median_s", "sessions/s", "frames/s", "frames/s/core", "efficiency"
    );

    let base_config = FleetConfig::default().frames_per_session(FRAMES);
    let svm = train_shared_svm(&base_config).unwrap();

    let mut points: Vec<Point> = Vec::new();
    let mut single_thread_fps = 0.0f64;
    for threads in thread_counts(max_threads) {
        let config = base_config.clone().threads(threads);
        let median_s = median_fleet_run(&config, &svm);
        let frames_per_s = total_frames / median_s;
        if threads == 1 {
            single_thread_fps = frames_per_s;
        }
        let efficiency = frames_per_s / (single_thread_fps * threads as f64);
        let point = Point {
            threads,
            median_s,
            sessions_per_s: SESSIONS as f64 / median_s,
            frames_per_s,
            frames_per_s_per_core: frames_per_s / threads as f64,
            efficiency,
        };
        println!(
            "{:>8} {:>10.4} {:>12.1} {:>14.0} {:>18.0} {:>11.2}",
            point.threads,
            point.median_s,
            point.sessions_per_s,
            point.frames_per_s,
            point.frames_per_s_per_core,
            point.efficiency,
        );
        points.push(point);
    }

    let max_point = points.last().unwrap();
    println!(
        "\nat {} worker(s): {:.1} sessions/s, {:.2}x linear efficiency",
        max_point.threads, max_point.sessions_per_s, max_point.efficiency
    );
    // A one-point sweep cannot support any scaling claim; say so loudly
    // here and mark the JSON so downstream consumers never mistake a
    // single-core host's baseline for a measured flat curve.
    let degenerate = points.len() == 1;
    if degenerate {
        eprintln!(
            "WARNING: only {max_threads} worker(s) available — the scaling sweep is a single \
             point and says nothing about multi-core scaling; re-run on a multi-core host"
        );
    }

    if let Some(path) = json_path {
        let mut section = String::new();
        section.push_str(&format!(
            "{{\"sessions\":{SESSIONS},\"frames_per_session\":{FRAMES},\
             \"available_parallelism\":{max_threads},"
        ));
        if degenerate {
            section.push_str(
                "\"warning\":\"degenerate sweep: single-core host, scaling curve is one point\",",
            );
        }
        section.push_str("\"scaling\":[");
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                section.push(',');
            }
            section.push_str(&format!(
                "{{\"threads\":{},\"median_s\":{:.6},\"sessions_per_s\":{:.1},\"frames_per_s\":{:.0},\"frames_per_s_per_core\":{:.0},\"efficiency\":{:.3}}}",
                p.threads,
                p.median_s,
                p.sessions_per_s,
                p.frames_per_s,
                p.frames_per_s_per_core,
                p.efficiency,
            ));
        }
        section.push_str("]}");

        // Splice into the runtime bench's JSON: the `fleet` key is kept
        // as the final section so re-runs can truncate and re-append.
        let path = halo_bench::workspace_path(&path);
        let merged = match std::fs::read_to_string(&path) {
            Ok(base) => {
                let head = match base.find(",\"fleet\":") {
                    Some(idx) => base[..idx].to_string(),
                    None => {
                        let trimmed = base.trim_end();
                        trimmed
                            .strip_suffix('}')
                            .expect("existing bench JSON must be an object")
                            .to_string()
                    }
                };
                format!("{head},\"fleet\":{section}}}")
            }
            Err(_) => format!("{{\"bench\":\"fleet\",\"fleet\":{section}}}"),
        };
        std::fs::write(&path, merged).unwrap();
        println!("wrote {}", path.display());
    }
}
