//! Criterion benchmarks for the three compression codecs on neural data —
//! the workloads behind Figures 7–9.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use halo_bench::data::{interleaved_bytes, interleaved_samples};
use halo_kernels::{DwtmaCodec, Lz4Codec, LzmaCodec};
use halo_signal::{RecordingConfig, RegionProfile};

fn bench_compressors(c: &mut Criterion) {
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(8)
        .duration_ms(200)
        .generate(11);
    let bytes = interleaved_bytes(&rec, 128);
    let samples = interleaved_samples(&rec, 128);

    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    let lz4 = Lz4Codec::new(4096).unwrap();
    g.bench_function("lz4", |b| b.iter(|| lz4.compress(std::hint::black_box(&bytes))));
    let lzma = LzmaCodec::new(4096).unwrap();
    g.bench_function("lzma", |b| b.iter(|| lzma.compress(std::hint::black_box(&bytes))));
    let dwtma = DwtmaCodec::new(1).unwrap();
    g.bench_function("dwtma", |b| {
        b.iter(|| dwtma.compress(std::hint::black_box(&samples)))
    });
    g.finish();

    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    let c4 = lz4.compress(&bytes);
    g.bench_function("lz4", |b| b.iter(|| lz4.decompress(std::hint::black_box(&c4)).unwrap()));
    let cm = lzma.compress(&bytes);
    g.bench_function("lzma", |b| {
        b.iter(|| lzma.decompress(std::hint::black_box(&cm)).unwrap())
    });
    let cd = dwtma.compress(&samples);
    g.bench_function("dwtma", |b| {
        b.iter(|| dwtma.decompress(std::hint::black_box(&cd)).unwrap())
    });
    g.finish();
}

fn bench_history_sweep(c: &mut Criterion) {
    // The Figure 7 knob: parse cost vs history length.
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(8)
        .duration_ms(100)
        .generate(12);
    let bytes = interleaved_bytes(&rec, 128);
    let mut g = c.benchmark_group("lzma_history");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    for history in [1024usize, 4096, 8192] {
        let codec = LzmaCodec::new(history).unwrap();
        g.bench_function(format!("h{history}"), |b| {
            b.iter(|| codec.compress(std::hint::black_box(&bytes)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compressors, bench_history_sweep);
criterion_main!(benches);
