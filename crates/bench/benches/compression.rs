//! Benchmarks for the three compression codecs on neural data — the
//! workloads behind Figures 7–9.

use halo_bench::data::{interleaved_bytes, interleaved_samples};
use halo_bench::timing::{bench, Throughput};
use halo_kernels::{DwtmaCodec, Lz4Codec, LzmaCodec};
use halo_signal::{RecordingConfig, RegionProfile};

fn bench_compressors() {
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(8)
        .duration_ms(200)
        .generate(11);
    let bytes = interleaved_bytes(&rec, 128);
    let samples = interleaved_samples(&rec, 128);
    let tp = Throughput::Bytes(bytes.len() as u64);

    let lz4 = Lz4Codec::new(4096).unwrap();
    bench(
        "compress",
        "lz4",
        tp,
        || (),
        |_| lz4.compress(std::hint::black_box(&bytes)),
    );
    let lzma = LzmaCodec::new(4096).unwrap();
    bench(
        "compress",
        "lzma",
        tp,
        || (),
        |_| lzma.compress(std::hint::black_box(&bytes)),
    );
    let dwtma = DwtmaCodec::new(1).unwrap();
    bench(
        "compress",
        "dwtma",
        tp,
        || (),
        |_| dwtma.compress(std::hint::black_box(&samples)),
    );

    let c4 = lz4.compress(&bytes);
    bench(
        "decompress",
        "lz4",
        tp,
        || (),
        |_| lz4.decompress(std::hint::black_box(&c4)).unwrap(),
    );
    let cm = lzma.compress(&bytes);
    bench(
        "decompress",
        "lzma",
        tp,
        || (),
        |_| lzma.decompress(std::hint::black_box(&cm)).unwrap(),
    );
    let cd = dwtma.compress(&samples);
    bench(
        "decompress",
        "dwtma",
        tp,
        || (),
        |_| dwtma.decompress(std::hint::black_box(&cd)).unwrap(),
    );
}

fn bench_history_sweep() {
    // The Figure 7 knob: parse cost vs history length.
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(8)
        .duration_ms(100)
        .generate(12);
    let bytes = interleaved_bytes(&rec, 128);
    for history in [1024usize, 4096, 8192] {
        let codec = LzmaCodec::new(history).unwrap();
        bench(
            "lzma_history",
            &format!("h{history}"),
            Throughput::Bytes(bytes.len() as u64),
            || (),
            |_| codec.compress(std::hint::black_box(&bytes)),
        );
    }
}

fn main() {
    bench_compressors();
    bench_history_sweep();
}
