//! Figure 8: compression ratio per milliwatt vs block size, and the
//! counter-saturation ablation that motivates it (§IV-B).
//!
//! The paper sweeps block sizes from 2^16 to 2^30 bytes over hours of
//! recordings; this reproduction sweeps 2^12–2^21 over a multi-megabyte
//! synthetic session (same shape at a smaller scale: ratios improve with
//! block size while the saturating counters keep MA's memory — and hence
//! power — flat; without saturation, counter width would have to grow
//! with the block).

use crate::data::{interleaved_bytes, interleaved_samples, ratio};
use crate::fig7::pipeline_power_mw;
use halo_core::Task;
use halo_kernels::{DwtmaCodec, Lz4Codec, LzmaCodec};
use halo_pe::PeKind;
use halo_power::{pe_anchor, PePowerModel};
use halo_signal::{RecordingConfig, RegionProfile};

/// Extra MA power when counters cannot saturate and must widen to
/// `log2(block_increments)` bits instead of 16.
pub fn unsaturated_ma_penalty_mw(block_bytes: usize) -> f64 {
    let needed_bits = (block_bytes as f64).log2().ceil().max(8.0);
    let scale = needed_bits / 16.0;
    let a = pe_anchor(PeKind::Ma);
    let widened = PePowerModel::new(PeKind::Ma)
        .mem_bytes((a.mem_bytes as f64 * scale) as usize)
        .power()
        .total_mw();
    (widened - a.total_mw()).max(0.0)
}

/// Prints Figure 8.
pub fn run() {
    // A longer session so large blocks actually contain data: 16 channels
    // x 4 s ≈ 3.8 MB.
    let rec = RecordingConfig::new(RegionProfile::arm())
        .channels(16)
        .duration_ms(4_000)
        .generate(801);
    let bytes = interleaved_bytes(&rec, 128);
    let samples = interleaved_samples(&rec, 128);

    println!("Figure 8: compression ratio per mW vs log2(block size)");
    println!("(paper sweeps 16..30 at full scale; this run sweeps 12..21)\n");
    println!(
        "{:>5} {:>9} {:>9} {:>9} {:>11} {:>11} {:>11} {:>14}",
        "log2",
        "LZ4 r",
        "LZMA r",
        "DWTMA r",
        "LZ4 r/mW",
        "LZMA r/mW",
        "DWTMA r/mW",
        "no-sat penalty"
    );
    for log2_block in 12u32..=21 {
        let block = 1usize << log2_block;
        let lz4 = Lz4Codec::new(4096).expect("history").with_block_size(block);
        let c4 = lz4.compress(&bytes);
        assert_eq!(lz4.decompress(&c4).expect("lossless"), bytes);
        let r4 = ratio(bytes.len(), c4.len());

        let lzma = LzmaCodec::new(4096)
            .expect("history")
            .with_block_size(block);
        let cm = lzma.compress(&bytes);
        assert_eq!(lzma.decompress(&cm).expect("lossless"), bytes);
        let rm = ratio(bytes.len(), cm.len());

        let dwtma = DwtmaCodec::new(1)
            .expect("levels")
            .with_block_samples(block / 2);
        let cd = dwtma.compress(&samples);
        assert_eq!(dwtma.decompress(&cd).expect("lossless"), samples);
        let rd = ratio(bytes.len(), cd.len());

        let p4 = pipeline_power_mw(Task::CompressLz4, r4, 4096, 128);
        let pm = pipeline_power_mw(Task::CompressLzma, rm, 4096, 128);
        let pd = pipeline_power_mw(Task::CompressDwtma, rd, 4096, 128);
        println!(
            "{:>5} {:>9.2} {:>9.2} {:>9.2} {:>11.3} {:>11.3} {:>11.3} {:>12.2}mW",
            log2_block,
            r4,
            rm,
            rd,
            r4 / p4,
            rm / pm,
            rd / pd,
            unsaturated_ma_penalty_mw(block)
        );
    }
    println!("\nshape checks: MA-based ratios improve with block size and flatten\n(saturated counters keep estimates stable); LZ4 is block-insensitive;\nwithout saturation the MA PE's counter memory would grow with the block.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_decouples_power_from_block_size() {
        // With saturation, MA power is block-independent by construction;
        // without it, the penalty grows monotonically past 2^16.
        let p: Vec<f64> = (16u32..=30)
            .map(|b| unsaturated_ma_penalty_mw(1 << b))
            .collect();
        for w in p.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // At 2^30 the widened counters cost ~0.9 mW extra — enough to push
        // the LZMA pipeline over budget.
        assert!(p.last().expect("nonempty") > &0.8);
    }
}
