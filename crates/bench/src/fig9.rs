//! Figure 9: compression ratio (with inter-trial variance) and power for
//! the arm and leg motor-cortex regions.

use crate::data::{mean_std, measure_ratios, region_dataset};
use crate::fig7::pipeline_power_mw;
use halo_core::Task;
use halo_power::PROCESSING_BUDGET_MW;
use halo_signal::RegionProfile;

/// The per-region, per-codec measurements.
pub struct RegionResult {
    /// Region name.
    pub region: &'static str,
    /// (mean, std) ratio per codec: LZ4, LZMA, DWTMA.
    pub ratios: [(f64, f64); 3],
    /// Pipeline power at the mean ratio, mW.
    pub power_mw: [f64; 3],
}

/// Runs the Figure 9 measurement.
pub fn compute() -> Vec<RegionResult> {
    let mut results = Vec::new();
    for (profile, seed) in [(RegionProfile::arm(), 901u64), (RegionProfile::leg(), 902)] {
        let region = profile.name;
        let ds = region_dataset(profile, 2, seed);
        let mut lz4 = Vec::new();
        let mut lzma = Vec::new();
        let mut dwtma = Vec::new();
        for trial in ds.trials() {
            let r = measure_ratios(&trial.recording, 4096, 1 << 16, 128);
            lz4.push(r.lz4);
            lzma.push(r.lzma);
            dwtma.push(r.dwtma);
        }
        let ratios = [mean_std(&lz4), mean_std(&lzma), mean_std(&dwtma)];
        let power_mw = [
            pipeline_power_mw(Task::CompressLz4, ratios[0].0, 4096, 128),
            pipeline_power_mw(Task::CompressLzma, ratios[1].0, 4096, 128),
            pipeline_power_mw(Task::CompressDwtma, ratios[2].0, 4096, 128),
        ];
        results.push(RegionResult {
            region,
            ratios,
            power_mw,
        });
    }
    results
}

/// Prints Figure 9.
pub fn run() {
    println!("Figure 9: compression by brain region (6 trials per region:");
    println!("treadmill/reach/obstacle x 2)\n");
    println!(
        "{:<8} {:<8} {:>14} {:>12} {:>8}",
        "region", "codec", "ratio (±std)", "power mW", "budget"
    );
    for r in compute() {
        for (i, codec) in ["LZ4", "LZMA", "DWTMA"].iter().enumerate() {
            let (mean, std) = r.ratios[i];
            println!(
                "{:<8} {:<8} {:>9.2} ±{:<4.2} {:>12.2} {:>8}",
                r.region,
                codec,
                mean,
                std,
                r.power_mw[i],
                if r.power_mw[i] <= PROCESSING_BUDGET_MW {
                    "ok"
                } else {
                    "OVER"
                }
            );
        }
    }
    println!("\nshape checks: LZMA has the best ratio in both regions; LZ4 burns the");
    println!("least PE logic but the most radio; the (sparser) leg region compresses");
    println!("better than the arm region; all configurations fit the budget.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_holds() {
        let results = compute();
        for r in &results {
            // LZMA ratio beats LZ4 and DWTMA in both regions.
            assert!(r.ratios[1].0 > r.ratios[0].0, "{}: LZMA vs LZ4", r.region);
            assert!(r.ratios[1].0 > r.ratios[2].0, "{}: LZMA vs DWTMA", r.region);
            for p in r.power_mw {
                assert!(p <= PROCESSING_BUDGET_MW, "{}: {p:.2} mW", r.region);
            }
        }
        // The sparser leg region compresses better.
        assert!(results[1].ratios[1].0 > results[0].ratios[1].0);
    }
}
