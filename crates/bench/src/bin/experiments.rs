//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p halo-bench --bin experiments -- all
//! cargo run --release -p halo-bench --bin experiments -- fig4 fig9
//! cargo run --release -p halo-bench --bin experiments -- --telemetry trace.json
//! ```
//!
//! `--telemetry <out.json>` runs instrumented demo pipelines instead of
//! (or alongside) the paper artifacts: it prints per-PE counter summaries,
//! writes a Perfetto-loadable Chrome trace to `<out.json>`, and emits a
//! machine-readable counter baseline to `BENCH_telemetry.json`.

use halo_bench::{ablate, fig4, fig5, fig6, fig7, fig8, fig9, table1, table3, table4, trace};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // `--telemetry <path>` is an experiment of its own.
    let mut telemetry_out = None;
    if let Some(i) = args.iter().position(|a| a == "--telemetry") {
        if i + 1 >= args.len() {
            eprintln!("--telemetry requires an output path, e.g. --telemetry trace.json");
            std::process::exit(2);
        }
        telemetry_out = Some(args[i + 1].clone());
        args.drain(i..=i + 1);
    }
    if let Some(path) = &telemetry_out {
        trace::run(path);
        if args.is_empty() {
            return;
        }
        println!("\n{}\n", "=".repeat(78));
    }

    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablate",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for (i, name) in selected.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        match *name {
            "table1" => table1::run(),
            "table3" => table3::run(),
            "table4" => table4::run(),
            "fig4" => fig4::run(),
            "fig5" => fig5::run(),
            "fig6" => fig6::run(),
            "fig7" => fig7::run(),
            "fig8" => fig8::run(),
            "fig9" => fig9::run(),
            "ablate" => ablate::run(),
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!(
                    "available: table1 table3 table4 fig4 fig5 fig6 fig7 fig8 fig9 ablate all, \
                     plus --telemetry <out.json>"
                );
                std::process::exit(2);
            }
        }
    }
}
