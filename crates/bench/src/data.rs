//! Shared synthetic datasets and compression helpers for the experiments.

use halo_kernels::{DwtmaCodec, Lz4Codec, LzmaCodec};
use halo_signal::{Dataset, Recording, RegionProfile};

/// Channels used by the measurement runs. Compression ratios are
/// rate-independent, so experiments measure on 16 channels and report
/// power at the 96-channel design rate.
pub const MEASURE_CHANNELS: usize = 16;

/// Trial length in milliseconds.
pub const TRIAL_MS: usize = 500;

/// Generates the evaluation dataset for a region (three behavioural trial
/// kinds × `trials_per_kind`).
pub fn region_dataset(profile: RegionProfile, trials_per_kind: usize, seed: u64) -> Dataset {
    Dataset::generate(profile, MEASURE_CHANNELS, TRIAL_MS, trials_per_kind, seed)
}

/// Serializes a recording in the interleaver's output order (depth-run,
/// channel-major) — the byte stream the compression PEs actually see.
pub fn interleaved_bytes(rec: &Recording, depth: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let n = rec.samples_per_channel();
    let mut t = 0;
    while t < n {
        let end = (t + depth).min(n);
        for c in 0..rec.channels() {
            for tt in t..end {
                out.extend_from_slice(&rec.frame(tt)[c].to_le_bytes());
            }
        }
        t = end;
    }
    out
}

/// Same ordering, as samples (for the DWTMA codec).
pub fn interleaved_samples(rec: &Recording, depth: usize) -> Vec<i16> {
    interleaved_bytes(rec, depth)
        .chunks_exact(2)
        .map(|b| i16::from_le_bytes([b[0], b[1]]))
        .collect()
}

/// Compression ratio of a codec run (raw/compressed).
pub fn ratio(raw_len: usize, compressed_len: usize) -> f64 {
    raw_len as f64 / compressed_len.max(1) as f64
}

/// Measures LZ4/LZMA/DWTMA ratios on one recording at the given knobs,
/// verifying losslessness on every run.
pub struct CodecRatios {
    /// LZ4 (LZ → LIC) ratio.
    pub lz4: f64,
    /// LZMA (LZ → MA → RC) ratio.
    pub lzma: f64,
    /// DWTMA (DWT → MA → RC) ratio.
    pub dwtma: f64,
}

/// Runs all three codecs over `rec`.
///
/// # Panics
///
/// Panics if any codec fails its round trip — losslessness is an invariant
/// of every measurement in this harness.
pub fn measure_ratios(
    rec: &Recording,
    history: usize,
    block_bytes: usize,
    interleave_depth: usize,
) -> CodecRatios {
    let bytes = interleaved_bytes(rec, interleave_depth);
    let samples = interleaved_samples(rec, interleave_depth);

    let lz4 = Lz4Codec::new(history)
        .expect("valid history")
        .with_block_size(block_bytes);
    let c = lz4.compress(&bytes);
    assert_eq!(lz4.decompress(&c).expect("lossless"), bytes);
    let lz4_ratio = ratio(bytes.len(), c.len());

    let lzma = LzmaCodec::new(history)
        .expect("valid history")
        .with_block_size(block_bytes);
    let c = lzma.compress(&bytes);
    assert_eq!(lzma.decompress(&c).expect("lossless"), bytes);
    let lzma_ratio = ratio(bytes.len(), c.len());

    let dwtma = DwtmaCodec::new(1)
        .expect("valid levels")
        .with_block_samples(block_bytes / 2);
    let c = dwtma.compress(&samples);
    assert_eq!(dwtma.decompress(&c).expect("lossless"), samples);
    let dwtma_ratio = ratio(bytes.len(), c.len());

    CodecRatios {
        lz4: lz4_ratio,
        lzma: lzma_ratio,
        dwtma: dwtma_ratio,
    }
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}
