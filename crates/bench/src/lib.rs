//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VI) against the simulator and the synthetic-data
//! substrate.
//!
//! Each module owns one artifact and prints the same rows/series the paper
//! reports:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table I — device capability comparison |
//! | [`table3`] | Table III — PE inventory and parameters |
//! | [`table4`] | Table IV — per-PE power/frequency/area and task sums |
//! | [`fig4`] | Figure 4 — HALO vs RISC-V software vs monolithic ASICs |
//! | [`fig5`] | Figure 5 — per-task power stacks and leak/dyn splits |
//! | [`fig6`] | Figure 6 — XCOR and LZMA co-design ladders |
//! | [`fig7`] | Figure 7 — history-length and interleave-depth sweeps |
//! | [`fig8`] | Figure 8 — compression block-size sweep |
//! | [`fig9`] | Figure 9 — arm vs leg regions, ratio and power |
//! | [`ablate`] | design-choice ablations (contexts, parser, counters, DWT depth, §VII BWT) |
//! | [`trace`] | `--telemetry` — instrumented runs, Chrome-trace export, `BENCH_telemetry.json` |
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p halo-bench --bin experiments -- all
//! ```
//!
//! Absolute numbers at the Table IV anchor points are the paper's own
//! (that is what "anchored model" means); measured quantities —
//! compression ratios, detector bandwidth fractions, radio rates — come
//! from running the actual pipelines over synthetic recordings, so shapes
//! (who wins, where sweeps peak, what busts the budget) are genuine
//! outputs of this reproduction.

pub mod ablate;
pub mod data;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod timing;
pub mod trace;

/// Resolves a bench artifact path against the workspace root.
///
/// `cargo bench` runs benchmark binaries with the *package* directory as
/// CWD, so a relative `--json BENCH_runtime.json` would land in
/// `crates/bench/` instead of the repository root where CI and the docs
/// expect it. Absolute paths pass through untouched.
pub fn workspace_path(path: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(path);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(p)
}

/// The nominal processing rate of the paper's design point, bytes/second.
pub const NOMINAL_RATE_BPS: f64 = 5_760_000.0;

/// Raw radio power at the nominal rate (200 pJ/bit × 46.08 Mbps).
pub const RAW_RADIO_MW: f64 = 9.216;

/// Steady-state controller power (leakage + 30% activity), mW.
pub fn controller_steady_mw() -> f64 {
    let a = halo_power::controller_anchor();
    (a.logic_leak_mw + a.mem_leak_mw)
        + (a.logic_dyn_mw + a.mem_dyn_mw) * halo_core::power::CONTROLLER_STEADY_ACTIVITY
}
