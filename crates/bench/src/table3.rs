//! Table III: PE inventory, parameters, and memory bounds — introspected
//! from the implemented kernels and PE wrappers, not hard-coded prose.

use halo_kernels::{LzMatcher, XcorConfig};
use halo_pe::pes::{MaMode, MaPe};
use halo_pe::{PeKind, ProcessingElement};

/// Prints Table III.
pub fn run() {
    println!("Table III: processing elements and key parameters\n");
    for kind in PeKind::all() {
        let (functionality, parameters) = describe(kind);
        println!("{:<12} {functionality}", kind.name());
        println!("{:<12}   parameters: {parameters}", "");
    }

    println!("\nmemory bounds verified against the implementation:");
    let lz = LzMatcher::new(4096).expect("table parameter");
    println!(
        "  LZ at H=4096: {} bytes (Table III cap: 24 KB)",
        lz.memory_bytes()
    );
    assert!(lz.memory_bytes() <= 24 * 1024);
    let ma = MaPe::new(MaMode::Lzma, 16);
    println!(
        "  MA (LZMA mode): {} bytes (Table III cap: 16.25 KB ~ 16640)",
        ma.memory_bytes()
    );
    let xcor = XcorConfig::new(96, 4096, 64, vec![(0, 1)]).expect("table parameter");
    println!(
        "  XCOR max LAG: {} (Table III: 0-64); window {} frames",
        xcor.lag(),
        xcor.window()
    );
    println!(
        "  SVM max weights: {} (Table III: 5000)",
        halo_kernels::svm::MAX_WEIGHTS
    );
    println!(
        "  FFT max points: {} (Table III: 1024); DWT levels: 1-{}",
        halo_kernels::fft::MAX_POINTS,
        halo_kernels::dwt::MAX_LEVELS
    );
}

fn describe(kind: PeKind) -> (&'static str, &'static str) {
    match kind {
        PeKind::Lz => (
            "Lempel-Ziv match search: 4-byte hash into head array, hash-chain walk for length-offset pairs",
            "history H in {256..8192} B (power of two); head array 8 KB; chain 2xH; max 24 KB",
        ),
        PeKind::Lic => (
            "Linear integer coding of LZ output: token headers, literal runs, 16-bit offsets",
            "none (256-byte literal array)",
        ),
        PeKind::Ma => (
            "Markov model: per-input-type counters in a Fenwick tree; emits (cum, freq, total) to RC",
            "counter width 2-16 bits (saturating); contexts per pipeline; max 16.25 KB",
        ),
        PeKind::Rc => (
            "Range coder driven by MA's probability triples; carry-less renormalization",
            "none (coder registers)",
        ),
        PeKind::Dwt => (
            "Integer 5/3 lifting wavelet, used by spike detection (recursive) and compression (1 level)",
            "levels in 1..=5",
        ),
        PeKind::Neo => (
            "Nonlinear energy operator psi[n] = x[n]^2 - x[n-1]x[n+1], per-channel state",
            "none",
        ),
        PeKind::Fft => (
            "Radix-2 fixed-point FFT with band-power outputs; per-channel windows, optional decimation",
            "points up to 1024; band list; channel subset; decimation",
        ),
        PeKind::Xcor => (
            "Pairwise cross-correlation over a channel map with configurable delay",
            "LAG in 0..=64; user-defined channel map; window length",
        ),
        PeKind::Bbf => (
            "Butterworth bandpass (fixed-point biquads with error feedback); stream or band-energy output",
            "band edges up to ADC Nyquist",
        ),
        PeKind::Svm => (
            "Linear classifier: multiply-accumulate of features and weights from FFT/XCOR/BBF ports",
            "up to 5000 32-bit user-defined weights",
        ),
        PeKind::Thr => (
            "Comparator: emits a set bit when input crosses the user threshold (below or above)",
            "32-bit threshold; comparison sense",
        ),
        PeKind::Gate => (
            "Passes the data stream when the THR control line is set; per-channel hold window",
            "hold length; data tokens per control bit",
        ),
        PeKind::Aes => (
            "AES-128 ECB encryption of the exfiltration stream",
            "128-bit key",
        ),
        PeKind::Interleaver => (
            "Buffers and rearranges channel-interleaved samples into per-channel runs for time-multiplexed PEs",
            "depth in samples (Figure 7 sweeps 1-1024)",
        ),
    }
}
