//! Design-choice ablations.
//!
//! DESIGN.md calls out several algorithmic decisions beyond the paper's
//! explicit knobs; this experiment quantifies each on the same synthetic
//! data the figures use:
//!
//! * LZMA literal-context modeling (the `lc/lp`-style models) on/off,
//! * the LZMA parser's 8-byte minimum-match floor vs greedy 4-byte,
//! * MA counter width (the Figure 8 mechanism, measured on ratios),
//! * DWT depth for compression (the paper fixes 1 level; deeper is a
//!   natural question),
//! * the §VII Bzip2-style BWT+MA/RC codec vs the paper's three.

use crate::data::{interleaved_bytes, interleaved_samples, ratio, region_dataset};
use halo_kernels::bwt::BwtmaCodec;
use halo_kernels::{DwtmaCodec, LzmaCodec};
use halo_signal::RegionProfile;

/// Prints all ablations.
pub fn run() {
    let ds = region_dataset(RegionProfile::arm(), 1, 1101);
    let rec = &ds.trials()[0].recording;
    let bytes = interleaved_bytes(rec, 128);
    let samples = interleaved_samples(rec, 128);
    let r = |c: usize| ratio(bytes.len(), c);

    println!(
        "Ablations on {} KB of arm-region data\n",
        bytes.len() / 1024
    );

    // --- LZMA literal contexts ---
    let full = LzmaCodec::new(4096).expect("history");
    let plain = LzmaCodec::new(4096).expect("history").with_plain_literals();
    let rf = r(full.compress(&bytes).len());
    let rp = r(plain.compress(&bytes).len());
    println!(
        "LZMA literal contexts:   with {rf:.2}  without {rp:.2}  (gain {:.0}%)",
        100.0 * (rf / rp - 1.0)
    );

    // --- LZMA parser floor ---
    let greedy = LzmaCodec::new(4096).expect("history").with_greedy_parser();
    let rg = r(greedy.compress(&bytes).len());
    println!(
        "LZMA min-match floor:    8-byte {rf:.2}  greedy-4 {rg:.2}  (gain {:.0}%)",
        100.0 * (rf / rg - 1.0)
    );

    // --- MA counter width ---
    print!("MA counter width:       ");
    for bits in [6u32, 8, 12, 16] {
        let codec = LzmaCodec::new(4096)
            .expect("history")
            .with_counter_bits(bits);
        let c = codec.compress(&bytes);
        assert_eq!(codec.decompress(&c).expect("lossless"), bytes);
        print!(" {bits}b={:.2}", r(c.len()));
    }
    println!("  (saturation costs little ratio at 16b)");

    // --- DWT depth for compression ---
    print!("DWT compression depth:  ");
    for levels in 1..=5 {
        let codec = DwtmaCodec::new(levels).expect("levels");
        let c = codec.compress(&samples);
        assert_eq!(codec.decompress(&c).expect("lossless"), samples);
        print!(" L{levels}={:.2}", r(c.len()));
    }
    println!("  (paper fixes 1 level; deeper helps on oversampled data)");

    // --- BWT extension vs the paper's codecs ---
    let bwt = BwtmaCodec::new();
    let cb = bwt.compress(&bytes);
    assert_eq!(bwt.decompress(&cb).expect("lossless"), bytes);
    let dwtma = DwtmaCodec::new(1).expect("levels");
    println!(
        "§VII BWT+MA/RC codec:    bwtma {:.2}  vs lzma {rf:.2}  vs dwtma {:.2}",
        r(cb.len()),
        r(dwtma.compress(&samples).len())
    );
    println!("\n(all runs verified lossless)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_contexts_earn_their_memory() {
        let ds = region_dataset(RegionProfile::leg(), 1, 1102);
        let bytes = interleaved_bytes(&ds.trials()[0].recording, 128);
        let full = LzmaCodec::new(4096).unwrap().compress(&bytes).len();
        let plain = LzmaCodec::new(4096)
            .unwrap()
            .with_plain_literals()
            .compress(&bytes)
            .len();
        assert!(
            (full as f64) < 0.95 * plain as f64,
            "contexts should buy >5%: {full} vs {plain}"
        );
    }

    #[test]
    fn min_match_floor_beats_greedy_on_neural_data() {
        let ds = region_dataset(RegionProfile::leg(), 1, 1103);
        let bytes = interleaved_bytes(&ds.trials()[0].recording, 128);
        let floored = LzmaCodec::new(4096).unwrap().compress(&bytes).len();
        let greedy = LzmaCodec::new(4096)
            .unwrap()
            .with_greedy_parser()
            .compress(&bytes)
            .len();
        assert!(floored < greedy, "{floored} !< {greedy}");
    }

    #[test]
    fn ablation_codecs_stay_lossless() {
        let ds = region_dataset(RegionProfile::arm(), 1, 1104);
        let bytes = interleaved_bytes(&ds.trials()[0].recording, 128);
        for codec in [
            LzmaCodec::new(1024).unwrap().with_plain_literals(),
            LzmaCodec::new(1024).unwrap().with_greedy_parser(),
            LzmaCodec::new(1024).unwrap().with_counter_bits(6),
        ] {
            let c = codec.compress(&bytes);
            assert_eq!(codec.decompress(&c).unwrap(), bytes);
        }
    }
}
