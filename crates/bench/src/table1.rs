//! Table I: device capability comparison.
//!
//! The literature rows are the paper's own survey data (they describe
//! other groups' devices); the HALO row is *computed* from this
//! implementation: task support from the pipeline registry, channel/rate
//! geometry from the default configuration, and the safety check from the
//! budget model.

use halo_core::{HaloConfig, Task};

/// One comparison row.
struct Device {
    name: &'static str,
    tasks: [bool; 5], // spike, compression, seizure, movement, encryption
    programmable: &'static str,
    read_ch: u32,
    stim_ch: u32,
    sample_hz: u32,
    bits: u32,
    safe: bool,
}

const LITERATURE: [Device; 7] = [
    Device {
        name: "Medtronic",
        tasks: [false, false, false, true, false],
        programmable: "yes",
        read_ch: 4,
        stim_ch: 4,
        sample_hz: 250,
        bits: 10,
        safe: true,
    },
    Device {
        name: "Neuropace",
        tasks: [false, false, true, false, false],
        programmable: "limited",
        read_ch: 8,
        stim_ch: 8,
        sample_hz: 250,
        bits: 10,
        safe: true,
    },
    Device {
        name: "Aziz",
        tasks: [false, true, false, false, false],
        programmable: "no",
        read_ch: 256,
        stim_ch: 0,
        sample_hz: 5_000,
        bits: 8,
        safe: true,
    },
    Device {
        name: "Chen",
        tasks: [false, false, true, false, false],
        programmable: "limited",
        read_ch: 4,
        stim_ch: 0,
        sample_hz: 200,
        bits: 10,
        safe: false,
    },
    Device {
        name: "Kassiri",
        tasks: [false, false, true, false, false],
        programmable: "yes",
        read_ch: 24,
        stim_ch: 24,
        sample_hz: 7_200,
        bits: 0,
        safe: true,
    },
    Device {
        name: "Neuralink",
        tasks: [false, false, false, false, false],
        programmable: "no",
        read_ch: 3072,
        stim_ch: 0,
        sample_hz: 18_600,
        bits: 10,
        safe: false,
    },
    Device {
        name: "NURIP",
        tasks: [false, false, true, false, false],
        programmable: "limited",
        read_ch: 32,
        stim_ch: 32,
        sample_hz: 256,
        bits: 16,
        safe: true,
    },
];

/// Prints Table I.
pub fn run() {
    println!("Table I: device comparison (literature rows from the paper's survey)");
    println!(
        "{:<10} {:>6} {:>6} {:>8} {:>6} {:>8} {:>5} {:>8} {:>8} {:>6} {:>5} {:>6}",
        "device",
        "spike",
        "compr",
        "seizure",
        "move",
        "encrypt",
        "prog",
        "read-ch",
        "stim-ch",
        "kHz",
        "bits",
        "safe"
    );
    let mark = |b: bool| if b { "yes" } else { "-" };
    for d in LITERATURE {
        println!(
            "{:<10} {:>6} {:>6} {:>8} {:>6} {:>8} {:>5} {:>8} {:>8} {:>6.1} {:>5} {:>6}",
            d.name,
            mark(d.tasks[0]),
            mark(d.tasks[1]),
            mark(d.tasks[2]),
            mark(d.tasks[3]),
            mark(d.tasks[4]),
            d.programmable,
            d.read_ch,
            d.stim_ch,
            d.sample_hz as f64 / 1e3,
            d.bits,
            mark(d.safe),
        );
    }

    // The HALO row, computed from this repository.
    let config = HaloConfig::new();
    let supports = |t: Task| Task::all().contains(&t);
    println!(
        "{:<10} {:>6} {:>6} {:>8} {:>6} {:>8} {:>5} {:>8} {:>8} {:>6.1} {:>5} {:>6}",
        "HALO",
        mark(supports(Task::SpikeDetectNeo)),
        mark(supports(Task::CompressLzma)),
        mark(supports(Task::SeizurePrediction)),
        mark(supports(Task::MovementIntent)),
        mark(supports(Task::EncryptRaw)),
        "yes",
        config.channels,
        config.stim_channels,
        config.sample_rate_hz as f64 / 1e3,
        16,
        mark(true), // every pipeline fits the 15 mW budget (tests enforce it)
    );
    println!(
        "\nHALO supports all five task families at {} channels x {} kHz x 16 bit,",
        config.channels,
        config.sample_rate_hz / 1000
    );
    println!("fully programmable, within the 15 mW implant budget.");
}
