//! Figure 4: task power for HALO vs the best 1–64-core RISC-V software
//! design vs monolithic per-task ASICs, with the HALO-no-NoC idealization.

use crate::data::{measure_ratios, region_dataset, MEASURE_CHANNELS};
use crate::table4::model_task_total;
use crate::{controller_steady_mw, NOMINAL_RATE_BPS, RAW_RADIO_MW};
use halo_core::tasks::spike;
use halo_core::{HaloConfig, HaloSystem, Task};
use halo_pe::PeKind;
use halo_power::{circuit_switched_power_mw, MonolithicAsic, SoftwareBaseline};
use halo_signal::{RecordingConfig, RegionProfile};

/// Software cycles-per-byte on the Ibex core for each task, used by the
/// Figure 4 baseline. The NEO figure is grounded by executing a hand-
/// written RV32 NEO kernel on the simulator (see `tests/controller.rs`);
/// the rest are analytic estimates documented in EXPERIMENTS.md.
pub fn software_cycles_per_byte(task: Task) -> f64 {
    match task {
        Task::SpikeDetectNeo => 25.0,
        Task::SpikeDetectDwt => 40.0,
        Task::CompressLz4 => 120.0,
        Task::CompressLzma => 300.0,
        Task::CompressDwtma => 150.0,
        Task::MovementIntent => 30.0,
        Task::SeizurePrediction => 250.0,
        Task::EncryptRaw => 110.0,
    }
}

/// Radio power per task at the design rate, from quantities measured on
/// the synthetic data (compression ratios, spike-gate bandwidth).
pub fn measured_radio_mw() -> Vec<(Task, f64)> {
    // Compression ratios from the arm dataset (the less compressible
    // region — conservative).
    let ds = region_dataset(RegionProfile::arm(), 1, 1001);
    let rec = &ds.trials()[0].recording;
    let config = HaloConfig::new();
    let r = measure_ratios(
        rec,
        config.lz_history,
        config.block_bytes,
        config.interleave_depth,
    );

    // Spike-gate pass fraction from an end-to-end run.
    let spike_fraction = {
        let channels = MEASURE_CHANNELS;
        let cfg = HaloConfig::new().channels(channels);
        let baseline = RecordingConfig::new(RegionProfile::arm().without_spikes())
            .channels(channels)
            .duration_ms(100)
            .generate(1002);
        let thr = spike::calibrate_threshold(Task::SpikeDetectNeo, &cfg, &baseline, 1.5)
            .expect("calibration");
        let cfg = cfg.spike_threshold(thr);
        let mut sys = HaloSystem::new(Task::SpikeDetectNeo, cfg).expect("system");
        let rec = RecordingConfig::new(RegionProfile::arm())
            .channels(channels)
            .duration_ms(200)
            .generate(1003);
        let m = sys.process(&rec).expect("run");
        m.bandwidth_fraction()
    };

    Task::all()
        .into_iter()
        .map(|task| {
            let mw = match task {
                Task::EncryptRaw => RAW_RADIO_MW,
                Task::CompressLz4 => RAW_RADIO_MW / r.lz4,
                Task::CompressLzma => RAW_RADIO_MW / r.lzma,
                Task::CompressDwtma => RAW_RADIO_MW / r.dwtma,
                Task::SpikeDetectNeo | Task::SpikeDetectDwt => RAW_RADIO_MW * spike_fraction,
                Task::MovementIntent | Task::SeizurePrediction => 0.05, // alerts only
            };
            (task, mw)
        })
        .collect()
}

/// One Figure 4 bar group.
pub struct Fig4Row {
    /// The task.
    pub task: Task,
    /// Best software configuration (cores, mW including radio), if feasible.
    pub software: Option<(usize, f64)>,
    /// HALO total (PEs + control + radio + stim + NoC).
    pub halo: f64,
    /// Monolithic-ASIC total.
    pub asic: f64,
    /// HALO without the configurable NoC.
    pub halo_no_noc: f64,
}

/// Computes the Figure 4 rows.
pub fn compute() -> Vec<Fig4Row> {
    let radios = measured_radio_mw();
    let noc = circuit_switched_power_mw(8, NOMINAL_RATE_BPS);
    radios
        .into_iter()
        .map(|(task, radio)| {
            let stim = if task.uses_stimulation() { 0.48 } else { 0.0 };
            let pes = model_task_total(task);
            let control = controller_steady_mw();
            let halo = pes + control + radio + stim + noc;
            let halo_no_noc = pes + control + radio + stim;
            let kinds: Vec<PeKind> = task
                .pe_kinds()
                .into_iter()
                .filter(|k| *k != PeKind::Interleaver)
                .collect();
            let asic = MonolithicAsic::power(&kinds).total_mw() + control + radio + stim;
            let software = SoftwareBaseline::new(software_cycles_per_byte(task))
                .best(NOMINAL_RATE_BPS)
                .map(|c| (c.cores, c.power_mw + radio + stim));
            Fig4Row {
                task,
                software,
                halo,
                asic,
                halo_no_noc,
            }
        })
        .collect()
}

/// Prints Figure 4.
pub fn run() {
    println!("Figure 4: task power (mW) — RISC-V software vs HALO vs monolithic ASIC");
    println!("(12 mW processing budget; log-scale in the paper)\n");
    println!(
        "{:<16} {:>16} {:>9} {:>9} {:>12} {:>9}",
        "task", "RISC-V (cores)", "HALO", "ASIC", "HALO-no-NoC", "SW/HALO"
    );
    for row in compute() {
        let (sw_str, ratio_str) = match row.software {
            Some((cores, mw)) => (
                format!("{mw:8.2} ({cores:2})"),
                format!("{:8.1}x", mw / row.halo),
            ),
            None => ("infeasible".to_string(), "-".to_string()),
        };
        println!(
            "{:<16} {:>16} {:>9.2} {:>9.2} {:>12.2} {:>9}",
            row.task.label(),
            sw_str,
            row.halo,
            row.asic,
            row.halo_no_noc,
            ratio_str
        );
    }
    println!(
        "\nshape checks: HALO under 12 mW everywhere; software multiples above;\nASIC ~2x HALO on heavy pipelines; the NoC costs <0.3 mW of configurability."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds() {
        for row in compute() {
            assert!(row.halo <= 12.0, "{}: HALO {:.2}", row.task, row.halo);
            assert!(
                row.halo - row.halo_no_noc < 0.3,
                "{}: NoC overhead too large",
                row.task
            );
            if let Some((_, sw)) = row.software {
                assert!(sw > row.halo, "{}: software should lose", row.task);
            }
            assert!(row.asic > row.halo, "{}: ASIC should lose", row.task);
        }
    }
}
