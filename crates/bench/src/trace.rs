//! `--telemetry` — instrumented demo runs with Chrome-trace export and a
//! machine-readable `BENCH_telemetry.json` baseline.
//!
//! Runs the seizure-prediction and LZMA-compression pipelines with a
//! [`Recorder`] attached, prints the plain-text telemetry summary of each,
//! writes the seizure run's Chrome Trace (load it at `ui.perfetto.dev` or
//! `chrome://tracing`) to the requested path, and drops
//! `BENCH_telemetry.json` in the working directory so future changes have
//! a counter baseline to diff against.

use std::sync::Arc;

use halo_core::tasks::seizure;
use halo_core::{HaloConfig, HaloSystem, Task, TaskMetrics};
use halo_signal::{Recording, RecordingConfig, RegionProfile};
use halo_telemetry::{chrome_trace, json, summary, Recorder};

/// A demo scenario for `task`: a config (trained where the task needs it)
/// and a session recording that exercises the full pipeline.
fn scenario(task: Task) -> (HaloConfig, Recording) {
    match task {
        Task::SeizurePrediction => {
            let channels = 8;
            let config = HaloConfig::small_test(channels).channels(channels);
            let window = config.feature_window_frames();
            let train_a = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(6 * window, 14 * window)
                .generate(9);
            let train_b = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(12 * window, 20 * window)
                .generate(19);
            let svm = seizure::train(&config, &[&train_a, &train_b]).expect("training");
            let session = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(700)
                .seizure_at(8 * window, 16 * window)
                .generate(10);
            (config.with_svm(svm), session)
        }
        _ => {
            let channels = 8;
            let config = HaloConfig::small_test(channels).channels(channels);
            let session = RecordingConfig::new(RegionProfile::arm())
                .channels(channels)
                .duration_ms(400)
                .generate(7);
            (config, session)
        }
    }
}

fn instrumented_run(task: Task) -> (Arc<Recorder>, TaskMetrics) {
    let (config, session) = scenario(task);
    let sample_rate = config.sample_rate_hz;
    let mut system = HaloSystem::new(task, config).expect("system");
    let recorder = Arc::new(Recorder::new(65_536).with_sample_rate_hz(sample_rate));
    system.attach_telemetry(recorder.clone());
    // Reprogram the switches under telemetry so the firmware-driven
    // bring-up (switch words, controller cycles) lands in the trace too.
    system.reconfigure(task).expect("reconfigure");
    let metrics = system.process(&session).expect("process");
    (recorder, metrics)
}

/// One task's entry in `BENCH_telemetry.json`.
fn task_json(task: Task, recorder: &Recorder, metrics: &TaskMetrics) -> String {
    let snap = recorder.snapshot();
    let pes: Vec<String> = snap
        .pes
        .iter()
        .map(|p| {
            format!(
                "{{\"slot\":{},\"name\":{},\"busy_cycles\":{},\"stall_cycles\":{},\
                 \"bytes_in\":{},\"bytes_out\":{},\"fifo_high_water\":{}}}",
                p.slot,
                json::string(p.name),
                p.busy_cycles,
                p.stall_cycles,
                p.bytes_in,
                p.bytes_out,
                p.fifo_high_water
            )
        })
        .collect();
    let links: Vec<String> = snap
        .links
        .iter()
        .map(|l| {
            format!(
                "{{\"from\":{},\"to\":{},\"bytes\":{},\"transfers\":{}}}",
                l.from, l.to, l.bytes, l.transfers
            )
        })
        .collect();
    format!(
        "{{\"task\":{},\"frames\":{},\"duration_s\":{},\"input_bytes\":{},\
         \"radio_bytes\":{},\"bus_bytes\":{},\"switches\":{},\
         \"noc_bus_utilization\":{},\"total_busy_cycles\":{},\
         \"controller_cycles\":{},\"dropped_events\":{},\
         \"pes\":[{}],\"links\":[{}]}}",
        json::string(task.label()),
        metrics.frames,
        json::number(metrics.duration_s),
        metrics.input_bytes,
        metrics.radio_bytes,
        metrics.bus_bytes,
        metrics.switches,
        json::number(metrics.noc_bus_utilization()),
        metrics.total_busy_cycles(),
        metrics.controller_cycles,
        recorder.dropped_events(),
        pes.join(","),
        links.join(",")
    )
}

/// Runs the instrumented demos. Writes the seizure run's Chrome trace to
/// `trace_path` and the counter baseline to `BENCH_telemetry.json`.
pub fn run(trace_path: &str) {
    println!("telemetry demo — instrumented pipeline runs\n");

    let mut entries = Vec::new();
    for task in [Task::SeizurePrediction, Task::CompressLzma] {
        let (recorder, metrics) = instrumented_run(task);
        println!("{}", summary::render(&recorder));
        entries.push(task_json(task, &recorder, &metrics));
        if task == Task::SeizurePrediction {
            let trace = chrome_trace::render(&recorder);
            json::validate(&trace).expect("trace must be valid JSON");
            if let Err(e) = std::fs::write(trace_path, &trace) {
                eprintln!("error: cannot write {trace_path}: {e}");
                std::process::exit(1);
            }
            println!(
                "wrote {trace_path} ({} bytes) — open at ui.perfetto.dev\n",
                trace.len()
            );
        }
    }

    let doc = format!("{{\"tasks\":[{}]}}", entries.join(","));
    json::validate(&doc).expect("baseline must be valid JSON");
    let path = crate::workspace_path("BENCH_telemetry.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} bytes)", path.display(), doc.len());
}
