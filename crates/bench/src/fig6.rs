//! Figure 6: the hardware-software co-design ladders for XCOR (left) and
//! LZMA (right).
//!
//! The power factors of each rung are the paper's reported savings
//! (§IV-B); what this reproduction contributes is *functional* evidence
//! for the rungs: the spatially-reprogrammed XCOR is implemented and
//! verified bit-identical to the naive algorithm, with its buffer
//! reduction measured from the live PEs, and the MA/RC split is verified
//! byte-identical to the unsplit codec.

use halo_kernels::XcorConfig;
use halo_pe::pes::{XcorPe, XcorVariant};
use halo_pe::{PeKind, ProcessingElement};
use halo_power::pe_anchor;

/// One ladder rung.
pub struct Rung {
    /// Technique applied at this rung.
    pub label: &'static str,
    /// PE (or PE-group) power after the rung, mW.
    pub power_mw: f64,
}

/// The XCOR ladder: initial → +spatial reprogramming (2.2×) → +pipelining
/// and other microarchitectural optimizations (1.4×), landing on the
/// Table IV anchor.
pub fn xcor_ladder() -> Vec<Rung> {
    let optimized = pe_anchor(PeKind::Xcor).total_mw();
    vec![
        Rung {
            label: "XCOR-initial",
            power_mw: optimized * 2.2 * 1.4,
        },
        Rung {
            label: "+spt-prg",
            power_mw: optimized * 1.4,
        },
        Rung {
            label: "+opt",
            power_mw: optimized,
        },
    ]
}

/// The LZMA ladder: initial (~20 mW) → +spatial reprogramming (1.5× on
/// LZ) → +MA/RC locality split (→11.2 mW) → +other optimizations, landing
/// on the Table IV pipeline sum.
pub fn lzma_ladder() -> Vec<Rung> {
    let lz = pe_anchor(PeKind::Lz).total_mw();
    let ma = pe_anchor(PeKind::Ma).total_mw();
    let rc = pe_anchor(PeKind::Rc).total_mw();
    let optimized = lz + ma + rc; // ~7.2 mW
    let after_split = 11.2; // paper's reported post-split point
    let after_sptprg = optimized / 7.162 * 13.3; // unsplit MA, pre-pipelining
    vec![
        Rung {
            label: "LZMA-initial",
            power_mw: 20.0,
        },
        Rung {
            label: "+spt-prg",
            power_mw: after_sptprg,
        },
        Rung {
            label: "+MA-RC-split",
            power_mw: after_split,
        },
        Rung {
            label: "+opt",
            power_mw: optimized,
        },
    ]
}

/// Prints Figure 6 with the functional evidence for each rung.
pub fn run() {
    println!("Figure 6 (left): XCOR co-design ladder (12 mW line)\n");
    for r in xcor_ladder() {
        println!("  {:<14} {:>6.2} mW", r.label, r.power_mw);
    }

    // Functional evidence: buffer reduction measured from the live PEs.
    let config = XcorConfig::new(96, 4096, 16, vec![(0, 1), (2, 3)]).expect("config");
    let naive = XcorPe::new(config.clone(), XcorVariant::Naive);
    let streaming = XcorPe::new(config, XcorVariant::Streaming);
    println!(
        "\n  measured buffers: naive {} KB -> streaming {} KB ({}x reduction);",
        naive.memory_bytes() / 1024,
        streaming.memory_bytes().div_ceil(1024),
        naive.memory_bytes() / streaming.memory_bytes().max(1)
    );
    println!("  outputs verified bit-identical (tests/props.rs::xcor_streaming_equals_block)");

    println!("\nFigure 6 (right): LZMA co-design ladder (12 mW line)\n");
    for r in lzma_ladder() {
        println!("  {:<14} {:>6.2} mW", r.label, r.power_mw);
    }
    println!(
        "\n  MA/RC split verified byte-identical to the unsplit codec\n  (tests/decomposition.rs::lzma_pipeline_is_bit_identical_to_the_monolithic_codec)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_monotone_and_end_under_budget() {
        for ladder in [xcor_ladder(), lzma_ladder()] {
            for pair in ladder.windows(2) {
                assert!(pair[0].power_mw > pair[1].power_mw);
            }
            assert!(ladder.first().expect("nonempty").power_mw > 12.0);
            assert!(ladder.last().expect("nonempty").power_mw < 12.0);
        }
    }

    #[test]
    fn streaming_buffer_reduction_is_an_order_of_magnitude() {
        let config = XcorConfig::new(96, 4096, 16, vec![(0, 1)]).expect("config");
        let naive = XcorPe::new(config.clone(), XcorVariant::Naive);
        let streaming = XcorPe::new(config, XcorVariant::Streaming);
        assert!(naive.memory_bytes() > 50 * streaming.memory_bytes());
    }
}
