//! Table IV: per-PE operating points and per-task pipeline sums at the
//! 46 Mbps design rate.

use halo_core::Task;
use halo_pe::PeKind;
use halo_power::pe_anchor;
use halo_power::table::dwtma_ma_anchor;

/// Paper-reported task totals (mW) for the comparison column.
pub fn paper_task_total(task: Task) -> f64 {
    match task {
        Task::CompressLz4 => 3.447,
        Task::CompressLzma => 7.162,
        Task::CompressDwtma => 3.415,
        Task::SeizurePrediction => 6.012,
        Task::SpikeDetectNeo => 0.158,
        Task::SpikeDetectDwt => 0.149,
        Task::MovementIntent => 1.15,
        Task::EncryptRaw => 0.112,
    }
}

/// The model's pipeline-sum for a task (PE anchors; the interleaver is
/// reported with the NoC overhead, as in the paper).
pub fn model_task_total(task: Task) -> f64 {
    task.pe_kinds()
        .iter()
        .filter(|&&k| k != PeKind::Interleaver)
        .map(|&k| {
            if k == PeKind::Ma && task == Task::CompressDwtma {
                dwtma_ma_anchor().total_mw()
            } else {
                pe_anchor(k).total_mw()
            }
        })
        .sum()
}

/// Prints Table IV.
pub fn run() {
    println!("Table IV: PE operating points at 46 Mbps (28nm anchors)\n");
    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "PE", "freq MHz", "logic leak", "logic dyn", "mem leak", "mem dyn", "total mW", "area KGE"
    );
    for kind in PeKind::all() {
        if kind == PeKind::Interleaver {
            continue; // folded into the NoC overhead, as in the paper
        }
        let a = pe_anchor(kind);
        println!(
            "{:<12} {:>9.1} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            kind.name(),
            a.freq_mhz,
            a.logic_leak_mw,
            a.logic_dyn_mw,
            a.mem_leak_mw,
            a.mem_dyn_mw,
            a.total_mw(),
            a.area_kge
        );
    }
    let c = halo_power::controller_anchor();
    println!(
        "{:<12} {:>9.1} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9}",
        "RISC-V ctrl",
        c.freq_mhz,
        c.logic_leak_mw,
        c.logic_dyn_mw,
        c.mem_leak_mw,
        c.mem_dyn_mw,
        c.total_mw(),
        c.area_kge
    );

    println!("\ntask pipeline sums (PEs only) vs the paper's task rows:");
    println!(
        "{:<16} {:>10} {:>10} {:>8}",
        "task", "model mW", "paper mW", "delta%"
    );
    for task in Task::all() {
        let model = model_task_total(task);
        let paper = paper_task_total(task);
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>7.1}%",
            task.label(),
            model,
            paper,
            100.0 * (model - paper) / paper
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sums_track_paper_rows() {
        for task in Task::all() {
            let model = model_task_total(task);
            let paper = paper_task_total(task);
            let rel = (model - paper).abs() / paper;
            assert!(rel < 0.02, "{task}: model {model} vs paper {paper}");
        }
    }
}
