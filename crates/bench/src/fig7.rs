//! Figure 7: compression-per-milliwatt design-space sweeps over LZ history
//! length (left) and interleave depth (right).

use crate::data::{measure_ratios, region_dataset, MEASURE_CHANNELS};
use crate::{controller_steady_mw, NOMINAL_RATE_BPS, RAW_RADIO_MW};
use halo_core::Task;
use halo_pe::PeKind;
use halo_power::table::dwtma_ma_anchor;
use halo_power::{circuit_switched_power_mw, pe_anchor, PePowerModel, PROCESSING_BUDGET_MW};
use halo_signal::RegionProfile;

/// LZ PE memory implied by a history length (Table III: 8 KB head + 2H
/// chain + H window).
fn lz_mem_bytes(history: usize) -> usize {
    8192 + 3 * history
}

/// MA PE memory implied by a history length (Table III: literal counters
/// plus 2×H length/offset counters; anchored at H=4096 → 16.25 KB).
fn ma_mem_bytes(history: usize) -> usize {
    16_640 * history / 4096
}

/// Processing power of a compression pipeline given its measured ratio and
/// memory-relevant knobs.
pub fn pipeline_power_mw(task: Task, ratio: f64, history: usize, interleave_depth: usize) -> f64 {
    let radio = RAW_RADIO_MW / ratio;
    let interleaver = PePowerModel::new(PeKind::Interleaver)
        .mem_bytes(96 * interleave_depth * 2)
        .power()
        .total_mw();
    let pes: f64 = match task {
        Task::CompressLz4 => {
            PePowerModel::new(PeKind::Lz)
                .mem_bytes(lz_mem_bytes(history))
                .power()
                .total_mw()
                + pe_anchor(PeKind::Lic).total_mw()
        }
        Task::CompressLzma => {
            PePowerModel::new(PeKind::Lz)
                .mem_bytes(lz_mem_bytes(history))
                .power()
                .total_mw()
                + PePowerModel::new(PeKind::Ma)
                    .mem_bytes(ma_mem_bytes(history))
                    .power()
                    .total_mw()
                + pe_anchor(PeKind::Rc).total_mw()
        }
        Task::CompressDwtma => {
            pe_anchor(PeKind::Dwt).total_mw()
                + dwtma_ma_anchor().total_mw()
                + pe_anchor(PeKind::Rc).total_mw()
        }
        _ => panic!("not a compression task"),
    };
    pes + interleaver
        + controller_steady_mw()
        + circuit_switched_power_mw(8, NOMINAL_RATE_BPS)
        + radio
}

/// Prints both Figure 7 sweeps.
pub fn run() {
    let ds = region_dataset(RegionProfile::arm(), 1, 701);
    let rec = &ds.trials()[1].recording; // the reach trial

    println!(
        "Figure 7 (left): compression ratio per mW vs LZ history (depth 128, {} ch measurement)\n",
        MEASURE_CHANNELS
    );
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "history", "LZ4 r", "LZMA r", "LZ4 r/mW", "LZMA r/mW", "budget"
    );
    for history in [1024usize, 2048, 4096, 8192] {
        let r = measure_ratios(rec, history, 1 << 16, 128);
        let p_lz4 = pipeline_power_mw(Task::CompressLz4, r.lz4, history, 128);
        let p_lzma = pipeline_power_mw(Task::CompressLzma, r.lzma, history, 128);
        let over = if p_lzma > PROCESSING_BUDGET_MW {
            "LZMA>12"
        } else {
            "ok"
        };
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>12.3} {:>12.3} {:>10}",
            history,
            r.lz4,
            r.lzma,
            r.lz4 / p_lz4,
            r.lzma / p_lzma,
            over
        );
    }

    println!("\nFigure 7 (right): compression ratio per mW vs interleave depth (history 4096)\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "depth", "LZ4 r", "LZMA r", "DWTMA r", "LZ4 r/mW", "LZMA r/mW", "DWTMA r/mW"
    );
    for depth in [1usize, 4, 16, 64, 128, 256, 1024] {
        let r = measure_ratios(rec, 4096, 1 << 16, depth);
        let p_lz4 = pipeline_power_mw(Task::CompressLz4, r.lz4, 4096, depth);
        let p_lzma = pipeline_power_mw(Task::CompressLzma, r.lzma, 4096, depth);
        let p_dwtma = pipeline_power_mw(Task::CompressDwtma, r.dwtma, 4096, depth);
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>10.2} {:>12.3} {:>12.3} {:>12.3}",
            depth,
            r.lz4,
            r.lzma,
            r.dwtma,
            r.lz4 / p_lz4,
            r.lzma / p_lzma,
            r.dwtma / p_dwtma
        );
    }
    println!("\nshape checks: ratio/mW peaks at a mid-size history (larger windows\nstop paying for their memory); interleaving helps the LZ codecs, while\nDWTMA is largely insensitive beyond small depths.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_power_grows_monotonically() {
        let p: Vec<f64> = [1024, 2048, 4096, 8192]
            .into_iter()
            .map(|h| pipeline_power_mw(Task::CompressLzma, 2.8, h, 128))
            .collect();
        for w in p.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn history_8192_busts_the_lzma_budget_at_paper_ratios() {
        // Figure 7: "all configurations except 8KB use <12mW".
        let p = pipeline_power_mw(Task::CompressLzma, 2.9, 8192, 128);
        assert!(
            p > PROCESSING_BUDGET_MW,
            "LZMA at H=8192 should exceed 12 mW, got {p:.2}"
        );
        let p = pipeline_power_mw(Task::CompressLzma, 2.8, 4096, 128);
        assert!(p <= PROCESSING_BUDGET_MW, "H=4096 should fit, got {p:.2}");
    }
}
