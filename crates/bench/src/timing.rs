//! A minimal wall-clock benchmark harness for the `benches/` targets.
//!
//! The build environment is offline, so the usual statistical benchmark
//! framework is unavailable; this measures median-of-runs wall time with
//! `std::time::Instant`, which is plenty for the throughput numbers the
//! benches report. All four bench targets use `harness = false` and drive
//! this module from a plain `fn main()`.

use std::time::{Duration, Instant};

/// What one iteration of a benchmark processes, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations only — report ns/iter.
    None,
    /// Report elements/second.
    Elements(u64),
    /// Report bytes/second (MB/s).
    Bytes(u64),
}

/// Runs `f` repeatedly and prints `group/name`, median iteration time, and
/// the derived rate. The setup closure runs outside the timed region.
pub fn bench<S, R>(
    group: &str,
    name: &str,
    throughput: Throughput,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> R,
) {
    // Warm up and estimate the per-iteration cost.
    let state = setup();
    let t0 = Instant::now();
    std::hint::black_box(f(state));
    let once = t0.elapsed().max(Duration::from_nanos(1));

    // Aim for ~200 ms of measurement, between 5 and 1000 samples.
    let samples = (Duration::from_millis(200).as_nanos() / once.as_nanos()).clamp(5, 1000) as usize;
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let state = setup();
        let t = Instant::now();
        std::hint::black_box(f(state));
        times.push(t.elapsed());
    }
    times.sort_unstable();
    let median = times[times.len() / 2];

    let secs = median.as_secs_f64().max(1e-12);
    let rate = match throughput {
        Throughput::None => String::new(),
        Throughput::Elements(n) => format!("  {:>10.2} Melem/s", n as f64 / secs / 1e6),
        Throughput::Bytes(n) => format!("  {:>10.2} MB/s", n as f64 / secs / 1e6),
    };
    println!(
        "{group}/{name:<28} {:>12.3} µs/iter ({samples} samples){rate}",
        median.as_secs_f64() * 1e6
    );
}
