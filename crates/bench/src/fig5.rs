//! Figure 5: per-task power stacks (left) and logic/memory ×
//! leakage/dynamic splits (right).

use crate::fig4::measured_radio_mw;
use crate::{controller_steady_mw, NOMINAL_RATE_BPS};
use halo_core::Task;
use halo_pe::PeKind;
use halo_power::table::dwtma_ma_anchor;
use halo_power::{circuit_switched_power_mw, pe_anchor, PePower};

/// The per-PE breakdown of one task pipeline at the design point.
pub fn pipeline_breakdown(task: Task) -> Vec<(PeKind, PePower)> {
    task.pe_kinds()
        .into_iter()
        .map(|k| {
            let anchor = if k == PeKind::Ma && task == Task::CompressDwtma {
                dwtma_ma_anchor()
            } else {
                pe_anchor(k)
            };
            (k, PePower::from(anchor))
        })
        .collect()
}

/// Prints Figure 5.
pub fn run() {
    let radios = measured_radio_mw();
    println!("Figure 5 (left): task power stacks, mW\n");
    println!(
        "{:<16} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "task", "PEs", "control", "stim", "radio", "noc", "total"
    );
    for (task, radio) in &radios {
        let stacks = pipeline_breakdown(*task);
        // The interleaver rides the "NoC+interleaver" line, as in the paper.
        let interleaver: f64 = stacks
            .iter()
            .filter(|(k, _)| *k == PeKind::Interleaver)
            .map(|(_, p)| p.total_mw())
            .sum();
        let pes: f64 = stacks
            .iter()
            .filter(|(k, _)| *k != PeKind::Interleaver)
            .map(|(_, p)| p.total_mw())
            .sum();
        let control = controller_steady_mw();
        let stim = if task.uses_stimulation() { 0.48 } else { 0.0 };
        let noc = circuit_switched_power_mw(8, NOMINAL_RATE_BPS) + interleaver;
        let total = pes + control + stim + radio + noc;
        println!(
            "{:<16} {:>7.3} {:>8.3} {:>7.2} {:>7.2} {:>7.3} {:>7.2}",
            task.label(),
            pes,
            control,
            stim,
            radio,
            noc,
            total
        );
        assert!(total <= 12.0, "{task} exceeds the processing budget");
    }

    println!("\nFigure 5 (right): PE power split, % of pipeline PE power\n");
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>9}",
        "task", "logic leak", "logic dyn", "mem leak", "mem dyn"
    );
    for (task, _) in &radios {
        let mut sum = PePower::default();
        for (k, p) in pipeline_breakdown(*task) {
            if k != PeKind::Interleaver {
                sum = sum.add(&p);
            }
        }
        let t = sum.total_mw().max(1e-9);
        println!(
            "{:<16} {:>9.1}% {:>9.1}% {:>8.1}% {:>8.1}%",
            task.label(),
            100.0 * sum.logic_leak_mw / t,
            100.0 * sum.logic_dyn_mw / t,
            100.0 * sum.mem_leak_mw / t,
            100.0 * sum.mem_dyn_mw / t
        );
    }
    println!("\nshape checks: spike detection is memory-dominated; compression is\ndynamic-memory heavy; encryption spends its budget on the radio.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_stay_under_budget() {
        // run() asserts internally; here just exercise the breakdowns.
        for task in Task::all() {
            let pes: f64 = pipeline_breakdown(task)
                .iter()
                .map(|(_, p)| p.total_mw())
                .sum();
            assert!(pes < 8.0, "{task}: PEs {pes}");
        }
    }
}
